"""Schedulers, engine, fault injection and metrics."""

import random

import pytest

from repro.protocols import (
    DijkstraTokenRing,
    livelock_agreement,
    stabilizing_agreement,
)
from repro.simulation import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Trace,
    convergence_study,
    perturb,
    random_state,
    run,
    run_until_convergence,
)


class TestSchedulers:
    def test_random_scheduler_is_seed_deterministic(self):
        p = stabilizing_agreement()
        instance = p.instantiate(6)
        start = instance.state_of(1, 0, 1, 0, 1, 0)
        t1 = run(instance, start, RandomScheduler(seed=5))
        t2 = run(instance, start, RandomScheduler(seed=5))
        assert t1.states == t2.states

    def test_round_robin_rotates_priority(self):
        p = stabilizing_agreement()
        instance = p.instantiate(4)
        scheduler = RoundRobinScheduler(4)
        start = instance.state_of(1, 0, 1, 0)
        moves = instance.moves(start)
        first = scheduler.choose(start, moves)
        # next choice must prefer the process after the first one
        second = scheduler.choose(first.target,
                                  instance.moves(first.target))
        assert second.process != first.process

    def test_round_robin_validates_size(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(0)

    def test_adversary_prefers_staying_outside_i(self):
        p = livelock_agreement()
        instance = p.instantiate(4)
        scheduler = AdversarialScheduler(instance, seed=0)
        # from 1110 a collision (p0 or p3 depending) may converge; the
        # adversary must pick a move staying outside I when one exists.
        state = instance.state_of(1, 1, 1, 0)
        move = scheduler.choose(state, instance.moves(state))
        assert not instance.invariant_holds(move.target)


class TestEngine:
    def test_trace_from_invariant_state_is_trivial(self):
        p = stabilizing_agreement()
        instance = p.instantiate(4)
        trace = run(instance, instance.uniform_state(1),
                    RandomScheduler())
        assert trace.converged_at == 0
        assert trace.steps == 0

    def test_convergence_recorded(self):
        p = stabilizing_agreement()
        instance = p.instantiate(5)
        start = instance.state_of(1, 0, 0, 0, 0)
        trace = run(instance, start, RandomScheduler(seed=1))
        assert trace.converged
        assert trace.recovery_steps >= 1
        assert instance.invariant_holds(trace.states[-1])
        assert all(not instance.invariant_holds(s)
                   for s in trace.states[:trace.converged_at])

    def test_deadlock_outside_invariant_detected(self):
        from repro.protocols import nongeneralizable_matching

        p = nongeneralizable_matching()
        instance = p.instantiate(4)
        stuck = instance.state_of("left", "self", "right", "left")
        trace = run(instance, stuck, RandomScheduler())
        assert trace.deadlocked
        assert not trace.converged

    def test_budget_exhaustion(self):
        p = livelock_agreement()
        instance = p.instantiate(4)
        adversary = AdversarialScheduler(instance, seed=0)
        start = instance.state_of(1, 0, 0, 0)
        trace = run(instance, start, adversary, max_steps=50)
        assert not trace.converged
        assert trace.steps == 50
        with pytest.raises(RuntimeError):
            run_until_convergence(instance, start,
                                  AdversarialScheduler(instance, seed=0),
                                  max_steps=50)

    def test_run_past_convergence(self):
        ring = DijkstraTokenRing(3)
        trace = run(ring, (0, 1, 0), RandomScheduler(seed=2),
                    max_steps=20, stop_on_convergence=False)
        assert trace.steps == 20  # token ring never deadlocks
        assert trace.converged
        # closure: once inside I it stays inside I
        inside = trace.states[trace.converged_at:]
        assert all(ring.invariant_holds(s) for s in inside)


class TestFaults:
    def test_random_state_is_valid(self):
        p = stabilizing_agreement()
        instance = p.instantiate(6)
        rng = random.Random(0)
        state = random_state(instance, rng)
        assert len(state) == 6
        assert all(cell in p.space.cells for cell in state)

    def test_perturb_changes_exactly_n_processes(self):
        p = stabilizing_agreement()
        instance = p.instantiate(6)
        rng = random.Random(0)
        state = instance.uniform_state(0)
        for faults in range(7):
            corrupted = perturb(instance, state, rng, faults=faults)
            changed = sum(a != b for a, b in zip(state, corrupted))
            assert changed == faults

    def test_perturb_validates_fault_count(self):
        p = stabilizing_agreement()
        instance = p.instantiate(3)
        with pytest.raises(ValueError):
            perturb(instance, instance.uniform_state(0),
                    random.Random(0), faults=4)

    def test_token_ring_fault_helpers(self):
        ring = DijkstraTokenRing(4)
        rng = random.Random(1)
        state = random_state(ring, rng)
        assert all(0 <= v < ring.values for v in state)
        corrupted = perturb(ring, state, rng, faults=2)
        assert sum(a != b for a, b in zip(state, corrupted)) == 2


class TestMetrics:
    def test_study_of_convergent_protocol(self):
        p = stabilizing_agreement()
        stats = convergence_study(p.instantiate(5), samples=40, seed=0)
        assert stats.converged == 40
        assert stats.deadlocked == 0
        assert stats.convergence_rate == 1.0
        assert stats.mean_steps is not None
        assert stats.max_steps >= stats.mean_steps

    def test_study_counts_deadlocks(self):
        from repro.protocols import nongeneralizable_matching

        stats = convergence_study(
            nongeneralizable_matching().instantiate(4),
            samples=60, seed=0)
        assert stats.deadlocked > 0
        assert stats.converged + stats.deadlocked == 60

    def test_summary_renders(self):
        p = stabilizing_agreement()
        stats = convergence_study(p.instantiate(4), samples=10, seed=0)
        assert "K=4" in stats.summary()


def test_trace_dataclass_properties():
    trace = Trace(states=((0,), (1,)), converged_at=None,
                  deadlocked=True)
    assert trace.steps == 1
    assert not trace.converged
    assert trace.recovery_steps is None
