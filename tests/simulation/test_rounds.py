"""The asynchronous-rounds time measure."""

import pytest

from repro.protocols import chain_broadcast, stabilizing_agreement
from repro.simulation import RandomScheduler, RoundRobinScheduler, run
from repro.simulation.rounds import (
    _actor,
    round_boundaries,
    rounds_to_convergence,
)


def test_actor_detection():
    p = stabilizing_agreement()
    instance = p.instantiate(3)
    a = instance.state_of(1, 0, 0)
    b = instance.state_of(1, 1, 0)
    assert _actor(instance, a, b) == 1
    with pytest.raises(ValueError):
        _actor(instance, a, a)


def test_round_boundaries_round_robin():
    """Under round-robin on a single corruption wave, each round makes
    progress and rounds partition the trace."""
    p = stabilizing_agreement()
    instance = p.instantiate(6)
    start = instance.state_of(1, 0, 0, 0, 0, 0)
    trace = run(instance, start, RoundRobinScheduler(6))
    boundaries = round_boundaries(instance, trace)
    assert boundaries == sorted(boundaries)
    assert all(0 < b <= trace.steps for b in boundaries)


def test_rounds_zero_when_starting_converged():
    p = stabilizing_agreement()
    instance = p.instantiate(4)
    trace = run(instance, instance.uniform_state(1), RandomScheduler())
    assert rounds_to_convergence(instance, trace) == 0


def test_rounds_none_without_convergence():
    from repro.protocols import livelock_agreement
    from repro.simulation import AdversarialScheduler

    p = livelock_agreement()
    instance = p.instantiate(4)
    start = instance.state_of(1, 0, 0, 0)
    trace = run(instance, start, AdversarialScheduler(instance, seed=0),
                max_steps=40)
    assert not trace.converged
    assert rounds_to_convergence(instance, trace) is None


def test_broadcast_converges_within_k_rounds():
    """The chain broadcast repairs one position per round in the worst
    case: rounds-to-convergence never exceeds K."""
    protocol = chain_broadcast()
    for size in (3, 5, 7):
        instance = protocol.instantiate(size)
        for seed in range(6):
            start = tuple(((seed >> i) & 1,) for i in range(size))
            trace = run(instance, start, RandomScheduler(seed=seed),
                        max_steps=200)
            if not trace.converged:
                continue
            rounds = rounds_to_convergence(instance, trace)
            assert rounds is not None
            assert rounds <= size


def test_rounds_never_exceed_steps():
    p = stabilizing_agreement()
    instance = p.instantiate(5)
    start = instance.state_of(1, 0, 1, 0, 0)
    trace = run(instance, start, RandomScheduler(seed=3))
    rounds = rounds_to_convergence(instance, trace)
    assert rounds is not None
    assert rounds <= trace.recovery_steps
