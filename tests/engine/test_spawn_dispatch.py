"""Spawn-mode dispatch: portable contexts + artifact attach parity.

Before the artifact plane, a platform without ``fork`` (or a forced
``REPRO_START_METHOD=spawn``) silently degraded every fan-out to the
serial fallback — and any spawned worker would have recompiled every
kernel from scratch.  These tests pin the new contract: with a
:class:`PortableContext` the pool and the batch scheduler really run
spawned workers, those workers *attach* the parent's published
artifacts instead of compiling (the ``kernel.compile`` span never
opens), and verdicts are byte-identical to fork and to ``--artifacts
off`` in every combination.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

import repro.engine.artifacts as ap
from repro.checker.sweep import sweep_verify
from repro.engine.pool import (
    START_METHOD_ENV,
    PortableContext,
    run_work_items,
    start_method,
)
from repro.obs import runtime as obs
from repro.protocols import generalizable_matching
from repro.serialization import global_report_to_dict

needs_spawn = pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable")

UP_TO = 6


def _verdict_bytes(result) -> list[str]:
    out = []
    for report in result.reports:
        data = global_report_to_dict(report)
        data.pop("stats", None)
        out.append(json.dumps(data, sort_keys=True))
    return out


def _warm_store(tmp_path) -> ap.ArtifactStore:
    """Publish the kernel and every per-K space with a serial sweep."""
    store = ap.ArtifactStore(tmp_path / "artifacts")
    with ap.plane(store):
        sweep_verify(generalizable_matching(), up_to=UP_TO, jobs=1)
    assert store.stats.stores > 0
    return store


# ----------------------------------------------------------------------
# The regression: spawn workers must attach, not recompile
# ----------------------------------------------------------------------
@needs_spawn
def test_spawn_workers_attach_instead_of_compiling(tmp_path, monkeypatch):
    store = _warm_store(tmp_path)
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    assert start_method() == "spawn"
    with ap.plane(store), obs.run("spawn-sweep") as run_ctx:
        result = sweep_verify(generalizable_matching(), up_to=UP_TO,
                              jobs=2)
    stats = result.stats
    assert stats.parallel, "spawn dispatch did not run"
    assert stats.pool_fallbacks == 0
    # Workers mapped the parent's artifacts: attaches happened, and not
    # one kernel.compile span opened anywhere in the run.
    assert stats.artifact_hits > 0
    assert stats.artifact_misses == 0
    assert stats.compile_seconds == 0.0
    assert run_ctx.metrics.value("kernel.compiles", default=0) == 0
    assert run_ctx.metrics.value("artifacts.hits") > 0
    store.close()


@needs_spawn
def test_batch_scheduler_runs_spawn_workers(tmp_path, monkeypatch):
    store = _warm_store(tmp_path)
    reference = sweep_verify(generalizable_matching(), up_to=UP_TO)
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    with ap.plane(store), obs.run("spawn-batch") as run_ctx:
        result = sweep_verify(generalizable_matching(), up_to=UP_TO,
                              jobs=2, schedule="batch")
    assert result.stats.scheduler_batches > 0
    assert result.stats.artifact_hits > 0
    assert run_ctx.metrics.value("kernel.compiles", default=0) == 0
    assert _verdict_bytes(result) == _verdict_bytes(reference)
    store.close()


# ----------------------------------------------------------------------
# Differential: verdict bytes across start methods and artifact modes
# ----------------------------------------------------------------------
@needs_spawn
def test_verdicts_identical_across_methods_and_modes(tmp_path, monkeypatch):
    configurations = []
    for method in ("fork", "spawn"):
        if method not in multiprocessing.get_all_start_methods():
            continue
        for artifacts in ("off", "rw"):
            configurations.append((method, artifacts))
    assert ("spawn", "rw") in configurations

    baseline = None
    for method, artifacts in configurations:
        monkeypatch.setenv(START_METHOD_ENV, method)
        store = (ap.ArtifactStore(tmp_path / f"{method}-{artifacts}")
                 if artifacts == "rw" else None)
        with ap.plane(store):
            result = sweep_verify(generalizable_matching(),
                                  up_to=UP_TO, jobs=2)
        if store is not None:
            store.close()
        verdicts = _verdict_bytes(result)
        if baseline is None:
            baseline = verdicts
        assert verdicts == baseline, (method, artifacts)


# ----------------------------------------------------------------------
# Guard rails around the portable recipe
# ----------------------------------------------------------------------
def _double(context, item):
    return (context or 1) * item * 2


def _build_context(payload):
    return payload["factor"]


@needs_spawn
def test_pool_spawn_dispatch_with_portable(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    portable = PortableContext(_build_context, {"factor": 3})
    results = run_work_items(_double, [1, 2, 3], jobs=2, context=None,
                             portable=portable)
    assert results == [6, 12, 18]


@needs_spawn
def test_pool_spawn_without_portable_falls_back_serially(monkeypatch):
    monkeypatch.setenv(START_METHOD_ENV, "spawn")
    with obs.run("fallback") as run_ctx:
        results = run_work_items(_double, [1, 2, 3], jobs=2, context=4)
    assert results == [8, 16, 24]
    reasons = [e.get("reason") for e in run_ctx.events
               if e.get("kind") == "pool-fallback"]
    assert reasons == ["no-fork"]
