"""Unit tests for :mod:`repro.engine.supervisor`.

The differential property suite (test_supervisor_properties.py) pins
verdict equality on real protocols; this file pins the supervision
mechanics themselves — retry ladders, timeouts, degradation, journal
integration and the fault-injection plumbing — on tiny synthetic
workers.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineStats
from repro.engine.journal import RunJournal
from repro.engine.pool import WorkerTraceback, parallelism_available
from repro.engine.supervisor import (
    FAULT_ENV,
    FaultPlan,
    SupervisorError,
    SupervisorPolicy,
    supervise_work_items,
)

from tests.engine.conftest import square

needs_fork = pytest.mark.skipif(not parallelism_available(),
                                reason="needs the fork start method")


def failing_worker(context, item):
    if item == 2:
        raise ValueError(f"item {item} is cursed")
    return item * item


def identity_fallback(context, item):
    return item * item


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
class TestSupervisorPolicy:
    def test_defaults(self):
        policy = SupervisorPolicy()
        assert policy.timeout is None
        assert policy.retries == 2
        assert policy.degrade

    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(timeout=-1.0)
        with pytest.raises(ValueError):
            SupervisorPolicy(retries=-1)

    def test_backoff_doubles_and_caps(self):
        policy = SupervisorPolicy(backoff=0.1, backoff_cap=0.35)
        assert policy.delay_before(1) == pytest.approx(0.1)
        assert policy.delay_before(2) == pytest.approx(0.2)
        assert policy.delay_before(3) == pytest.approx(0.35)
        assert policy.delay_before(10) == pytest.approx(0.35)


# ----------------------------------------------------------------------
# fault plan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_only_first_attempt_is_sabotaged(self):
        plan = FaultPlan(crash_items=frozenset({0}),
                         hang_items=frozenset({1}))
        assert plan.child_fault(0, attempt=0) == "crash"
        assert plan.child_fault(1, attempt=0) == "hang"
        assert plan.child_fault(0, attempt=1) is None
        assert plan.child_fault(2, attempt=0) is None

    def test_die_after_checkpoints_calls_die(self):
        deaths = []
        plan = FaultPlan(die_after_checkpoints=2, die=deaths.append)
        plan.on_checkpoint(1)
        assert deaths == []
        plan.on_checkpoint(2)
        assert deaths == [70]

    def test_from_env_unset_is_none(self, monkeypatch):
        monkeypatch.delenv(FAULT_ENV, raising=False)
        assert FaultPlan.from_env() is None

    def test_from_env_parses_clauses(self):
        plan = FaultPlan.from_env(
            {FAULT_ENV: "crash:0,2; hang:1 ;die-after:3"})
        assert plan.crash_items == frozenset({0, 2})
        assert plan.hang_items == frozenset({1})
        assert plan.die_after_checkpoints == 3

    def test_from_env_rejects_unknown_clause(self):
        with pytest.raises(ValueError):
            FaultPlan.from_env({FAULT_ENV: "explode:1"})


# ----------------------------------------------------------------------
# delegation and serial mode
# ----------------------------------------------------------------------
class TestDelegation:
    def test_unsupervised_call_delegates_to_pool(self):
        stats = EngineStats()
        results = supervise_work_items(square, range(4), stats=stats)
        assert results == [0, 1, 4, 9]
        # The plain pool records its serial fallback; the supervisor's
        # counters stay untouched.
        assert stats.pool_fallbacks == 1
        assert stats.supervisor_retries == 0

    def test_serial_supervised_run_still_journals(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="serial")
        keys = [f"k{i}" for i in range(3)]
        results = supervise_work_items(
            square, range(3), jobs=1,
            policy=SupervisorPolicy(),  # no timeout: no children needed
            journal=journal, keys=keys)
        assert results == [0, 1, 4]
        assert journal.stats.entries_recorded == 3
        resumed = RunJournal.resume(tmp_path, "serial")
        assert resumed.completed == {"k0": 0, "k1": 1, "k2": 4}

    def test_journal_requires_one_key_per_item(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="bad-keys")
        with pytest.raises(ValueError, match="one key per work item"):
            supervise_work_items(square, range(3), journal=journal,
                                 keys=["only-one"])


# ----------------------------------------------------------------------
# crash isolation and retries
# ----------------------------------------------------------------------
@needs_fork
class TestCrashIsolation:
    def test_crashed_worker_is_retried(self, crashing_worker):
        worker = crashing_worker(crash_items={1, 3})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(5), jobs=2, stats=stats,
            policy=SupervisorPolicy(backoff=0.01))
        assert results == [0, 1, 4, 9, 16]
        assert stats.supervisor_retries == 2
        assert stats.supervisor_degraded == 0

    def test_injected_crash_via_fault_plan(self):
        stats = EngineStats()
        results = supervise_work_items(
            square, range(4), jobs=2, stats=stats,
            policy=SupervisorPolicy(backoff=0.01),
            plan=FaultPlan(crash_items=frozenset({0})))
        assert results == [0, 1, 4, 9]
        assert stats.supervisor_retries == 1

    def test_results_keep_item_order(self, crashing_worker):
        # The crashed item finishes last; its slot must not move.
        worker = crashing_worker(crash_items={0})
        results = supervise_work_items(
            worker, range(6), jobs=3,
            policy=SupervisorPolicy(backoff=0.01))
        assert results == [i * i for i in range(6)]

    def test_retry_budget_exhaustion_degrades(self):
        def always_crashes(context, item):
            import os as _os
            import signal as _signal

            if item == 1:
                _os.kill(_os.getpid(), _signal.SIGKILL)
            return item * item

        stats = EngineStats()
        results = supervise_work_items(
            always_crashes, range(3), jobs=2, stats=stats,
            policy=SupervisorPolicy(retries=1, backoff=0.01),
            fallback_worker=identity_fallback)
        assert results == [0, 1, 4]
        assert stats.supervisor_retries == 1
        assert stats.supervisor_degraded == 1

    def test_degradation_disabled_raises(self):
        def always_crashes(context, item):
            import os as _os
            import signal as _signal

            _os.kill(_os.getpid(), _signal.SIGKILL)

        with pytest.raises(SupervisorError, match="degradation"):
            supervise_work_items(
                always_crashes, [0], jobs=1,
                policy=SupervisorPolicy(timeout=30.0, retries=0,
                                        backoff=0.01, degrade=False))


# ----------------------------------------------------------------------
# timeouts
# ----------------------------------------------------------------------
@needs_fork
class TestTimeouts:
    def test_hung_worker_is_killed_and_retried(self, hanging_worker):
        worker = hanging_worker(hang_items={0})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(3), jobs=2, stats=stats,
            policy=SupervisorPolicy(timeout=0.4, retries=2,
                                    backoff=0.01))
        assert results == [0, 1, 4]
        assert stats.supervisor_timeouts >= 1
        assert stats.supervisor_retries >= 1
        assert stats.supervisor_degraded == 0

    def test_persistent_hang_degrades_to_fallback(self):
        def always_hangs(context, item):
            import time as _time

            _time.sleep(3600)

        stats = EngineStats()
        results = supervise_work_items(
            always_hangs, [7], jobs=1, stats=stats,
            policy=SupervisorPolicy(timeout=0.3, retries=1,
                                    backoff=0.01),
            fallback_worker=identity_fallback)
        assert results == [49]
        assert stats.supervisor_timeouts == 2
        assert stats.supervisor_degraded == 1


# ----------------------------------------------------------------------
# worker exceptions
# ----------------------------------------------------------------------
@needs_fork
class TestWorkerExceptions:
    def test_exception_reraised_with_remote_traceback(self):
        with pytest.raises(ValueError, match="item 2 is cursed") as info:
            supervise_work_items(
                failing_worker, range(4), jobs=2,
                policy=SupervisorPolicy(backoff=0.01))
        cause = info.value.__cause__
        assert isinstance(cause, WorkerTraceback)
        assert "failing_worker" in cause.text
        assert "item 2 is cursed" in cause.text

    def test_exception_is_not_retried(self, tmp_path):
        counter_dir = tmp_path / "calls"
        counter_dir.mkdir()

        def counting_failure(context, item):
            (counter_dir / f"call-{len(list(counter_dir.iterdir()))}"
             ).write_text("")
            raise RuntimeError("deterministic")

        with pytest.raises(RuntimeError, match="deterministic"):
            supervise_work_items(
                counting_failure, [0], jobs=1,
                policy=SupervisorPolicy(timeout=30.0, retries=3,
                                        backoff=0.01))
        assert len(list(counter_dir.iterdir())) == 1

    def test_unpicklable_result_degrades_that_task(self):
        def lambda_result(context, item):
            return lambda: item  # never pickles

        stats = EngineStats()
        results = supervise_work_items(
            lambda_result, [3], jobs=1, stats=stats,
            policy=SupervisorPolicy(timeout=30.0, backoff=0.01),
            fallback_worker=identity_fallback)
        assert results == [9]
        assert stats.supervisor_degraded == 1


# ----------------------------------------------------------------------
# journaling under supervision
# ----------------------------------------------------------------------
@needs_fork
class TestJournalIntegration:
    def test_completed_items_are_checkpointed(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="run1")
        keys = [f"key-{i}" for i in range(4)]
        results = supervise_work_items(
            square, range(4), jobs=2, journal=journal, keys=keys,
            policy=SupervisorPolicy(backoff=0.01))
        assert results == [0, 1, 4, 9]
        resumed = RunJournal.resume(tmp_path, "run1")
        assert resumed.completed == {f"key-{i}": i * i for i in range(4)}

    def test_resume_skips_journaled_items(self, tmp_path, crashing_worker):
        journal = RunJournal.create(tmp_path, run_id="run2")
        journal.record("key-0", 0)
        journal.record("key-2", 4)
        # Items 0 and 2 would crash forever; the journal must shield
        # them from ever being spawned.
        worker = crashing_worker(crash_items={0, 2})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(4), jobs=2, stats=stats,
            journal=journal, keys=[f"key-{i}" for i in range(4)],
            policy=SupervisorPolicy(retries=0, backoff=0.01))
        assert results == [0, 1, 4, 9]
        assert stats.supervisor_resumed == 2
        assert stats.supervisor_retries == 0
        assert stats.supervisor_checkpoints == 2  # only 1 and 3 ran

    def test_parent_death_then_resume_runs_only_the_rest(self, tmp_path):
        class ParentDown(BaseException):
            pass

        def die(status):
            raise ParentDown(status)

        journal = RunJournal.create(tmp_path, run_id="run3")
        keys = [f"key-{i}" for i in range(5)]
        plan = FaultPlan(die_after_checkpoints=2, die=die)
        with pytest.raises(ParentDown):
            supervise_work_items(
                square, range(5), jobs=1, journal=journal, keys=keys,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01),
                plan=plan)
        # Exactly two items were durably recorded before the "kill -9".
        rerun_journal = RunJournal.resume(tmp_path, "run3")
        assert len(rerun_journal) == 2

        stats = EngineStats()
        results = supervise_work_items(
            square, range(5), jobs=2, stats=stats,
            journal=rerun_journal, keys=keys,
            policy=SupervisorPolicy(backoff=0.01))
        assert results == [i * i for i in range(5)]
        assert stats.supervisor_resumed == 2
        assert rerun_journal.stats.entries_recorded == 3
