"""Regression tests: worker exceptions must keep their remote traceback.

Before the fix, a worker that raised before (or during) the
fork-capture handshake surfaced in the parent as a bare pool-level
failure — the original frames were gone and the batch was pointlessly
recomputed serially just to reproduce a deterministic error.  Now the
traceback is formatted *at the raise site* inside the worker
(:meth:`WorkerFailure.capture`), shipped back as a value, and re-raised
in the parent with the remote text chained as ``__cause__``.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import EngineStats, run_work_items
from repro.engine.pool import (
    WorkerFailure,
    WorkerTraceback,
    parallelism_available,
)

needs_fork = pytest.mark.skipif(not parallelism_available(),
                                reason="needs the fork start method")


def _worker_that_raises(context, item):
    if item == 2:
        raise ZeroDivisionError("synthetic failure in item 2")
    return item


class StubbornError(Exception):
    """An exception whose instances refuse to pickle."""

    def __init__(self, handle):
        super().__init__("stubborn")
        self.handle = handle

    def __reduce__(self):
        raise TypeError("no pickling, ever")


def _worker_unpicklable_exception(context, item):
    raise StubbornError(handle=lambda: item)


@needs_fork
class TestRemoteTraceback:
    def test_parallel_worker_error_keeps_remote_frames(self):
        with pytest.raises(ZeroDivisionError,
                           match="synthetic failure") as info:
            run_work_items(_worker_that_raises, range(4), jobs=2)
        cause = info.value.__cause__
        assert isinstance(cause, WorkerTraceback)
        # The worker-side frames survive the process boundary.
        assert "_worker_that_raises" in cause.text
        assert "synthetic failure in item 2" in cause.text
        assert "ZeroDivisionError" in cause.text

    def test_worker_error_does_not_trigger_serial_recompute(self,
                                                            recwarn):
        stats = EngineStats()
        with pytest.raises(ZeroDivisionError):
            run_work_items(_worker_that_raises, range(4), jobs=2,
                           stats=stats)
        # No "recomputing ... serially" RuntimeWarning, no fallback
        # counted: the deterministic error is raised once, directly.
        assert not [w for w in recwarn.list
                    if issubclass(w.category, RuntimeWarning)]
        assert stats.pool_fallbacks == 0

    def test_unpicklable_exception_degrades_to_runtime_error(self):
        with pytest.raises(RuntimeError,
                           match="unpicklable exception") as info:
            run_work_items(_worker_unpicklable_exception, range(2),
                           jobs=2)
        cause = info.value.__cause__
        assert isinstance(cause, WorkerTraceback)
        assert "StubbornError" in cause.text


class TestWorkerFailure:
    def test_capture_formats_at_raise_site(self):
        try:
            raise KeyError("lost")
        except KeyError as exc:
            failure = WorkerFailure.capture(exc)
        assert "KeyError" in failure.traceback_text
        assert failure.description == "KeyError: 'lost'"
        with pytest.raises(KeyError) as info:
            failure.reraise()
        assert isinstance(info.value.__cause__, WorkerTraceback)

    def test_reduce_degrades_unpicklable_exception(self):
        failure = WorkerFailure.capture(StubbornError(handle=object()))
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.exception is None  # degraded, not poisoned
        assert clone.traceback_text == failure.traceback_text
        with pytest.raises(RuntimeError, match="StubbornError"):
            clone.reraise()

    def test_picklable_exception_survives_reduce(self):
        failure = WorkerFailure.capture(ValueError("plain"))
        clone = pickle.loads(pickle.dumps(failure))
        assert isinstance(clone.exception, ValueError)
        with pytest.raises(ValueError, match="plain"):
            clone.reraise()

    def test_capture_does_not_pickle_and_serializes_exactly_once(self):
        # Regression: capture() used to round-trip every exception
        # through pickle.dumps eagerly, so the common success path paid
        # a serialization even when the failure never crossed a pipe —
        # and a shipped failure paid it twice (probe + re-pickle).
        # Pickleability is now probed lazily, in __reduce__, once.
        class CountingError(Exception):
            reduce_calls = 0

            def __reduce__(self):
                CountingError.reduce_calls += 1
                return (CountingError, ())

        failure = WorkerFailure.capture(CountingError())
        assert CountingError.reduce_calls == 0  # capture stays free
        pickle.loads(pickle.dumps(failure))
        assert CountingError.reduce_calls == 1  # probe IS the payload

    def test_pickles_but_wont_unpickle_degrades_cleanly(self):
        # The payload can also fail on the *parent* side: an exception
        # whose __reduce__ succeeds but whose reconstructor raises.
        def _explode():
            raise TypeError("no unpickling, ever")

        class OneWayError(Exception):
            def __reduce__(self):
                return (_explode, ())

        failure = WorkerFailure.capture(OneWayError("one-way"))
        clone = pickle.loads(pickle.dumps(failure))
        assert clone.exception is None  # degraded, not raised mid-load
        assert "OneWayError" in clone.traceback_text
        with pytest.raises(RuntimeError, match="OneWayError"):
            clone.reraise()
