"""Zero-copy artifact plane: wire format, store semantics, corruption.

The binary format must round-trip typed buffers exactly; the store must
treat *every* structural problem — truncation, bit rot, version drift,
fingerprint mismatch, semantically stale sections — as a miss that
deletes the bad file, emits exactly one ``artifact-corrupt`` warning
and rebuilds from source with byte-identical verdicts; and the shared
LRU size cap must age out old files without ever touching journals.
"""

from __future__ import annotations

import json
import os
import struct
from array import array

import pytest

import repro.engine.artifacts as ap
from repro.checker import check_instance
from repro.engine import ResultCache
from repro.engine.kernel import build_space, compile_protocol
from repro.engine.localkernel import local_kernel_for
from repro.obs import runtime as obs
from repro.protocols import generalizable_matching
from repro.serialization import global_report_to_dict

SECTIONS = {
    "meta": ("q", array("q", [3, 1, 4, 1, 5]).tobytes()),
    "raw": ("B", b"\x00\x01\xfe\xff"),
}
FP = "ab" * 32


def _verdict_bytes(report) -> str:
    data = global_report_to_dict(report)
    data.pop("stats", None)
    return json.dumps(data, sort_keys=True)


def _corrupt_events(run_ctx) -> list[dict]:
    return [e for e in run_ctx.events if e.get("kind") == "artifact-corrupt"]


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
def test_format_roundtrip(tmp_path):
    blob = ap.write_artifact_bytes(FP, SECTIONS)
    path = tmp_path / "x.art"
    path.write_bytes(blob)
    with ap.attach_artifact(path, FP) as attached:
        assert attached.fingerprint == FP
        assert list(attached.ints("meta")) == [3, 1, 4, 1, 5]
        assert bytes(attached.view("raw", "B")) == b"\x00\x01\xfe\xff"


def test_format_rejects_wrong_kind_and_missing_section(tmp_path):
    path = tmp_path / "x.art"
    path.write_bytes(ap.write_artifact_bytes(FP, SECTIONS))
    with ap.attach_artifact(path) as attached:
        with pytest.raises(ap.ArtifactFormatError):
            attached.view("meta", "B")  # stored as "q"
        with pytest.raises(ap.ArtifactFormatError):
            attached.view("nope")


def test_attach_rejects_foreign_fingerprint(tmp_path):
    path = tmp_path / "x.art"
    path.write_bytes(ap.write_artifact_bytes(FP, SECTIONS))
    with pytest.raises(ap.ArtifactFormatError):
        ap.attach_artifact(path, expect_fingerprint="cd" * 32)


# ----------------------------------------------------------------------
# Store semantics
# ----------------------------------------------------------------------
def test_store_publish_then_attach(tmp_path):
    store = ap.ArtifactStore(tmp_path)
    assert store.attach("kernel", FP) is None  # cold miss
    assert store.publish("kernel", FP, SECTIONS)
    attached = store.attach("kernel", FP)
    assert attached is not None
    assert list(attached.ints("meta")) == [3, 1, 4, 1, 5]
    assert (store.stats.hits, store.stats.misses,
            store.stats.stores) == (1, 1, 1)
    store.close()


def test_read_only_store_never_publishes(tmp_path):
    store = ap.ArtifactStore(tmp_path, mode="ro")
    assert not store.publish("kernel", FP, SECTIONS)
    assert not list(tmp_path.rglob("*.art"))
    assert store.stats.stores == 0


def test_open_store_resolves_modes(tmp_path):
    assert ap.open_store(tmp_path, mode="off", cache_requested=True) is None
    assert ap.open_store(tmp_path, mode="auto", cache_requested=False) is None
    auto = ap.open_store(tmp_path, mode="auto", cache_requested=True)
    assert auto is not None and auto.mode == "rw"
    ro = ap.open_store(tmp_path, mode="ro")
    assert ro is not None and ro.mode == "ro"
    assert auto.root == tmp_path / "artifacts"


# ----------------------------------------------------------------------
# Corruption and version drift: each variant is a clean rebuild with
# exactly one warning event and byte-identical verdicts.
# ----------------------------------------------------------------------
def _truncate(path):
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])


def _flip_payload_byte(path):
    raw = bytearray(path.read_bytes())
    raw[-40] ^= 0xFF  # inside the last section, before the digest
    path.write_bytes(bytes(raw))


def _stale_version(path):
    # Patch the header version and re-seal the checksum, so the *only*
    # defect is format-version drift.
    raw = bytearray(path.read_bytes())[:-32]
    struct.pack_into("<I", raw, 8, 999)
    import hashlib

    path.write_bytes(bytes(raw) + hashlib.sha256(raw).digest())


def _foreign_fingerprint(path):
    # A checksum-valid artifact for some *other* protocol landed under
    # this key (e.g. a renamed file): the embedded fingerprint betrays it.
    path.write_bytes(ap.write_artifact_bytes("cd" * 32, SECTIONS))


@pytest.mark.parametrize("sabotage", [_truncate, _flip_payload_byte,
                                      _stale_version, _foreign_fingerprint],
                         ids=["truncated", "flipped-byte", "stale-version",
                              "foreign-fingerprint"])
def test_corrupt_artifact_discarded_and_rebuilt(tmp_path, sabotage):
    store = ap.ArtifactStore(tmp_path)
    store.publish("kernel", FP, SECTIONS)
    path = store.path_for("kernel", FP)
    sabotage(path)
    with obs.run("corruption") as run_ctx:
        assert store.attach("kernel", FP) is None
    assert store.stats.corrupt == 1
    assert not path.exists()  # bad file deleted
    events = _corrupt_events(run_ctx)
    assert len(events) == 1
    assert events[0]["level"] == "warning"
    # The rebuild path publishes and attaches cleanly.
    assert store.publish("kernel", FP, SECTIONS)
    assert store.attach("kernel", FP) is not None
    store.close()


@pytest.mark.parametrize("sabotage", [_truncate, _flip_payload_byte,
                                      _stale_version, _foreign_fingerprint],
                         ids=["truncated", "flipped-byte", "stale-version",
                              "foreign-fingerprint"])
def test_corrupt_kernel_artifact_keeps_verdicts(tmp_path, sabotage):
    reference = check_instance(generalizable_matching().instantiate(4))
    store = ap.ArtifactStore(tmp_path)
    with ap.plane(store):
        compile_protocol(generalizable_matching())
        sabotage(next(tmp_path.rglob("*.art")))  # the one kernel artifact
        with obs.run("rebuild") as run_ctx:
            report = check_instance(generalizable_matching().instantiate(4))
    assert _verdict_bytes(report) == _verdict_bytes(reference)
    assert len(_corrupt_events(run_ctx)) == 1
    store.close()


def test_semantically_stale_sections_are_corruption(tmp_path):
    """A checksum-valid artifact whose sections contradict the live
    protocol (e.g. stale after a DSL change that kept the key) must be
    discarded like bit rot, not trusted."""
    from repro.engine.fingerprint import protocol_fingerprint

    protocol = generalizable_matching()
    fingerprint = protocol_fingerprint(protocol)
    store = ap.ArtifactStore(tmp_path)
    store.publish("kernel", fingerprint, {
        "meta": ("q", array("q", [9, 9, 9, 9]).tobytes()),
        "legit": ("B", b"\x01"),
        "targets_off": ("q", array("q", [0, 0]).tobytes()),
        "targets_flat": ("q", b""),
    })
    with ap.plane(store), obs.run("stale") as run_ctx:
        compiled = compile_protocol(protocol)
    assert not compiled.attached  # rebuilt from source
    assert store.stats.corrupt == 1
    assert len(_corrupt_events(run_ctx)) == 1
    report = check_instance(generalizable_matching().instantiate(4))
    assert _verdict_bytes(report) == _verdict_bytes(
        check_instance(protocol.instantiate(4)))
    store.close()


# ----------------------------------------------------------------------
# Warm starts: kernel, packed space, localkernel skeleton
# ----------------------------------------------------------------------
def test_kernel_and_space_attach_identically(tmp_path):
    cold_report = check_instance(generalizable_matching().instantiate(5))
    store = ap.ArtifactStore(tmp_path)
    with ap.plane(store):
        cold = compile_protocol(generalizable_matching())
        cold_space = build_space(generalizable_matching().instantiate(5))
        assert not cold.attached and not cold_space.stats.attached
        # Fresh protocol objects: the in-process memo cannot serve them,
        # so this exercises the attach path end to end.
        warm = compile_protocol(generalizable_matching())
        warm_space = build_space(generalizable_matching().instantiate(5))
        assert warm.attached and warm_space.stats.attached
        assert warm.target_rows == cold.target_rows
        assert bytes(warm.legit) == bytes(cold.legit)
        assert list(warm_space.succ_off) == list(cold_space.succ_off)
        assert list(warm_space.succ_flat) == list(cold_space.succ_flat)
        assert bytes(warm_space.invariant) == bytes(cold_space.invariant)
        warm_report = check_instance(generalizable_matching().instantiate(5))
    assert _verdict_bytes(warm_report) == _verdict_bytes(cold_report)
    assert store.stats.hits >= 2
    store.close()


def test_quotient_space_attach(tmp_path):
    store = ap.ArtifactStore(tmp_path)
    with ap.plane(store):
        cold = build_space(generalizable_matching().instantiate(5),
                           symmetry=True)
        warm = build_space(generalizable_matching().instantiate(5),
                           symmetry=True)
    assert not cold.stats.attached and warm.stats.attached
    assert list(warm.codes) == list(cold.codes)
    assert list(warm.succ_off) == list(cold.succ_off)
    assert bytes(warm.invariant) == bytes(cold.invariant)
    store.close()


def test_localkernel_skeleton_attach(tmp_path):
    store = ap.ArtifactStore(tmp_path)
    with ap.plane(store):
        cold = local_kernel_for(generalizable_matching())
        warm = local_kernel_for(generalizable_matching())
    assert not cold.attached and warm.attached
    assert warm.s_masks == cold.s_masks
    assert warm.illegit_mask == cold.illegit_mask
    store.close()


# ----------------------------------------------------------------------
# The shared LRU-by-mtime size cap
# ----------------------------------------------------------------------
def test_store_limit_evicts_oldest(tmp_path):
    store = ap.ArtifactStore(tmp_path)
    for index in range(3):
        store.publish("kernel", f"{index:02d}" * 32, SECTIONS)
        path = store.path_for("kernel", f"{index:02d}" * 32)
        os.utime(path, (1_000_000 + index, 1_000_000 + index))
    size = store.path_for("kernel", "00" * 32).stat().st_size
    removed = store.enforce_limit(size + 1)  # room for exactly one file
    assert removed == 2
    assert store.stats.evictions == 2
    assert store.attach("kernel", "00" * 32) is None  # oldest gone
    assert store.attach("kernel", "02" * 32) is not None  # newest kept
    store.close()


def test_shared_limit_spares_journals(tmp_path):
    (tmp_path / "ab").mkdir()
    (tmp_path / "ab" / "entry.pkl").write_bytes(b"x" * 100)
    (tmp_path / "artifacts" / "cd").mkdir(parents=True)
    (tmp_path / "artifacts" / "cd" / "blob.art").write_bytes(b"y" * 100)
    (tmp_path / "runs").mkdir()
    journal = tmp_path / "runs" / "journal.jsonl"
    journal.write_bytes(b"z" * 100)
    removed = ap.enforce_directory_limit(tmp_path, 0,
                                         suffix=(".pkl", ".art"))
    assert removed == 2
    assert journal.exists()
    assert not list(tmp_path.rglob("*.pkl"))
    assert not list(tmp_path.rglob("*.art"))


def test_result_cache_disk_cap(tmp_path):
    cache = ResultCache(tmp_path, limit_bytes=1)
    for index in range(40):  # crosses the periodic sweep interval
        cache.put(f"{index:02d}" * 32, list(range(100)))
    assert cache.stats.evictions > 0
    assert len(list(tmp_path.rglob("*.pkl"))) < 40  # swept mid-run
    # The memory layer is unaffected by disk eviction.
    assert cache.get("00" * 32) == list(range(100))
