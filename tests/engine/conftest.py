"""Fault-injection fixtures for the supervision and journaling suites.

Workers built here run inside forked children, so per-attempt state
("crash only on the first try") cannot live in module globals — each
attempt inherits a fresh copy.  The fixtures use marker files under
``tmp_path`` instead: the first attempt at a sabotaged item drops a
marker and misbehaves, the retry sees the marker and runs clean, which
makes every supervised run converge deterministically.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest


def square(context, item):
    """The default well-behaved worker (module-level: fork-friendly)."""
    return item * item


@pytest.fixture
def crashing_worker(tmp_path):
    """Factory for workers that SIGKILL themselves on the *first*
    attempt at each item in ``crash_items`` and succeed afterwards."""
    marks = tmp_path / "crash-marks"
    marks.mkdir()

    def make(crash_items=frozenset(), compute=square):
        def worker(context, item):
            if item in crash_items:
                marker = marks / f"item-{item}"
                if not marker.exists():
                    marker.write_text("sabotaged")
                    os.kill(os.getpid(), signal.SIGKILL)
            return compute(context, item)

        return worker

    return make


@pytest.fixture
def hanging_worker(tmp_path):
    """Factory for workers that sleep far past any timeout on the
    *first* attempt at each item in ``hang_items``."""
    marks = tmp_path / "hang-marks"
    marks.mkdir()

    def make(hang_items=frozenset(), hang_seconds=3600.0, compute=square):
        def worker(context, item):
            if item in hang_items:
                marker = marks / f"item-{item}"
                if not marker.exists():
                    marker.write_text("sabotaged")
                    time.sleep(hang_seconds)
            return compute(context, item)

        return worker

    return make


@pytest.fixture
def corrupt_checkpoint():
    """Damage one entry of a journal file the way hard kills do.

    ``mode="truncate"`` cuts the line in half (the classic
    killed-mid-append tail); ``mode="tamper"`` keeps valid JSON but
    flips the payload so the stored SHA-256 no longer matches.
    """

    def corrupt(journal, entry: int = -1, mode: str = "truncate") -> None:
        path = journal.path if hasattr(journal, "path") else Path(journal)
        lines = path.read_bytes().splitlines()
        if mode == "truncate":
            lines[entry] = lines[entry][: max(1, len(lines[entry]) // 2)]
        elif mode == "tamper":
            record = json.loads(lines[entry])
            data = record["data"]
            record["data"] = ("A" if not data.startswith("A") else "B") \
                + data[1:]
            lines[entry] = json.dumps(record).encode("ascii")
        else:
            raise ValueError(f"unknown corruption mode {mode!r}")
        path.write_bytes(b"\n".join(lines) + b"\n")

    return corrupt


@pytest.fixture(autouse=True)
def _no_ambient_fault_injection(monkeypatch):
    """Keep the suite hermetic: a leaked REPRO_INJECT_FAULT in the
    environment must not sabotage unrelated tests."""
    monkeypatch.delenv("REPRO_INJECT_FAULT", raising=False)
