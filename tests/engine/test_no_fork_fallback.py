"""Spawn-only platforms: every entry point must fall back serially.

The engine's parallel and supervised paths all require the ``fork``
start method (workers inherit unpicklable workers/contexts/items).  On
a platform without it — macOS defaults and Windows are spawn-only —
the contract is a *clean* degradation: identical results, computed
serially in-parent, with a ``pool-fallback`` observability event
(``reason="no-fork"``) marking what happened.  These tests simulate
such a platform by monkeypatching
``multiprocessing.get_all_start_methods`` and walk every public entry
point through the fallback.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine import EngineStats
from repro.engine.pool import parallelism_available
from repro.engine.supervisor import (
    SupervisorPolicy,
    supervise_work_items,
)
from repro.obs import runtime as obs
from repro.randomgen import ProtocolSampler, audit_theorems

from tests.engine.conftest import square


@pytest.fixture
def spawn_only(monkeypatch):
    """Pretend the platform only offers the ``spawn`` start method."""
    monkeypatch.setattr(multiprocessing, "get_all_start_methods",
                        lambda: ["spawn"])
    assert not parallelism_available()


def _fallback_events(run) -> list[dict]:
    return [e for e in run.events
            if e["kind"] == "pool-fallback" and e["reason"] == "no-fork"]


def _protocol(seed: int = 3):
    return ProtocolSampler(max_domain=3, max_transitions=5,
                           seed=seed).sample()


class TestSpawnOnlyFallback:
    def test_supervised_items_run_serially(self, spawn_only):
        # The `repro check` shape: one supervised batch, jobs > 1.
        stats = EngineStats()
        with obs.run("no-fork-check") as run:
            results = supervise_work_items(
                square, range(4), jobs=2, stats=stats,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01))
        assert results == [0, 1, 4, 9]
        assert stats.pool_fallbacks == 1
        assert _fallback_events(run)

    def test_forced_batch_schedule_also_degrades(self, spawn_only):
        # schedule="batch" cannot run without fork either; it must
        # degrade exactly like auto instead of crashing.
        with obs.run("no-fork-batch") as run:
            results = supervise_work_items(
                square, range(4), jobs=2, schedule="batch",
                policy=SupervisorPolicy(backoff=0.01))
        assert results == [0, 1, 4, 9]
        assert _fallback_events(run)

    def test_sweep_verify(self, spawn_only):
        from repro.checker.sweep import sweep_verify

        protocol = _protocol()
        with obs.run("no-fork-sweep") as run:
            swept = sweep_verify(
                protocol, up_to=4, jobs=2,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01))
        assert len(swept.reports) == 3  # sizes 2..4, all checked
        assert _fallback_events(run)

    def test_verify_convergence(self, spawn_only):
        from repro.core.convergence import verify_convergence
        from repro.protocols import stabilizing_sum_not_two

        # Deadlock-free with a non-empty candidate-support set, so the
        # analysis reaches the certifier's supervised trail searches.
        protocol = stabilizing_sum_not_two()
        with obs.run("no-fork-verify") as run:
            report = verify_convergence(
                protocol, max_ring_size=4, jobs=2,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01))
        assert report.verdict is not None
        assert _fallback_events(run)

    def test_audit_theorems(self, spawn_only):
        with obs.run("no-fork-fuzz") as run:
            report = audit_theorems(
                samples=3, max_ring_size=3, jobs=2,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01))
        assert report.clean
        assert report.samples == 3
        assert _fallback_events(run)

    def test_synthesize_convergence(self, spawn_only):
        from repro.core.synthesis import synthesize_convergence
        from repro.protocols import agreement

        # agreement() has deadlocks to repair, so the synthesis loop
        # actually evaluates candidate combinations under supervision.
        with obs.run("no-fork-synthesize") as run:
            result = synthesize_convergence(
                agreement(), max_ring_size=4, jobs=2,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01))
        assert result is not None
        assert _fallback_events(run)

    def test_fallback_results_match_the_forked_run(self):
        # The same sweep with fork available must agree with the
        # spawn-only serial fallback — degradation changes the
        # execution, never the verdicts.
        from repro.checker.sweep import sweep_verify

        protocol = _protocol()
        policy = SupervisorPolicy(timeout=30.0, backoff=0.01)
        reference = sweep_verify(protocol, up_to=4, jobs=2,
                                 policy=policy)
        try:
            original = multiprocessing.get_all_start_methods
            multiprocessing.get_all_start_methods = lambda: ["spawn"]
            degraded = sweep_verify(protocol, up_to=4, jobs=2,
                                    policy=policy)
        finally:
            multiprocessing.get_all_start_methods = original
        assert degraded.reports == reference.reports
