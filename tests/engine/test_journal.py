"""Unit tests for :mod:`repro.engine.journal`.

The corruption cases matter most: a journal's normal failure mode is a
half-written last line after a hard kill, and the contract is "skip it
with a warning and re-execute that item", never "crash the resume".
"""

from __future__ import annotations

import re

import pytest

from repro.engine.journal import (
    JournalError,
    RunJournal,
    list_runs,
    new_run_id,
    runs_root,
)


def _make_run(tmp_path, run_id="run", entries=3, **meta):
    journal = RunJournal.create(tmp_path, run_id=run_id, **meta)
    for index in range(entries):
        journal.record(f"key-{index}", {"value": index})
    return journal


class TestRoundTrip:
    def test_create_record_resume(self, tmp_path):
        _make_run(tmp_path, entries=3)
        resumed = RunJournal.resume(tmp_path, "run")
        assert resumed.completed == {
            f"key-{i}": {"value": i} for i in range(3)}
        assert resumed.stats.entries_loaded == 3
        assert resumed.stats.corrupt_entries == 0
        assert len(resumed) == 3
        assert "key-1" in resumed
        assert "missing" not in resumed

    def test_duplicate_key_is_recorded_once(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="dupes")
        journal.record("key", 1)
        journal.record("key", 2)  # ignored: first write wins
        assert journal.completed["key"] == 1
        assert journal.stats.entries_recorded == 1
        assert RunJournal.resume(tmp_path, "dupes").completed == {"key": 1}

    def test_unpicklable_value_is_skipped_not_fatal(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="unpicklable")
        journal.record("bad", lambda: None)
        journal.record("good", 42)
        assert "bad" not in journal.completed
        assert RunJournal.resume(tmp_path, "unpicklable").completed == {
            "good": 42}

    def test_meta_is_persisted(self, tmp_path):
        _make_run(tmp_path, run_id="meta", entries=0,
                  command="sweep", fingerprint="abc123")
        resumed = RunJournal.resume(tmp_path, "meta")
        assert resumed.meta["command"] == "sweep"
        assert resumed.meta["fingerprint"] == "abc123"
        assert resumed.meta["format"] == 1


class TestCorruptionTolerance:
    def test_truncated_tail_is_skipped_with_warning(
            self, tmp_path, corrupt_checkpoint):
        journal = _make_run(tmp_path, entries=4)
        corrupt_checkpoint(journal, entry=-1, mode="truncate")
        with pytest.warns(RuntimeWarning, match="corrupt journal entry"):
            resumed = RunJournal.resume(tmp_path, "run")
        assert resumed.stats.entries_loaded == 3
        assert resumed.stats.corrupt_entries == 1
        assert "key-3" not in resumed  # will simply re-execute

    def test_tampered_payload_fails_the_hash_check(
            self, tmp_path, corrupt_checkpoint):
        journal = _make_run(tmp_path, entries=3)
        corrupt_checkpoint(journal, entry=1, mode="tamper")
        with pytest.warns(RuntimeWarning):
            resumed = RunJournal.resume(tmp_path, "run")
        assert resumed.stats.corrupt_entries == 1
        assert set(resumed.completed) == {"key-0", "key-2"}

    def test_garbage_line_is_skipped(self, tmp_path):
        journal = _make_run(tmp_path, entries=2)
        with open(journal.path, "ab") as handle:
            handle.write(b"this is not json\n")
        with pytest.warns(RuntimeWarning):
            resumed = RunJournal.resume(tmp_path, "run")
        assert resumed.stats.entries_loaded == 2
        assert resumed.stats.corrupt_entries == 1

    def test_recording_continues_after_corrupt_resume(
            self, tmp_path, corrupt_checkpoint):
        journal = _make_run(tmp_path, entries=2)
        corrupt_checkpoint(journal, entry=-1, mode="truncate")
        with pytest.warns(RuntimeWarning):
            resumed = RunJournal.resume(tmp_path, "run")
        resumed.record("key-1", {"value": 1})  # the re-executed item
        with pytest.warns(RuntimeWarning):  # the damaged line remains
            final = RunJournal.resume(tmp_path, "run")
        assert set(final.completed) == {"key-0", "key-1"}
        assert final.stats.corrupt_entries == 1


class TestGroupCommit:
    def test_default_interval_fsyncs_every_record(self, tmp_path):
        journal = _make_run(tmp_path, run_id="eager", entries=3)
        assert journal.stats.fsyncs == 3
        assert journal._pending == []

    def test_positive_interval_buffers_in_memory(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="lazy",
                                    flush_interval=60.0)
        for index in range(5):
            journal.record(f"key-{index}", index)
        # Nothing hit the disk yet: the file is still empty and a
        # resume from another process would see zero entries.
        assert journal.path.read_bytes() == b""
        assert journal.stats.fsyncs == 0
        assert len(journal._pending) == 5
        journal.flush()
        assert journal.stats.fsyncs == 1  # one sync for five records
        assert RunJournal.resume(tmp_path, "lazy").completed == {
            f"key-{i}": i for i in range(5)}

    def test_full_buffer_forces_a_commit(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="bounded",
                                    flush_interval=60.0,
                                    flush_max_entries=4)
        for index in range(4):
            journal.record(f"key-{index}", index)
        # The 4th record filled the buffer and committed despite the
        # 60 s interval — the loss window is bounded in entries too.
        assert journal.stats.fsyncs == 1
        assert journal._pending == []

    def test_mid_interval_kill_loses_only_the_uncommitted_window(
            self, tmp_path):
        # Simulate a hard kill: records 0-2 were flushed, records 3-4
        # sat in the buffer when the process died (the buffer is simply
        # never written — exactly what SIGKILL leaves behind).
        journal = RunJournal.create(tmp_path, run_id="killed",
                                    flush_interval=60.0)
        for index in range(3):
            journal.record(f"key-{index}", index)
        journal.flush()
        journal.record("key-3", 3)
        journal.record("key-4", 4)
        del journal  # hard kill: buffered tail abandoned, no flush

        resumed = RunJournal.resume(tmp_path, "killed")
        assert set(resumed.completed) == {"key-0", "key-1", "key-2"}
        assert resumed.stats.corrupt_entries == 0  # clean loss, no tear
        # The resumed run re-executes exactly the lost window.
        for key in ("key-3", "key-4"):
            if key not in resumed:
                resumed.record(key, int(key[-1]))
        assert set(RunJournal.resume(tmp_path, "killed").completed) == {
            f"key-{i}" for i in range(5)}

    def test_group_commit_coalesces_and_restores(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="grouped")
        with journal.group_commit(interval=60.0):
            for index in range(10):
                journal.record(f"key-{index}", index)
        assert journal.flush_interval == 0.0  # per-record mode restored
        assert journal.stats.fsyncs == 1
        assert journal.stats.entries_recorded == 10
        assert len(RunJournal.resume(tmp_path, "grouped")) == 10

    def test_group_commit_flushes_when_the_block_raises(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="raising")
        with pytest.raises(RuntimeError):
            with journal.group_commit(interval=60.0):
                journal.record("done-before-crash", 1)
                raise RuntimeError("worker failure propagating")
        # A parent that can unwind commits everything it recorded.
        assert RunJournal.resume(tmp_path, "raising").completed == {
            "done-before-crash": 1}

    def test_group_commit_respects_an_explicit_interval(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="explicit",
                                    flush_interval=30.0)
        with journal.group_commit(interval=60.0):
            assert journal.flush_interval == 30.0  # left alone
            journal.record("key", 1)
        assert journal.flush_interval == 30.0  # and still left alone
        assert journal._pending == []  # but the exit flush still ran


class TestResumeGuards:
    def test_unknown_run_raises(self, tmp_path):
        _make_run(tmp_path, run_id="known")
        with pytest.raises(JournalError, match="known"):
            RunJournal.resume(tmp_path, "missing")

    def test_fingerprint_mismatch_is_refused(self, tmp_path):
        _make_run(tmp_path, run_id="pinned",
                  fingerprint="a" * 64)
        with pytest.raises(JournalError, match="different analysis"):
            RunJournal.resume(tmp_path, "pinned",
                              fingerprint="b" * 64)

    def test_matching_fingerprint_resumes(self, tmp_path):
        _make_run(tmp_path, run_id="pinned", fingerprint="a" * 64)
        resumed = RunJournal.resume(tmp_path, "pinned",
                                    fingerprint="a" * 64)
        assert len(resumed) == 3

    def test_unpinned_journal_accepts_any_fingerprint(self, tmp_path):
        _make_run(tmp_path, run_id="legacy")  # no fingerprint in meta
        resumed = RunJournal.resume(tmp_path, "legacy",
                                    fingerprint="c" * 64)
        assert len(resumed) == 3


class TestHelpers:
    def test_new_run_id_is_sortable_and_unique(self):
        first, second = new_run_id(), new_run_id()
        assert re.fullmatch(r"\d{8}-\d{6}-[0-9a-f]{6}", first)
        assert first != second

    def test_list_runs(self, tmp_path):
        assert list_runs(tmp_path) == []
        _make_run(tmp_path, run_id="20240101-000000-aaaaaa")
        _make_run(tmp_path, run_id="20240102-000000-bbbbbb")
        (tmp_path / "not-a-run").mkdir()  # no journal.jsonl: ignored
        assert list_runs(tmp_path) == ["20240101-000000-aaaaaa",
                                       "20240102-000000-bbbbbb"]

    def test_runs_root_defaults_to_cache_dir(self):
        from repro.engine import DEFAULT_CACHE_DIR

        assert runs_root() == runs_root(DEFAULT_CACHE_DIR)
        assert runs_root("/tmp/x").as_posix() == "/tmp/x/runs"
