"""Parallel and cached runs are indistinguishable from serial ones.

The engine's contract: ``jobs > 1`` and a warm cache are pure
optimisations — every verdict-bearing field of every report matches the
serial, uncached run, and a cached second run actually records hits and
finishes measurably faster.
"""

from __future__ import annotations

import time

import pytest

from repro.checker.sweep import sweep_verify
from repro.core.livelock import LivelockCertifier
from repro.core.convergence import verify_convergence
from repro.engine import ResultCache
from repro.protocols import (
    gouda_acharya_matching,
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)
from repro.protocols.registry import REGISTRY, get_protocol
from repro.randomgen import audit_theorems


# ----------------------------------------------------------------------
# jobs > 1 == jobs = 1
# ----------------------------------------------------------------------
def test_parallel_sweep_identical_reports():
    for protocol in (stabilizing_agreement(),
                     nongeneralizable_matching()):
        serial = sweep_verify(protocol, up_to=6, jobs=1)
        parallel = sweep_verify(protocol, up_to=6, jobs=2)
        assert parallel.reports == serial.reports
        assert len(parallel.elapsed_seconds) == len(serial.reports)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_parallel_sweep_matches_serial_for_every_bundled_protocol(name):
    """The acceptance bar: `repro sweep --jobs N` verdicts are identical
    to serial for every protocol in the registry."""
    protocol = get_protocol(name)
    serial = sweep_verify(protocol, up_to=5, jobs=1)
    parallel = sweep_verify(protocol, up_to=5, jobs=2)
    assert parallel.reports == serial.reports
    assert parallel.all_self_stabilizing == serial.all_self_stabilizing
    assert parallel.failing_sizes == serial.failing_sizes


def test_parallel_sweep_stop_on_failure_matches_serial():
    protocol = nongeneralizable_matching()
    serial = sweep_verify(protocol, up_to=8, stop_on_failure=True,
                          jobs=1)
    parallel = sweep_verify(protocol, up_to=8, stop_on_failure=True,
                            jobs=2)
    assert parallel.reports == serial.reports
    assert parallel.sizes == (3, 4)  # truncated at the first failure


def test_parallel_livelock_search_identical_report():
    for protocol in (stabilizing_sum_not_two(), livelock_agreement()):
        serial = LivelockCertifier(protocol, jobs=1).analyze()
        parallel = LivelockCertifier(protocol, jobs=2).analyze()
        assert parallel.verdict is serial.verdict
        assert parallel.supports_checked == serial.supports_checked
        assert parallel.trail_witnesses == serial.trail_witnesses
        assert parallel == serial  # stats are compare=False by design


def test_parallel_livelock_search_many_supports():
    # Gouda–Acharya matching has 441 candidate supports — enough to
    # genuinely engage the pool (the protocols above have one support
    # each, which short-circuits to the serial path).
    protocol = gouda_acharya_matching()
    serial = LivelockCertifier(protocol, max_ring_size=4,
                               jobs=1).analyze()
    parallel = LivelockCertifier(protocol, max_ring_size=4,
                                 jobs=2).analyze()
    assert parallel.supports_checked == serial.supports_checked > 1
    assert parallel.trail_witnesses == serial.trail_witnesses
    assert parallel == serial
    assert parallel.stats.parallel


def test_parallel_fuzz_identical_report():
    serial = audit_theorems(samples=10, max_ring_size=3, seed=5, jobs=1)
    parallel = audit_theorems(samples=10, max_ring_size=3, seed=5,
                              jobs=2)
    assert parallel.samples == serial.samples
    assert parallel.certificates_issued == serial.certificates_issued
    assert parallel.deadlock_checks == serial.deadlock_checks
    assert parallel.discrepancies == serial.discrepancies


def test_parallel_verify_convergence_identical_verdict():
    for protocol in (stabilizing_agreement(), stabilizing_sum_not_two()):
        serial = verify_convergence(protocol, jobs=1)
        parallel = verify_convergence(protocol, jobs=2)
        assert parallel == serial  # stats excluded from equality


# ----------------------------------------------------------------------
# cached second run == first run, plus hits and lower wall time
# ----------------------------------------------------------------------
def test_cached_sweep_identical_with_hits_and_speedup(tmp_path):
    protocol = stabilizing_agreement()
    cache = ResultCache(tmp_path / "cache")

    began = time.perf_counter()
    first = sweep_verify(protocol, up_to=8, cache=cache)
    first_seconds = time.perf_counter() - began
    assert first.stats.cache_hits == 0
    assert first.stats.cache_misses == len(first.reports)

    began = time.perf_counter()
    second = sweep_verify(protocol, up_to=8, cache=cache)
    second_seconds = time.perf_counter() - began

    assert second.reports == first.reports
    assert second.stats.cache_hits == len(first.reports)
    assert second.stats.cache_misses == 0
    assert cache.stats.hits > 0
    # The acceptance bar: a warm cache is measurably faster than
    # recomputing seven global state spaces.
    assert second_seconds < first_seconds


def test_cached_sweep_served_from_disk_across_instances(tmp_path):
    protocol = stabilizing_agreement()
    directory = tmp_path / "cache"
    first = sweep_verify(protocol, up_to=6, cache=ResultCache(directory))

    fresh_cache = ResultCache(directory)  # cold memory, warm disk
    second = sweep_verify(protocol, up_to=6, cache=fresh_cache)
    assert second.reports == first.reports
    assert fresh_cache.stats.disk_hits == len(first.reports)


def test_cached_livelock_and_fuzz_reports_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    protocol = stabilizing_sum_not_two()
    first = LivelockCertifier(protocol, cache=cache).analyze()
    second = LivelockCertifier(protocol, cache=cache).analyze()
    assert second == first
    assert second.stats.cache_hits == 1

    audit_first = audit_theorems(samples=6, max_ring_size=3, seed=9,
                                 cache=cache)
    audit_second = audit_theorems(samples=6, max_ring_size=3, seed=9,
                                  cache=cache)
    assert audit_second.samples == audit_first.samples
    assert (audit_second.certificates_issued
            == audit_first.certificates_issued)
    assert audit_second.deadlock_checks == audit_first.deadlock_checks
    assert audit_second.discrepancies == audit_first.discrepancies
    assert audit_second.stats.cache_hits > 0
    assert audit_second.stats.work_items == 0


def test_cached_verify_convergence_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    protocol = stabilizing_agreement()
    first = verify_convergence(protocol, cache=cache)
    second = verify_convergence(protocol, cache=cache)
    assert second == first
    assert second.stats.cache_hits == 1
    assert second.stats.work_items == 0


def test_parallel_cached_sweep_mixed_modes(tmp_path):
    """jobs>1 with a half-warm cache: hits from cache, misses from the
    pool, assembled in size order."""
    protocol = stabilizing_agreement()
    cache = ResultCache(tmp_path / "cache")
    narrow = sweep_verify(protocol, up_to=5, cache=cache)
    wide = sweep_verify(protocol, up_to=8, jobs=2, cache=cache)
    assert wide.sizes == (2, 3, 4, 5, 6, 7, 8)
    assert wide.reports[:len(narrow.reports)] == narrow.reports
    assert wide.stats.cache_hits == len(narrow.reports)
    reference = sweep_verify(protocol, up_to=8)
    assert wide.reports == reference.reports
