"""Differential suite: the compiled kernel backend == the naive backend.

The naive pure-Python interpreter over tuple states is the reference
implementation; the kernel must reproduce it *exactly* — not just
verdict for verdict but state for state and edge for edge, including
enumeration order (both follow the ``itertools.product`` order of
cells, so even successor lists match positionally).  Coverage:

* every bundled symmetric protocol at every tractable ring size,
* ≥ 50 seeded random protocols from :class:`ProtocolSampler`
  (self-disabling and free-form alike), and
* hypothesis-drawn protocols built from raw domain/legitimacy/
  transition draws.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker.convergence import check_instance
from repro.checker.livelock import has_livelock
from repro.checker.statespace import StateGraph
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.randomgen import ProtocolSampler

BUNDLED = (
    matching_base,
    generalizable_matching,
    nongeneralizable_matching,
    gouda_acharya_matching,
    agreement,
    livelock_agreement,
    stabilizing_agreement,
    two_coloring,
    three_coloring,
    sum_not_two,
    stabilizing_sum_not_two,
)
MAX_STATES = 1200

RANDOM_SEEDS = tuple(range(10))
SAMPLES_PER_SEED = 6  # 10 × 6 = 60 random protocols ≥ the 50 required
RANDOM_MAX_K = 4


def assert_backends_identical(instance) -> None:
    """The kernel graph must reproduce the naive graph exactly."""
    naive = StateGraph(instance, backend="naive")
    kernel = StateGraph(instance, backend="kernel")
    assert kernel.backend == "kernel" and naive.backend == "naive"
    assert len(kernel) == len(naive)
    # Same enumeration order: packed codes follow itertools.product.
    assert kernel.states == naive.states
    assert kernel.index == naive.index
    # Edge-for-edge, order included (moves scan processes 0..K-1 in
    # both backends and distinct moves write distinct cells).
    assert kernel.successors == naive.successors
    assert kernel.in_invariant == naive.in_invariant
    assert kernel.invariant_indices == naive.invariant_indices
    assert kernel.deadlock_indices() == naive.deadlock_indices()
    assert has_livelock(kernel) == has_livelock(naive)


def _bundled_instances():
    for factory in BUNDLED:
        protocol = factory()
        size = protocol.process.window_width
        while len(protocol.space.cells) ** size <= MAX_STATES:
            yield pytest.param(protocol, size,
                               id=f"{protocol.name}-K{size}")
            size += 1


@pytest.mark.parametrize("protocol,size", _bundled_instances())
def test_kernel_matches_naive_on_bundled(protocol, size):
    instance = protocol.instantiate(size)
    assert_backends_identical(instance)


@pytest.mark.parametrize("protocol,size", _bundled_instances())
def test_kernel_report_matches_naive_on_bundled(protocol, size):
    instance = protocol.instantiate(size)
    kernel = check_instance(instance, backend="kernel")
    naive = check_instance(instance, backend="naive")
    # GlobalReport equality excludes the stats field, so this compares
    # every verdict, count, and witness tuple.
    assert kernel == naive


def _random_protocols():
    for seed in RANDOM_SEEDS:
        # Alternate the closure restriction so both sampler regimes
        # (synthesis-style and free-form) exercise the kernel.
        sampler = ProtocolSampler(
            seed=seed, restrict_sources_to_bad=bool(seed % 2))
        for index in range(SAMPLES_PER_SEED):
            yield pytest.param(sampler.sample(),
                               id=f"seed{seed}-sample{index}")


@pytest.mark.parametrize("protocol", _random_protocols())
def test_kernel_matches_naive_on_random(protocol):
    for size in range(2, RANDOM_MAX_K + 1):
        instance = protocol.instantiate(size)
        assert_backends_identical(instance)
        assert (check_instance(instance, backend="kernel")
                == check_instance(instance, backend="naive"))


# ----------------------------------------------------------------------
# Hypothesis: protocols from raw draws (not the sampler's distribution).
# ----------------------------------------------------------------------
def _make_protocol(domain: int, legit_mask, transition_picks):
    """A unidirectional protocol from raw hypothesis draws."""
    x = ranged("x", domain)
    skeleton = RingProtocol(
        "hyp", ProcessTemplate(variables=(x,)), lambda v: True)
    states = skeleton.space.states
    legit = frozenset(
        s for s, keep in zip(states, legit_mask) if keep)
    protocol = RingProtocol(
        "hyp", ProcessTemplate(variables=(x,)),
        lambda view: view.state in legit)
    transitions = []
    for index, value in transition_picks:
        source = states[index % len(states)]
        target = source.replace_own((value % domain,))
        if target != source:
            transitions.append(LocalTransition(source, target, "rnd"))
    deduped = list(dict.fromkeys(transitions))
    actions = tuple(action_for_transition(t, name=f"r{i}")
                    for i, t in enumerate(deduped))
    return protocol.with_actions(actions, name="hyp")


protocol_draws = st.tuples(
    st.integers(2, 3),                                   # domain size
    st.lists(st.booleans(), min_size=9, max_size=9),     # legitimacy
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 2)),
             max_size=6),                                # transitions
)


@given(protocol_draws)
@settings(max_examples=40, deadline=None)
def test_kernel_matches_naive_on_hypothesis_draws(draw):
    domain, mask, picks = draw
    protocol = _make_protocol(domain, mask[:domain * domain], picks)
    for size in (2, 3):
        assert_backends_identical(protocol.instantiate(size))


def test_backend_auto_prefers_kernel():
    graph = StateGraph(stabilizing_agreement().instantiate(3))
    assert graph.backend == "kernel"
    assert graph.kernel_stats is not None
    assert graph.kernel_stats.states_encoded == len(graph) == 8


def test_backend_rejects_unknown_name():
    instance = stabilizing_agreement().instantiate(3)
    with pytest.raises(ValueError, match="unknown backend"):
        StateGraph(instance, backend="turbo")
