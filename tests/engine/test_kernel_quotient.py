"""Rotation-symmetry quotient: every claimed verdict is preserved.

Ring rotations are automorphisms of symmetric ring instances, so the
quotient by rotation orbits preserves closure, deadlock existence,
livelock existence, strong/weak convergence, self-stabilization, and
BFS distances into the invariant (hence the worst-case recovery bound).
State and witness *counts* refer to orbits — those are the only fields
allowed to differ from the full space.
"""

from __future__ import annotations

import pytest

from repro.checker.convergence import check_instance
from repro.checker.statespace import StateGraph
from repro.engine.kernel import canonical_rotation
from repro.protocols import (
    DijkstraTokenRing,
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.randomgen import ProtocolSampler

BUNDLED = (
    matching_base,
    generalizable_matching,
    nongeneralizable_matching,
    gouda_acharya_matching,
    agreement,
    livelock_agreement,
    stabilizing_agreement,
    two_coloring,
    three_coloring,
    sum_not_two,
    stabilizing_sum_not_two,
)
MAX_STATES = 1200

# Every field of GlobalReport the quotient claims to preserve exactly.
PRESERVED_FIELDS = (
    "ring_size",
    "closed",
    "strongly_converging",
    "weakly_converging",
    "worst_case_recovery_steps",
)


def assert_verdicts_preserved(instance) -> None:
    full = check_instance(instance, backend="kernel")
    quotient = check_instance(instance, backend="kernel", symmetry=True)
    for name in PRESERVED_FIELDS:
        assert getattr(quotient, name) == getattr(full, name), name
    # Existence (not count) of witnesses is preserved.
    assert bool(quotient.deadlocks_outside) == bool(full.deadlocks_outside)
    assert bool(quotient.livelock_cycles) == bool(full.livelock_cycles)
    assert quotient.self_stabilizing == full.self_stabilizing
    # Size bounds: at most the full space, at least one rep per orbit
    # (orbits have ≤ K members).
    size = instance.size
    assert quotient.state_count <= full.state_count
    assert quotient.state_count * size >= full.state_count
    assert quotient.invariant_count <= full.invariant_count
    assert quotient.invariant_count * size >= full.invariant_count


def _bundled_instances():
    for factory in BUNDLED:
        protocol = factory()
        size = protocol.process.window_width
        while len(protocol.space.cells) ** size <= MAX_STATES:
            yield pytest.param(protocol, size,
                               id=f"{protocol.name}-K{size}")
            size += 1


@pytest.mark.parametrize("protocol,size", _bundled_instances())
def test_quotient_preserves_verdicts_on_bundled(protocol, size):
    assert_verdicts_preserved(protocol.instantiate(size))


@pytest.mark.parametrize("seed", range(6))
def test_quotient_preserves_verdicts_on_random(seed):
    sampler = ProtocolSampler(
        seed=seed, restrict_sources_to_bad=bool(seed % 2))
    for _ in range(4):
        protocol = sampler.sample()
        for size in range(2, 5):
            assert_verdicts_preserved(protocol.instantiate(size))


def test_quotient_orbits_partition_the_full_space():
    """Each full-space state canonicalizes onto exactly one quotient
    representative, and the orbit sizes add back up to |C|^K."""
    instance = generalizable_matching().instantiate(5)
    full = StateGraph(instance, backend="kernel")
    quotient = StateGraph(instance, backend="kernel", symmetry=True)
    assert quotient.symmetry and not full.symmetry

    reps = set(quotient.states)
    size = instance.size
    for state in full.states:
        rotations = {tuple(state[r:] + state[:r]) for r in range(size)}
        assert len(rotations & reps) == 1
        # The representative is the canonical (minimal-code) rotation.
        assert min(rotations, key=full.index.__getitem__) in reps
    # Orbit sizes, summed over representatives, tile the full space.
    orbit_total = sum(
        len({tuple(s[r:] + s[:r]) for r in range(size)})
        for s in quotient.states)
    assert orbit_total == len(full)


def test_canonical_rotation_is_minimal_and_idempotent():
    ring_size, cells = 4, 3
    for code in range(cells ** ring_size):
        canon = canonical_rotation(code, ring_size, cells)
        assert canon <= code
        assert canonical_rotation(canon, ring_size, cells) == canon
        # Rotating never escapes the orbit.
        rotated = (code % cells ** (ring_size - 1)) * cells \
            + code // cells ** (ring_size - 1)
        assert canonical_rotation(rotated, ring_size, cells) == canon


def test_quotient_distances_equal_full_space_distances():
    """BFS distances on the quotient equal the full-space distances of
    each representative (rotations preserve I, so orbits are
    equidistant from the invariant)."""
    instance = stabilizing_agreement().instantiate(5)
    full = StateGraph(instance, backend="kernel")
    quotient = StateGraph(instance, backend="kernel", symmetry=True)
    full_distance = dict(zip(full.states, full.distances_to_invariant()))
    for state, distance in zip(quotient.states,
                               quotient.distances_to_invariant()):
        assert distance == full_distance[state]


def test_quotient_stats_record_the_reduction():
    instance = generalizable_matching().instantiate(6)
    graph = StateGraph(instance, backend="kernel", symmetry=True)
    stats = graph.kernel_stats
    assert stats.full_states == 3 ** 6
    assert stats.quotient_states == len(graph)
    assert 1.0 < stats.quotient_ratio <= 6.0


def test_symmetry_requires_kernel_backend():
    instance = stabilizing_agreement().instantiate(3)
    with pytest.raises(ValueError, match="kernel"):
        StateGraph(instance, backend="naive", symmetry=True)


def test_kernel_backend_rejects_rooted_rings():
    # Dijkstra's token ring has a distinguished root process: it is not
    # rotation-symmetric and must stay on the naive interpreter.
    ring = DijkstraTokenRing(3)
    graph = StateGraph(ring)
    assert graph.backend == "naive"
    with pytest.raises(ValueError, match="kernel"):
        StateGraph(ring, backend="kernel")
    with pytest.raises(ValueError, match="kernel"):
        StateGraph(ring, symmetry=True)
