"""Differential suite: the local-reasoning kernel == the naive pipeline.

The original ``Digraph``-per-query implementations are the reference;
the bitmask kernel must reproduce them exactly:

* trail search — same found/not-found verdict and the same
  ``(K, |E|, t_arcs)`` witness head for every pseudo-livelock support of
  every bundled protocol (the witnessing SCC's ``states`` may come from
  a different matching component, so only the head is pinned);
* FVS enumeration — the branch-and-bound search returns the exhaustive
  enumerator's sets in the exhaustive enumerator's order, truncation
  included, over seeded random digraphs;
* synthesis — byte-identical :class:`SynthesisResult` surfaces
  (outcome, Resolve, chosen combination, rejected list with reasons) on
  every bundled protocol and on ≥ 60 seeded random protocols, and
  identical results under ``jobs=1`` vs ``jobs=2``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.pseudolivelock import (
    SupportExplosion,
    pseudo_livelock_supports,
)
from repro.core.synthesis import Synthesizer
from repro.core.trail import ContiguousTrailSearcher
from repro.graphs import (
    Digraph,
    FvsStats,
    minimal_feedback_vertex_sets,
    minimal_feedback_vertex_sets_exhaustive,
)
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.randomgen import ProtocolSampler

BUNDLED = (
    matching_base,
    generalizable_matching,
    nongeneralizable_matching,
    gouda_acharya_matching,
    agreement,
    livelock_agreement,
    stabilizing_agreement,
    two_coloring,
    three_coloring,
    sum_not_two,
    stabilizing_sum_not_two,
)

RANDOM_SEEDS = tuple(range(10))
SAMPLES_PER_SEED = 6  # 10 × 6 = 60 random protocols ≥ the 60 required
RANDOM_MAX_RING = 5


# ----------------------------------------------------------------------
# Trail search
# ----------------------------------------------------------------------
def _supports(protocol):
    try:
        return pseudo_livelock_supports(protocol.space.transitions)
    except SupportExplosion:
        return []


@pytest.mark.parametrize("factory", BUNDLED,
                         ids=lambda f: f.__name__)
def test_trail_kernel_matches_naive_on_bundled(factory):
    protocol = factory()
    kernel = ContiguousTrailSearcher(protocol, backend="kernel")
    naive = ContiguousTrailSearcher(protocol, backend="naive")
    for support in _supports(protocol):
        found_kernel = kernel.find_trail(support)
        found_naive = naive.find_trail(support)
        assert (found_kernel is None) == (found_naive is None), support
        if found_kernel is None:
            continue
        # The witness head is deterministic; the witnessing SCC's
        # member states may legitimately differ between backends.
        assert found_kernel.ring_size == found_naive.ring_size
        assert found_kernel.enablements == found_naive.enablements
        assert found_kernel.t_arcs == found_naive.t_arcs
        assert found_kernel.illegitimate_states
        assert set(found_kernel.states) <= set(protocol.space.states)


def test_trail_kernel_memoizes_repeat_queries():
    # The base sum-not-two has no transitions; the stabilized variant's
    # recovery arcs give a non-empty support pool.
    protocol = stabilizing_sum_not_two()
    searcher = ContiguousTrailSearcher(protocol, backend="kernel")
    supports = _supports(protocol)
    assert supports
    first = [searcher.find_trail(s) for s in supports]
    hits_before = searcher.kernel_stats().trail_cache_hits
    second = [searcher.find_trail(s) for s in supports]
    assert second == first
    stats = searcher.kernel_stats()
    assert stats.trail_cache_hits >= hits_before + len(supports)


# ----------------------------------------------------------------------
# FVS branch-and-bound vs the exhaustive oracle
# ----------------------------------------------------------------------
def _random_digraph(rng: random.Random, nodes: int = 7) -> Digraph:
    graph = Digraph(nodes=range(nodes))
    for _ in range(rng.randrange(0, 3 * nodes)):
        graph.add_edge(rng.randrange(nodes), rng.randrange(nodes))
    return graph


@pytest.mark.parametrize("seed", range(40))
def test_fvs_branch_and_bound_matches_exhaustive(seed):
    rng = random.Random(seed)
    graph = _random_digraph(rng)
    nodes = list(graph.nodes)
    allowed = rng.sample(nodes, rng.randrange(1, len(nodes) + 1))
    bad = rng.sample(nodes, rng.randrange(1, len(nodes) + 1))
    stats = FvsStats()
    mine = list(minimal_feedback_vertex_sets(
        graph, allowed=allowed, bad=bad, stats=stats))
    oracle = list(minimal_feedback_vertex_sets_exhaustive(
        graph, allowed=allowed, bad=bad))
    # Same sets in the same (size-then-combinations) order.
    assert mine == oracle
    if mine and mine != [frozenset()]:
        assert stats.nodes_explored > 0


@pytest.mark.parametrize("seed", range(10))
def test_fvs_truncation_is_a_prefix(seed):
    rng = random.Random(1000 + seed)
    graph = _random_digraph(rng)
    full = list(minimal_feedback_vertex_sets(graph))
    for max_sets in (1, 2, 3):
        truncated = list(minimal_feedback_vertex_sets(
            graph, max_sets=max_sets))
        assert truncated == full[:max_sets]


# ----------------------------------------------------------------------
# Synthesis
# ----------------------------------------------------------------------
def _comparable(result):
    """The backend-independent surface of a SynthesisResult."""
    return (
        result.outcome,
        result.resolve,
        result.chosen,
        tuple((r.transitions, r.reason) for r in result.rejected),
        result.resolve_sets_tried,
        None if result.protocol is None else result.protocol.name,
    )


def _assert_synthesis_identical(protocol, **kwargs):
    naive = Synthesizer(protocol, backend="naive", **kwargs).synthesize()
    kernel = Synthesizer(protocol, backend="kernel", **kwargs).synthesize()
    assert _comparable(kernel) == _comparable(naive)
    return kernel


@pytest.mark.parametrize("factory", BUNDLED,
                         ids=lambda f: f.__name__)
def test_synthesis_kernel_matches_naive_on_bundled(factory):
    _assert_synthesis_identical(factory())


def _random_protocols():
    for seed in RANDOM_SEEDS:
        # Alternate the closure restriction so both sampler regimes
        # (synthesis-style and free-form) exercise the kernel.
        sampler = ProtocolSampler(
            seed=seed, restrict_sources_to_bad=bool(seed % 2))
        for index in range(SAMPLES_PER_SEED):
            yield pytest.param(sampler.sample(),
                               id=f"seed{seed}-sample{index}")


@pytest.mark.parametrize("protocol", _random_protocols())
def test_synthesis_kernel_matches_naive_on_random(protocol):
    _assert_synthesis_identical(protocol,
                                max_ring_size=RANDOM_MAX_RING)


@pytest.mark.parametrize("factory", (sum_not_two, three_coloring),
                         ids=lambda f: f.__name__)
def test_synthesis_deterministic_across_jobs(factory):
    serial = Synthesizer(factory(), jobs=1).synthesize()
    parallel = Synthesizer(factory(), jobs=2).synthesize()
    assert _comparable(parallel) == _comparable(serial)
    assert parallel.stats.parallel or not parallel.rejected
    sweep_serial = Synthesizer(factory(),
                               jobs=1).evaluate_all_combinations()
    sweep_parallel = Synthesizer(factory(),
                                 jobs=2).evaluate_all_combinations()
    assert sweep_parallel == sweep_serial


def test_synthesis_verdict_memo_hits():
    synthesizer = Synthesizer(sum_not_two())
    first = synthesizer.evaluate_all_combinations()
    hits_before = synthesizer.stats.verdict_cache_hits
    second = synthesizer.evaluate_all_combinations()
    assert second == first
    assert (synthesizer.stats.verdict_cache_hits
            >= hits_before + len(first))


def test_synthesis_stats_expose_kernel_counters():
    result = Synthesizer(sum_not_two(), backend="kernel").synthesize()
    assert result.stats is not None
    assert result.stats.skeleton_compiles > 0
    assert result.stats.mask_evaluations > 0
    assert result.stats.fvs_nodes_explored > 0
    summary = result.stats.summary()
    assert "localkernel" in summary and "fvs" in summary


def test_synthesis_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown synthesis backend"):
        Synthesizer(sum_not_two(), backend="turbo")
