"""Unit tests for :mod:`repro.engine.scheduler`.

The property-based differential harness
(test_supervisor_properties.py) pins verdict equality for batch mode on
real protocols; this file pins the batch-specific mechanics — cost-model
sizing, requeue-without-retry-charge on worker death, heartbeat-armed
timeouts, group-commit journaling and the routing / prewarm plumbing —
on tiny synthetic workers.
"""

from __future__ import annotations

import pytest

from repro.engine import EngineStats
from repro.engine.journal import RunJournal
from repro.engine.pool import WorkerTraceback, parallelism_available
from repro.engine.scheduler import (
    MAX_BATCH_ITEMS,
    MIN_TASK_SECONDS,
    CostModel,
)
from repro.engine.supervisor import (
    FaultPlan,
    SupervisorPolicy,
    supervise_work_items,
)
from repro.obs import runtime as obs

from tests.engine.conftest import square

needs_fork = pytest.mark.skipif(not parallelism_available(),
                                reason="needs the fork start method")


def identity_fallback(context, item):
    return item * item


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_fixed_size_must_be_positive(self):
        with pytest.raises(ValueError):
            CostModel(fixed=0)
        with pytest.raises(ValueError):
            CostModel(fixed=-3)

    def test_first_dispatch_is_a_probe_of_one(self):
        model = CostModel()
        assert model.batch_size(1000, 4) == (1, False)

    def test_fixed_size_bypasses_adaptation(self):
        model = CostModel(fixed=8)
        model.observe(1e-6)  # would suggest a huge batch
        assert model.batch_size(100, 4) == (8, False)
        assert model.batch_size(5, 4) == (5, False)  # remaining clamps

    def test_ewma_sizes_to_the_target(self):
        model = CostModel()
        model.observe(0.01)  # -> 10 tasks per 0.1 s target
        size, tail_limited = model.batch_size(1000, 1)
        assert size == 10
        assert not tail_limited

    def test_ewma_weights_new_samples(self):
        model = CostModel()
        model.observe(0.01)
        model.observe(0.03)
        assert model.ewma == pytest.approx(0.25 * 0.03 + 0.75 * 0.01)

    def test_zero_duration_sample_is_clamped(self):
        model = CostModel()
        model.observe(0.0)  # a clock tick must not explode the batch
        assert model.ewma == MIN_TASK_SECONDS
        size, _ = model.batch_size(10 ** 9, 1)
        assert size == MAX_BATCH_ITEMS

    def test_tail_fair_share_caps_the_batch(self):
        model = CostModel()
        model.observe(1e-5)  # cost model alone would take everything
        size, tail_limited = model.batch_size(8, 4)
        assert size == 1  # ceil(8 / 4 / 2)
        assert tail_limited

    def test_exhausted_queue_sizes_to_zero(self):
        assert CostModel().batch_size(0, 4) == (0, False)

    def test_from_ambient_seeds_from_the_histogram(self):
        with obs.run("seeding"):
            obs.observe("scheduler.task_seconds", 0.02)
            obs.observe("scheduler.task_seconds", 0.04)
            model = CostModel.from_ambient()
        assert model.ewma == pytest.approx(0.03)
        # And without a prior histogram: no seed, probe-first.
        with obs.run("cold"):
            assert CostModel.from_ambient().ewma is None
        assert CostModel.from_ambient().ewma is None  # no run at all


# ----------------------------------------------------------------------
# routing, validation, prewarm
# ----------------------------------------------------------------------
class TestRouting:
    def test_unknown_schedule_is_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            supervise_work_items(square, range(3), schedule="bogus")

    @needs_fork
    def test_prewarm_runs_once_in_the_parent(self):
        calls = []
        results = supervise_work_items(
            square, range(6), jobs=2, schedule="batch",
            policy=SupervisorPolicy(backoff=0.01),
            prewarm=lambda: calls.append(1))
        assert results == [i * i for i in range(6)]
        assert calls == [1]  # parent-side: visible, and exactly once

    def test_prewarm_is_skipped_when_nothing_forks(self):
        calls = []
        results = supervise_work_items(
            square, range(3), jobs=1, schedule="auto",
            policy=SupervisorPolicy(),  # no timeout: serial in-parent
            prewarm=lambda: calls.append(1))
        assert results == [0, 1, 4]
        assert calls == []

    @needs_fork
    def test_schedules_agree_on_results_and_stats_tell_them_apart(self):
        outcomes = {}
        for schedule in ("task", "batch"):
            stats = EngineStats()
            outcomes[schedule] = supervise_work_items(
                square, range(8), jobs=2, stats=stats,
                policy=SupervisorPolicy(timeout=30.0, backoff=0.01),
                schedule=schedule)
            if schedule == "batch":
                assert stats.scheduler_batches > 0
                assert stats.scheduler_batch_items == 8
            else:
                assert stats.scheduler_batches == 0
        assert outcomes["task"] == outcomes["batch"] == [
            i * i for i in range(8)]


# ----------------------------------------------------------------------
# batch execution mechanics
# ----------------------------------------------------------------------
@needs_fork
class TestBatchExecution:
    def test_pinned_batch_size_shapes_the_dispatch(self):
        stats = EngineStats()
        results = supervise_work_items(
            square, range(9), jobs=1, stats=stats, schedule="batch",
            batch_size=3, policy=SupervisorPolicy(backoff=0.01))
        assert results == [i * i for i in range(9)]
        assert stats.scheduler_batches == 3  # ceil(9 / 3), one worker
        assert stats.scheduler_batch_items == 9

    def test_crash_charges_only_the_casualty(self, crashing_worker):
        # One worker, one batch of six: the crash on item 0 must retry
        # item 0 alone and requeue the five bystanders with their
        # attempt counters untouched.
        worker = crashing_worker(crash_items={0})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(6), jobs=1, stats=stats, schedule="batch",
            batch_size=6, policy=SupervisorPolicy(retries=1,
                                                  backoff=0.01))
        assert results == [i * i for i in range(6)]
        assert stats.supervisor_retries == 1
        assert stats.scheduler_requeued == 5
        # retries=1 with 5 requeued bystanders: had requeueing spent
        # retry budget, something here would have degraded.
        assert stats.supervisor_degraded == 0

    def test_injected_crash_via_fault_plan(self):
        stats = EngineStats()
        results = supervise_work_items(
            square, range(4), jobs=2, stats=stats, schedule="batch",
            policy=SupervisorPolicy(backoff=0.01),
            plan=FaultPlan(crash_items=frozenset({0})))
        assert results == [0, 1, 4, 9]
        assert stats.supervisor_retries == 1

    def test_hung_task_is_killed_retried_and_bystanders_requeued(
            self, hanging_worker):
        worker = hanging_worker(hang_items={0})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(5), jobs=1, stats=stats, schedule="batch",
            batch_size=5,
            policy=SupervisorPolicy(timeout=0.4, retries=2,
                                    backoff=0.01))
        assert results == [i * i for i in range(5)]
        assert stats.supervisor_timeouts == 1
        assert stats.scheduler_requeued == 4
        assert stats.supervisor_degraded == 0

    def test_exception_reraises_with_remote_traceback(self):
        def cursed(context, item):
            if item == 2:
                raise ValueError(f"item {item} is cursed")
            return item * item

        with pytest.raises(ValueError, match="item 2 is cursed") as info:
            supervise_work_items(
                cursed, range(4), jobs=2, schedule="batch",
                policy=SupervisorPolicy(backoff=0.01))
        cause = info.value.__cause__
        assert isinstance(cause, WorkerTraceback)
        assert "cursed" in cause.text

    def test_exception_is_not_retried(self, tmp_path):
        counter_dir = tmp_path / "calls"
        counter_dir.mkdir()

        def counting_failure(context, item):
            (counter_dir / f"call-{item}-"
             f"{len(list(counter_dir.iterdir()))}").write_text("")
            raise RuntimeError("deterministic")

        with pytest.raises(RuntimeError, match="deterministic"):
            supervise_work_items(
                counting_failure, range(2), jobs=1, schedule="batch",
                policy=SupervisorPolicy(retries=3, backoff=0.01))
        # The failing item ran exactly once; no retry burned on a
        # deterministic exception.
        calls = [p.name for p in counter_dir.iterdir()]
        assert len([c for c in calls if c.startswith("call-0-")]) <= 1
        assert len([c for c in calls if c.startswith("call-1-")]) <= 1

    def test_unpicklable_result_degrades_that_task(self):
        def lambda_result(context, item):
            return lambda: item  # never pickles

        stats = EngineStats()
        results = supervise_work_items(
            lambda_result, [3, 4], jobs=1, stats=stats,
            schedule="batch",
            policy=SupervisorPolicy(backoff=0.01),
            fallback_worker=identity_fallback)
        assert results == [9, 16]
        assert stats.supervisor_degraded == 2

    def test_degradation_disabled_raises(self):
        def always_crashes(context, item):
            import os as _os
            import signal as _signal

            _os.kill(_os.getpid(), _signal.SIGKILL)

        from repro.engine.supervisor import SupervisorError

        with pytest.raises(SupervisorError, match="degradation"):
            supervise_work_items(
                always_crashes, range(2), jobs=1, schedule="batch",
                policy=SupervisorPolicy(retries=0, backoff=0.01,
                                        degrade=False))


# ----------------------------------------------------------------------
# journaling: group commit under batches
# ----------------------------------------------------------------------
@needs_fork
class TestBatchJournal:
    def test_checkpoints_coalesce_and_resume(self, tmp_path):
        journal = RunJournal.create(tmp_path, run_id="batched")
        keys = [f"key-{i}" for i in range(40)]
        results = supervise_work_items(
            square, range(40), jobs=2, journal=journal, keys=keys,
            schedule="batch", policy=SupervisorPolicy(backoff=0.01))
        assert results == [i * i for i in range(40)]
        assert journal.stats.entries_recorded == 40
        # Group commit: far fewer syncs than records, everything
        # durable by the end of the run.
        assert 1 <= journal.stats.fsyncs < 40
        assert journal.flush_interval == 0.0  # restored on exit
        resumed = RunJournal.resume(tmp_path, "batched")
        assert len(resumed) == 40

    def test_resume_skips_journaled_items(self, tmp_path,
                                          crashing_worker):
        journal = RunJournal.create(tmp_path, run_id="shielded")
        journal.record("key-0", 0)
        journal.record("key-2", 4)
        worker = crashing_worker(crash_items={0, 2})
        stats = EngineStats()
        results = supervise_work_items(
            worker, range(4), jobs=2, stats=stats, schedule="batch",
            journal=journal, keys=[f"key-{i}" for i in range(4)],
            policy=SupervisorPolicy(retries=0, backoff=0.01))
        assert results == [0, 1, 4, 9]
        assert stats.supervisor_resumed == 2
        assert stats.supervisor_retries == 0
