"""Property-based differential harness for the supervision layer.

The supervisor's contract is brutal and simple: **faults must not change
verdicts**.  A sweep that survives worker crashes, per-task timeouts or
a hard parent kill followed by ``--resume`` must produce reports
structurally identical to the serial, unsupervised, naive-backend
reference run.

This file pins that property on seeded random protocols
(:class:`repro.randomgen.ProtocolSampler`): each seed's protocol runs
through the naive serial path, the kernel serial path, and the
supervised path under an injected failure mode, and every report tuple
must compare equal (report equality ignores timing/stats fields by
construction, so this is exactly verdict-and-witness equality).

Both execution strategies are on the hook: even seeds run the injected
fault through ``schedule="task"`` (one fork per attempt), odd seeds
through ``schedule="batch"`` (persistent workers, adaptive batches) —
same differential oracle, so the batch scheduler's crash-requeue,
heartbeat-timeout and group-commit-resume paths must reproduce the
serial verdicts exactly like task mode does.

When a case ever diverges, :func:`shrink_failing_protocol` greedily
removes actions while the divergence persists and the assertion message
carries the minimized guarded-command listing — a failing seed should
arrive on a maintainer's desk already small.
"""

from __future__ import annotations

import pytest

from repro.checker.sweep import sweep_verify
from repro.core.synthesis import Synthesizer
from repro.engine.journal import RunJournal
from repro.engine.pool import parallelism_available
from repro.engine.supervisor import FaultPlan, SupervisorPolicy
from repro.randomgen import ProtocolSampler

pytestmark = pytest.mark.skipif(not parallelism_available(),
                                reason="needs the fork start method")

#: Sweep bound: sizes 2..4 for the single-variable samples — three work
#: items, enough for every failure mode to hit a mid-run item.
UP_TO = 4

#: Seeds per failure mode.  3 modes x 18 seeds = 54 distinct protocols
#: (each mode draws from its own seed block), comfortably past the
#: 50-protocol floor this suite promises.
SEEDS_PER_MODE = 18

FAILURE_MODES = ("crash", "timeout", "kill-resume")


class ParentDown(BaseException):
    """Stands in for the SIGKILL of the whole run (patchable death)."""


def _sample(mode: str, seed: int):
    """One deterministic protocol per (mode, seed): disjoint seed blocks
    keep the 54 sampled protocols distinct across modes."""
    block = FAILURE_MODES.index(mode)
    sampler = ProtocolSampler(max_domain=3, max_transitions=6,
                              seed=1000 * block + seed)
    return sampler.sample()


def _reference(protocol):
    """The trusted result: serial, unsupervised, naive backend."""
    return sweep_verify(protocol, up_to=UP_TO, backend="naive", jobs=1)


def _supervised(protocol, mode: str, tmp_path, schedule="task"):
    """Run the sweep under *mode*'s injected fault and the given
    execution strategy, and return the result (after a resume cycle
    for the kill mode)."""
    policy = SupervisorPolicy(retries=2, backoff=0.01)
    if mode == "crash":
        return sweep_verify(
            protocol, up_to=UP_TO, jobs=2, policy=policy,
            schedule=schedule,
            fault_plan=FaultPlan(crash_items=frozenset({0, 2})))
    if mode == "timeout":
        return sweep_verify(
            protocol, up_to=UP_TO, jobs=2,
            policy=SupervisorPolicy(timeout=0.5, retries=2,
                                    backoff=0.01),
            schedule=schedule,
            fault_plan=FaultPlan(hang_items=frozenset({1}),
                                 hang_seconds=30.0))
    if mode == "kill-resume":
        # In batch mode the dying run exercises group commit's unwind
        # flush: the checkpoint that triggered the death must still be
        # durable when the parent "dies" by stack unwind.
        journal = RunJournal.create(tmp_path, run_id="prop")
        with pytest.raises(ParentDown):
            sweep_verify(
                protocol, up_to=UP_TO, jobs=1, policy=policy,
                journal=journal, schedule=schedule,
                fault_plan=FaultPlan(
                    die_after_checkpoints=1,
                    die=lambda status: (_ for _ in ()).throw(
                        ParentDown(status))))
        rerun = RunJournal.resume(tmp_path, "prop")
        assert len(rerun) >= 1, "died before the first checkpoint"
        result = sweep_verify(protocol, up_to=UP_TO, jobs=2,
                              policy=policy, journal=rerun,
                              schedule=schedule)
        # The resumed run answers every journaled item from the journal
        # (never re-executes it) and runs exactly the rest.
        assert result.stats.supervisor_resumed == \
            rerun.stats.entries_loaded >= 1
        return result
    raise AssertionError(f"unknown mode {mode!r}")


# ----------------------------------------------------------------------
# the shrinker
# ----------------------------------------------------------------------
def shrink_failing_protocol(protocol, still_fails):
    """Greedy delta-debugging over the protocol's actions.

    Repeatedly drops single actions as long as *still_fails* keeps
    holding; the result is 1-minimal (no single further removal
    preserves the failure).  Predicates that crash on a candidate are
    treated as "does not fail" — shrinking must never introduce new
    error classes.
    """
    current = protocol
    progress = True
    while progress:
        progress = False
        actions = current.process.actions
        for index in range(len(actions)):
            candidate = current.with_actions(
                actions[:index] + actions[index + 1:],
                name=f"{protocol.name}_shrunk")
            try:
                failing = still_fails(candidate)
            except Exception:
                continue
            if failing:
                current = candidate
                progress = True
                break
    return current


def _assert_no_divergence(protocol, mode, tmp_path, schedule="task"):
    reference = _reference(protocol)
    kernel = sweep_verify(protocol, up_to=UP_TO, backend="auto", jobs=1)
    assert kernel.reports == reference.reports, \
        "kernel backend diverged from the naive reference"
    supervised = _supervised(protocol, mode, tmp_path, schedule)
    if supervised.reports == reference.reports:
        return

    def diverges(candidate) -> bool:
        base = _reference(candidate)
        faulted = _supervised(candidate, mode,
                              tmp_path / "shrink", schedule)
        return faulted.reports != base.reports

    (tmp_path / "shrink").mkdir(exist_ok=True)
    minimal = shrink_failing_protocol(protocol, diverges)
    pytest.fail(
        f"supervised sweep ({schedule} schedule) diverged from the "
        f"serial reference under injected {mode}; minimized "
        f"reproducer:\n{minimal.pretty()}")


# ----------------------------------------------------------------------
# the properties
# ----------------------------------------------------------------------
def _schedule_for(seed: int) -> str:
    """Even seeds exercise task mode, odd seeds batch mode — both
    execution strategies face every failure mode without doubling the
    (fork-heavy) test count."""
    return "batch" if seed % 2 else "task"


@pytest.mark.parametrize("seed", range(SEEDS_PER_MODE))
class TestFaultsNeverChangeVerdicts:
    def test_worker_crashes(self, seed, tmp_path):
        _assert_no_divergence(_sample("crash", seed), "crash", tmp_path,
                              _schedule_for(seed))

    def test_hangs_under_timeout(self, seed, tmp_path):
        _assert_no_divergence(_sample("timeout", seed), "timeout",
                              tmp_path, _schedule_for(seed))

    def test_kill_resume_rerun(self, seed, tmp_path):
        _assert_no_divergence(_sample("kill-resume", seed),
                              "kill-resume", tmp_path,
                              _schedule_for(seed))


# ----------------------------------------------------------------------
# the same faults against the lattice synthesis search
# ----------------------------------------------------------------------
#: Seeds per failure mode for the synthesis-side property; the lattice
#: engine partitions the combination list into subtree work units, so
#: the same crash/hang/kill-resume ladder must leave synthesis verdicts
#: AND the intrinsic pruned/evaluated counter split untouched.
SYNTH_SEEDS = 6
SYNTH_MAX_RING = 4


def _synth_sample(mode: str, seed: int):
    block = FAILURE_MODES.index(mode)
    sampler = ProtocolSampler(max_domain=3, max_transitions=6,
                              seed=5000 + 1000 * block + seed)
    return sampler.sample()


def _synth_comparable(result):
    return (
        result.outcome,
        result.resolve,
        result.chosen,
        tuple((r.transitions, r.reason) for r in result.rejected),
        result.resolve_sets_tried,
        None if result.protocol is None else result.protocol.name,
    )


def _synth_flat_reference(protocol):
    """The trusted result: serial flat search, no supervision."""
    return _synth_comparable(
        Synthesizer(protocol, max_ring_size=SYNTH_MAX_RING,
                    search="flat").synthesize())


def _synth_unfaulted(protocol, schedule: str):
    """Unfaulted lattice run at the faulted runs' parallelism: the
    counter-split oracle.  The pruned/evaluated split is intrinsic per
    judged combination, and ``jobs`` fixes which combinations the
    speculative batches judge, so every faulted ``jobs=2`` run below
    must reproduce this run's split exactly."""
    synthesizer = Synthesizer(protocol, max_ring_size=SYNTH_MAX_RING,
                              search="lattice", jobs=2,
                              schedule=schedule)
    comparable = _synth_comparable(synthesizer.synthesize())
    stats = synthesizer.stats
    return comparable, (stats.combos_pruned, stats.full_evaluations)


def _synth_supervised(protocol, mode: str, tmp_path, schedule: str):
    policy = SupervisorPolicy(retries=2, backoff=0.01)
    if mode == "crash":
        synthesizer = Synthesizer(
            protocol, max_ring_size=SYNTH_MAX_RING, search="lattice",
            jobs=2, policy=policy, schedule=schedule,
            fault_plan=FaultPlan(crash_items=frozenset({0, 2})))
    elif mode == "timeout":
        synthesizer = Synthesizer(
            protocol, max_ring_size=SYNTH_MAX_RING, search="lattice",
            jobs=2, schedule=schedule,
            policy=SupervisorPolicy(timeout=0.5, retries=2,
                                    backoff=0.01),
            fault_plan=FaultPlan(hang_items=frozenset({1}),
                                 hang_seconds=30.0))
    elif mode == "kill-resume":
        journal = RunJournal.create(tmp_path, run_id="synthprop")
        dying = Synthesizer(
            protocol, max_ring_size=SYNTH_MAX_RING,
            search="lattice", jobs=1, policy=policy,
            journal=journal, schedule=schedule,
            fault_plan=FaultPlan(
                die_after_checkpoints=1,
                die=lambda status: (_ for _ in ()).throw(
                    ParentDown(status))))
        try:
            result = dying.synthesize()
        except ParentDown:
            pass
        else:
            # Nothing ever reached the supervised unit loop (e.g. a
            # combination-free methodology outcome): there is no resume
            # cycle to exercise, just a verdict to check.
            assert len(RunJournal.resume(tmp_path, "synthprop")) == 0
            return (_synth_comparable(result),
                    (dying.stats.combos_pruned,
                     dying.stats.full_evaluations))
        rerun = RunJournal.resume(tmp_path, "synthprop")
        assert len(rerun) >= 1, "died before the first unit checkpoint"
        synthesizer = Synthesizer(
            protocol, max_ring_size=SYNTH_MAX_RING, search="lattice",
            jobs=2, policy=policy, journal=rerun, schedule=schedule)
        result = synthesizer.synthesize()
        # Journaled units are answered from the journal — their
        # verdicts AND counter deltas replay instead of re-running, so
        # the resumed totals must still match the unfaulted split.
        assert synthesizer.stats.supervisor_resumed >= 1
        return (_synth_comparable(result),
                (synthesizer.stats.combos_pruned,
                 synthesizer.stats.full_evaluations))
    else:  # pragma: no cover - harness guard
        raise AssertionError(f"unknown mode {mode!r}")
    result = synthesizer.synthesize()
    return (_synth_comparable(result),
            (synthesizer.stats.combos_pruned,
             synthesizer.stats.full_evaluations))


def _assert_lattice_fault_free(seed: int, mode: str, tmp_path) -> None:
    protocol = _synth_sample(mode, seed)
    schedule = _schedule_for(seed)
    reference = _synth_flat_reference(protocol)
    unfaulted, counters = _synth_unfaulted(protocol, schedule)
    assert unfaulted == reference, \
        "unfaulted lattice diverged from the flat reference"
    faulted, faulted_counters = _synth_supervised(
        protocol, mode, tmp_path, schedule)
    assert faulted == reference, \
        f"lattice search diverged under injected {mode}"
    assert faulted_counters == counters, \
        f"pruned/evaluated split drifted under injected {mode}"


@pytest.mark.parametrize("seed", range(SYNTH_SEEDS))
class TestLatticeSearchUnderFaults:
    def test_worker_crashes(self, seed, tmp_path):
        _assert_lattice_fault_free(seed, "crash", tmp_path)

    def test_hangs_under_timeout(self, seed, tmp_path):
        _assert_lattice_fault_free(seed, "timeout", tmp_path)

    def test_kill_resume_replays_prune_state(self, seed, tmp_path):
        _assert_lattice_fault_free(seed, "kill-resume", tmp_path)


# ----------------------------------------------------------------------
# the shrinker itself
# ----------------------------------------------------------------------
class TestShrinker:
    def test_shrinks_to_the_single_responsible_action(self):
        protocol = ProtocolSampler(max_transitions=6, seed=14).sample()
        actions = protocol.process.actions
        assert len(actions) >= 2, "seed 14 must sample a rich protocol"
        target = actions[-1].name

        def still_fails(candidate) -> bool:
            return any(a.name == target
                       for a in candidate.process.actions)

        minimal = shrink_failing_protocol(protocol, still_fails)
        assert [a.name for a in minimal.process.actions] == [target]

    def test_deliberate_divergence_is_caught_and_minimized(
            self, tmp_path, monkeypatch):
        """End-to-end failure drill: plant a verdict-corrupting
        "supervisor" and demand the harness fail with a minimized
        reproducer — the exact path a real supervision bug would take."""
        import tests.engine.test_supervisor_properties as module

        from repro.checker.sweep import SweepResult

        def corrupted_supervised(protocol, mode, path,
                                 schedule="task"):
            genuine = _reference(protocol)
            return SweepResult(reports=genuine.reports[:-1],
                               elapsed_seconds=genuine.
                               elapsed_seconds[:-1])

        monkeypatch.setattr(module, "_supervised",
                            corrupted_supervised)
        protocol = ProtocolSampler(max_transitions=6, seed=24).sample()
        assert len(protocol.process.actions) >= 2
        with pytest.raises(pytest.fail.Exception,
                           match="minimized reproducer") as info:
            _assert_no_divergence(protocol, "crash", tmp_path)
        # The dropped-report corruption diverges for every candidate,
        # so the shrinker must have stripped the protocol bare.
        assert "protocol" in str(info.value)
