"""Cache keys, invalidation, and corruption handling.

The fingerprint must change whenever anything verdict-relevant changes —
an action, the invariant, an analysis parameter — and must *not* change
for presentation details (protocol name, action labels).  The disk layer
must shrug off corrupted entries rather than raising.
"""

from __future__ import annotations

from repro.checker.sweep import sweep_verify
from repro.engine import ResultCache, analysis_key, protocol_fingerprint
from repro.engine.cache import CacheStats
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import agreement, stabilizing_agreement


def _protocol(legitimacy="x[0] == x[-1]", actions=(), name="p"):
    x = ranged("x", 2)
    process = ProcessTemplate(variables=(x,))
    protocol = RingProtocol(name, process, legitimacy)
    if actions:
        protocol = protocol.extended_with(actions, name=name)
    return protocol


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_rebuilds():
    assert (protocol_fingerprint(stabilizing_agreement())
            == protocol_fingerprint(stabilizing_agreement()))


def test_fingerprint_ignores_presentation():
    assert (protocol_fingerprint(_protocol(name="a"))
            == protocol_fingerprint(_protocol(name="b")))


def test_fingerprint_changes_with_actions():
    # agreement vs its synthesized stabilizing variant differ only in
    # recovery actions — the fingerprint must see that.
    assert (protocol_fingerprint(agreement())
            != protocol_fingerprint(stabilizing_agreement()))


def test_fingerprint_changes_with_invariant():
    assert (protocol_fingerprint(_protocol("x[0] == x[-1]"))
            != protocol_fingerprint(_protocol("x[0] != x[-1]")))


def test_fingerprint_covers_callable_legitimacy():
    dsl = _protocol("x[0] == x[-1]")
    by_callable = RingProtocol(
        "q", ProcessTemplate(variables=(ranged("x", 2),)),
        lambda view: view.state.cell(0) == view.state.cell(-1))
    assert protocol_fingerprint(dsl) == protocol_fingerprint(by_callable)


def test_analysis_key_varies_with_parameters():
    protocol = stabilizing_agreement()
    base = analysis_key("check-instance", protocol, ring_size=5)
    assert base != analysis_key("check-instance", protocol, ring_size=6)
    assert base != analysis_key("livelock", protocol, ring_size=5)
    assert base == analysis_key("check-instance", protocol, ring_size=5)


def test_mutations_force_sweep_recompute(tmp_path):
    """End to end: action/invariant/parameter mutations miss the cache."""
    cache = ResultCache(tmp_path / "cache")
    sweep_verify(agreement(), up_to=4, cache=cache)
    baseline_stores = cache.stats.stores

    mutated_actions = sweep_verify(stabilizing_agreement(), up_to=4,
                                   cache=cache)
    assert mutated_actions.stats.cache_hits == 0
    assert cache.stats.stores > baseline_stores

    mutated_invariant = sweep_verify(
        _protocol("x[0] != x[-1]"), up_to=4, cache=cache)
    assert mutated_invariant.stats.cache_hits == 0

    wider = sweep_verify(agreement(), up_to=5, cache=cache)
    assert wider.stats.cache_hits == 3  # K=2..4 reused, K=5 fresh
    assert wider.stats.cache_misses == 1


# ----------------------------------------------------------------------
# The cache proper
# ----------------------------------------------------------------------
def test_memory_roundtrip_and_stats():
    cache = ResultCache()
    assert cache.get("missing") is None
    assert cache.get("missing", default=7) == 7
    cache.put("k", {"verdict": "ok"})
    assert cache.get("k") == {"verdict": "ok"}
    assert "k" in cache and "missing" not in cache
    assert cache.stats == CacheStats(hits=1, misses=2, stores=1)


def test_disk_roundtrip_across_instances(tmp_path):
    directory = tmp_path / "cache"
    ResultCache(directory).put("deadbeef" * 8, ("report", 42))
    reloaded = ResultCache(directory)
    assert reloaded.get("deadbeef" * 8) == ("report", 42)
    assert reloaded.stats.disk_hits == 1


def test_corrupted_disk_entry_discarded(tmp_path):
    directory = tmp_path / "cache"
    key = "cafebabe" * 8
    writer = ResultCache(directory)
    writer.put(key, ("precious", "result"))
    entry = directory / key[:2] / f"{key}.pkl"
    assert entry.exists()

    entry.write_bytes(b"this is not a cache entry")
    reader = ResultCache(directory)
    assert reader.get(key) is None  # a miss, not an exception
    assert reader.stats.corrupt_entries == 1
    assert not entry.exists()  # the bad entry is gone
    # A store/load cycle works again afterwards.
    reader.put(key, ("fresh", "result"))
    assert ResultCache(directory).get(key) == ("fresh", "result")


def test_truncated_payload_detected_by_checksum(tmp_path):
    directory = tmp_path / "cache"
    key = "0badf00d" * 8
    ResultCache(directory).put(key, list(range(100)))
    entry = directory / key[:2] / f"{key}.pkl"
    entry.write_bytes(entry.read_bytes()[:-10])

    reader = ResultCache(directory)
    assert reader.get(key, default="fallback") == "fallback"
    assert reader.stats.corrupt_entries == 1


def test_clear_memory_keeps_disk(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cache.put("feedface" * 8, "value")
    cache.clear_memory()
    assert cache.get("feedface" * 8) == "value"
    assert cache.stats.disk_hits == 1


def test_memory_only_cache_never_touches_disk(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    cache = ResultCache()
    cache.put("a" * 64, "value")
    assert list(tmp_path.iterdir()) == []
