"""Differential test harness: three verification routes, one truth.

Seeded random small protocols are cross-validated three ways —

1. the **local certifier** (Theorem 4.2 deadlock prediction plus the
   Theorem 5.14 livelock certificate),
2. an explicit **serial per-K sweep** (the cutoff-style baseline), and
3. the **parallel sweep** through the ``repro.engine`` process pool —

asserting verdict agreement on every instance: the deadlock prediction
must match the swept per-K deadlocks exactly (the theorem is exact both
ways), a livelock-freedom certificate must never coexist with a swept
livelock (the theorem is sound), and the parallel sweep must reproduce
the serial sweep's reports verbatim.
"""

from __future__ import annotations

import pytest

from repro.checker.sweep import SweepResult, sweep_verify
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.randomgen import ProtocolSampler

MAX_K = 4
SEEDS = (0, 17, 42)
SAMPLES_PER_SEED = 8


def _sampled_protocols():
    for seed in SEEDS:
        sampler = ProtocolSampler(seed=seed)
        for index in range(SAMPLES_PER_SEED):
            yield pytest.param(sampler.sample(),
                               id=f"seed{seed}-sample{index}")


@pytest.mark.parametrize("protocol", _sampled_protocols())
def test_three_routes_agree(protocol):
    serial = sweep_verify(protocol, up_to=MAX_K, jobs=1)
    parallel = sweep_verify(protocol, up_to=MAX_K, jobs=2)
    predicted = DeadlockAnalyzer(protocol).deadlocked_ring_sizes(MAX_K)
    certificate = LivelockCertifier(
        protocol, max_ring_size=MAX_K + 1).analyze()
    certified = certificate.verdict is LivelockVerdict.CERTIFIED_FREE

    # Route 3 == route 2, report for report.
    assert parallel.reports == serial.reports
    assert parallel.sizes == serial.sizes

    for report in serial.reports:
        # Theorem 4.2 is exact: the local prediction and the explicit
        # per-K check must agree on every instance, in both directions.
        assert bool(report.deadlocks_outside) == (
            report.ring_size in predicted), (
            f"deadlock mismatch at K={report.ring_size}:\n"
            f"{protocol.pretty()}")
        # Theorem 5.14 is sound: a certificate forbids real livelocks.
        if certified:
            assert not report.livelock_cycles, (
                f"livelock under certificate at K={report.ring_size}:\n"
                f"{protocol.pretty()}")


def test_differential_verdict_aggregates():
    """The aggregate sweep verdict is a pure function of the per-K
    reports, so serial/parallel agreement extends to the aggregates."""
    sampler = ProtocolSampler(seed=7)
    for _ in range(SAMPLES_PER_SEED):
        protocol = sampler.sample()
        serial = sweep_verify(protocol, up_to=MAX_K, jobs=1)
        parallel = sweep_verify(protocol, up_to=MAX_K, jobs=3)
        assert isinstance(parallel, SweepResult)
        assert parallel.all_self_stabilizing == serial.all_self_stabilizing
        assert parallel.failing_sizes == serial.failing_sizes
        assert (parallel.total_states_explored
                == serial.total_states_explored)
