"""Differential suite for the incremental lattice synthesis search.

The flat per-combination loop is the reference; the lattice walk
(:mod:`repro.engine.synthsearch`) must reproduce it exactly:

* byte-identical :class:`SynthesisResult` surfaces (outcome, Resolve,
  chosen combination, rejected list with reasons) on every bundled
  protocol and on >= 40 seeded random protocols;
* prune soundness — every combination the lattice answered without a
  leaf-level trail query must get the identical verdict from an
  un-memoized flat evaluation;
* determinism — verdicts *and* the pruned/evaluated counter split are
  identical across ``--jobs 1/2/4`` x ``--schedule task/batch``.

Plus unit coverage for the engine's parts: the subset-closed
:class:`BlockedMaskIndex`, the append-only :class:`PruneBoard` (torn
tails, damaged lines, incremental offsets), the support-closure
explosion cap, and the ``_verdict_key`` bitmask regression (labels
truncate string cell values, so distinct combos used to collide).
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core.synthesis import Synthesizer
from repro.engine.pool import parallelism_available
from repro.engine.synthsearch import (
    EXPLOSION_REASON,
    MAX_SUPPORTS,
    BlockedMaskIndex,
    LatticeSearch,
    PruneBoard,
)
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import Variable
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.randomgen import ProtocolSampler

BUNDLED = (
    matching_base,
    generalizable_matching,
    nongeneralizable_matching,
    gouda_acharya_matching,
    agreement,
    livelock_agreement,
    stabilizing_agreement,
    two_coloring,
    three_coloring,
    sum_not_two,
    stabilizing_sum_not_two,
)

RANDOM_SEEDS = tuple(range(8))
SAMPLES_PER_SEED = 5  # 8 x 5 = 40 random protocols, the suite's floor
RANDOM_MAX_RING = 5


def _comparable(result):
    """The search-independent surface of a SynthesisResult."""
    return (
        result.outcome,
        result.resolve,
        result.chosen,
        tuple((r.transitions, r.reason) for r in result.rejected),
        result.resolve_sets_tried,
        None if result.protocol is None else result.protocol.name,
    )


def _sampled(seed: int, count: int):
    sampler = ProtocolSampler(seed=seed)
    return [sampler.sample() for _ in range(count)]


# ----------------------------------------------------------------------
# Verdict equality: lattice vs flat
# ----------------------------------------------------------------------
@pytest.mark.parametrize("factory", BUNDLED, ids=lambda f: f.__name__)
def test_lattice_matches_flat_on_bundled(factory):
    lattice = Synthesizer(factory(), search="lattice").synthesize()
    flat = Synthesizer(factory(), search="flat").synthesize()
    assert _comparable(lattice) == _comparable(flat)


@pytest.mark.parametrize("factory", (three_coloring, sum_not_two),
                         ids=lambda f: f.__name__)
def test_lattice_matches_flat_full_sweep(factory):
    # evaluate_all_combinations exercises the non-stop-at-first path:
    # every combination's reason string must match, not just the
    # winning prefix.
    lattice = Synthesizer(factory(), search="lattice")
    flat = Synthesizer(factory(), search="flat")
    assert lattice.evaluate_all_combinations() \
        == flat.evaluate_all_combinations()


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_lattice_matches_flat_on_random_protocols(seed):
    # Fresh protocol objects per mode: the kernel trail memo hangs off
    # the protocol's kernel, and a shared one would mask divergence.
    for lattice_p, flat_p in zip(_sampled(seed, SAMPLES_PER_SEED),
                                 _sampled(seed, SAMPLES_PER_SEED)):
        lattice = Synthesizer(lattice_p, max_ring_size=RANDOM_MAX_RING,
                              search="lattice").synthesize()
        flat = Synthesizer(flat_p, max_ring_size=RANDOM_MAX_RING,
                           search="flat").synthesize()
        assert _comparable(lattice) == _comparable(flat), \
            f"seed {seed} diverged on {lattice_p.pretty()}"


def test_naive_backend_silently_searches_flat():
    synthesizer = Synthesizer(three_coloring(), backend="naive",
                              search="lattice")
    assert synthesizer.search == "flat"


def test_unknown_search_mode_is_rejected():
    with pytest.raises(ValueError, match="unknown synthesis search"):
        Synthesizer(three_coloring(), search="bogus")


# ----------------------------------------------------------------------
# Prune soundness
# ----------------------------------------------------------------------
def test_pruned_combos_recheck_identically_flat():
    """Feed the walker one combination at a time, classify each leaf
    from the counter delta, and re-judge every pruned combination with
    an un-memoized flat evaluation: identical verdict required."""
    from repro.core.deadlock import DeadlockAnalyzer

    synthesizer = Synthesizer(three_coloring(), search="lattice")
    resolve = DeadlockAnalyzer(synthesizer.protocol).resolve_candidates()[0]
    candidates = synthesizer.candidate_transitions(resolve)
    combos, _ = synthesizer._enumerate_combinations(candidates)
    search = LatticeSearch(synthesizer)
    pruned = []
    for combo in combos:
        before = search._counts["combos_pruned"]
        reasons, _delta = search.evaluate_unit([combo])
        if search._counts["combos_pruned"] > before:
            pruned.append((combo, reasons[0]))
    assert pruned, "three-coloring must exercise the pruning path"
    oracle = Synthesizer(three_coloring(), search="flat")
    for combo, reason in pruned:
        assert oracle._evaluate_verdict(combo) == reason


def test_counter_split_covers_every_combination():
    synthesizer = Synthesizer(three_coloring(), search="lattice")
    rows = synthesizer.evaluate_all_combinations()
    stats = synthesizer.stats
    assert stats.combos_pruned + stats.full_evaluations == len(rows)
    assert stats.combos_pruned > 0
    assert stats.delta_reuses > 0
    assert stats.checkpoint_bytes > 0


# ----------------------------------------------------------------------
# Determinism across jobs and schedules
# ----------------------------------------------------------------------
@pytest.mark.skipif(not parallelism_available(),
                    reason="needs the fork start method")
def test_verdicts_and_counters_invariant_across_jobs_and_schedules():
    def run(jobs, schedule):
        synthesizer = Synthesizer(three_coloring(), jobs=jobs,
                                  schedule=schedule, search="lattice")
        result = synthesizer.synthesize()
        stats = synthesizer.stats
        return (_comparable(result),
                stats.combos_pruned, stats.full_evaluations)

    reference = run(1, "task")
    for jobs, schedule in itertools.product((1, 2, 4),
                                            ("task", "batch")):
        assert run(jobs, schedule) == reference, (jobs, schedule)


# ----------------------------------------------------------------------
# _verdict_key regression: canonical bitmask, not label strings
# ----------------------------------------------------------------------
def _label_colliding_protocol():
    """States over domain ("aa", "ab"): labels keep only the first
    character of string cell values, so the two opposite transitions
    both render as ``taa``."""
    m = Variable("m", ("aa", "ab"))
    process = ProcessTemplate(variables=(m,), actions=(),
                              reads_left=1, reads_right=0)
    return RingProtocol("label_collider", process, "True")


def test_verdict_key_distinguishes_label_colliding_combos():
    from repro.core.synthesis import _transition_label

    protocol = _label_colliding_protocol()
    space = protocol.space
    states = {state.cells: state for state in space.states}
    forward = LocalTransition(states[(("aa",), ("aa",))],
                              states[(("aa",), ("ab",))])
    backward = LocalTransition(states[(("aa",), ("ab",))],
                               states[(("aa",), ("aa",))])
    # The historical failure mode: distinct transitions, same label.
    assert _transition_label(forward.source, forward.target) \
        == _transition_label(backward.source, backward.target) == "taa"
    synthesizer = Synthesizer(protocol)
    assert synthesizer._verdict_key((forward,)) \
        != synthesizer._verdict_key((backward,))
    # Permutations of one set still share a key (the memo contract).
    assert synthesizer._verdict_key((forward, backward)) \
        == synthesizer._verdict_key((backward, forward))


# ----------------------------------------------------------------------
# BlockedMaskIndex
# ----------------------------------------------------------------------
def test_blocked_mask_index_covers_supersets_only():
    index = BlockedMaskIndex()
    index.add(0b0011, (2, ["a", "b"]), frozenset({"a", "b"}), (3, 4))
    assert index.covers_min(0b0011) is not None
    assert index.covers_min(0b0111) is not None  # strict superset
    assert index.covers_min(0b0001) is None      # subset: not covered
    assert index.covers_min(0b1100) is None      # disjoint


def test_blocked_mask_index_returns_minimal_key():
    index = BlockedMaskIndex()
    index.add(0b0001, (1, ["z"]), frozenset({"z"}), (5, 5))
    index.add(0b0110, (2, ["a", "b"]), frozenset({"a", "b"}), (3, 4))
    key, support, head = index.covers_min(0b0111)
    assert key == (1, ["z"])
    assert head == (5, 5)


def test_blocked_mask_index_deduplicates_masks():
    index = BlockedMaskIndex()
    index.add(0b1, (1, ["a"]), frozenset({"a"}), (2, 2))
    index.add(0b1, (1, ["a"]), frozenset({"a"}), (9, 9))
    assert len(index) == 1
    assert index.covers_min(0b1)[2] == (2, 2)


# ----------------------------------------------------------------------
# PruneBoard
# ----------------------------------------------------------------------
def test_prune_board_round_trip_and_incremental_offsets(tmp_path):
    path = tmp_path / "prunes.jsonl"
    writer, reader = PruneBoard(path), PruneBoard(path)
    first = (frozenset({(0, 1), (1, 0)}), 9, (3, 4))
    second = (frozenset({(2, 3)}), 9, None)
    assert writer.publish([first]) == 1
    assert reader.load_new() == [first]
    assert reader.load_new() == []  # nothing new since last load
    assert writer.publish([first, second]) == 1  # first deduplicated
    assert reader.load_new() == [second]


def test_prune_board_tolerates_torn_tail_and_damage(tmp_path):
    path = tmp_path / "prunes.jsonl"
    writer = PruneBoard(path)
    entry = (frozenset({(4, 5)}), 7, (2, 3))
    writer.publish([entry])
    with open(path, "a") as handle:
        handle.write("{not json}\n")
        handle.write('{"a": [[6, 7]], "b": 7, "h": null')  # torn tail
    reader = PruneBoard(path)
    assert reader.load_new() == [entry]  # damage skipped, tail deferred
    with open(path, "a") as handle:
        handle.write(", "
                     ""
                     "\n")  # complete the torn line (still damaged)
    assert reader.load_new() == []
    tail = (frozenset({(8, 9)}), 7, None)
    writer.publish([tail])
    assert reader.load_new() == [tail]


def test_prune_board_missing_file_is_empty(tmp_path):
    assert PruneBoard(tmp_path / "absent.jsonl").load_new() == []


# ----------------------------------------------------------------------
# Support-closure explosion
# ----------------------------------------------------------------------
def test_explosion_reason_matches_flat_string():
    """13 disjoint write-projection 2-cycles have 2^13 - 1 > 4096
    non-empty cycle unions: both paths must trip the identical cap with
    the identical message."""
    from repro.core.pseudolivelock import (
        SupportExplosion,
        pseudo_livelock_supports,
    )

    m = Variable("m", tuple(range(26)))
    process = ProcessTemplate(variables=(m,), actions=(),
                              reads_left=1, reads_right=0)
    protocol = RingProtocol("explosive", process, "True")
    by_own = {}
    for state in protocol.space.states:
        by_own.setdefault(state.own, state)
    arcs = []
    for low in range(0, 26, 2):
        a, b = by_own[(low,)], by_own[(low + 1,)]
        arcs.append(LocalTransition(a, a.replace_own(b.own)))
        arcs.append(LocalTransition(b, b.replace_own(a.own)))
    with pytest.raises(SupportExplosion) as info:
        pseudo_livelock_supports(arcs)
    assert str(info.value) == EXPLOSION_REASON
    assert MAX_SUPPORTS == 4096


# ----------------------------------------------------------------------
# Ledger / obs wiring
# ----------------------------------------------------------------------
def test_search_counters_reach_the_work_counter_schema():
    from repro.obs.ledger import WORK_COUNTERS

    assert "combos_pruned" in WORK_COUNTERS
    assert "full_evaluations" in WORK_COUNTERS
    # delta_reuses varies with unit partitioning (re-pushed prefixes)
    # and must never be treated as drift-on-identity.
    assert "delta_reuses" not in WORK_COUNTERS


def test_prune_broadcast_event_schema_is_validated():
    from repro.obs.validate import ValidationError, _validate_event

    _validate_event({"kind": "prune-broadcast", "level": "info",
                     "ts": 1.0, "entries": 3, "source": "load"}, "ok")
    with pytest.raises(ValidationError):
        _validate_event({"kind": "prune-broadcast", "level": "info",
                         "ts": 1.0}, "missing payload")


def test_synthsearch_metrics_must_be_numeric():
    from repro.obs.validate import ValidationError, validate_run_log_records
    from repro.obs.validate import RUN_LOG_VERSION

    def log(values):
        return [
            {"type": "run", "version": RUN_LOG_VERSION, "name": "x"},
            {"type": "span", "name": "s", "depth": 0, "start": 0.0,
             "pid": 1, "attrs": {}},
            {"type": "metrics", "values": values},
            {"type": "end"},
        ]

    validate_run_log_records(log({"synthsearch.combos_pruned": 4}))
    with pytest.raises(ValidationError, match="must be numeric"):
        validate_run_log_records(log({"synthsearch.combos_pruned": "4"}))


def test_stats_summary_mentions_the_search_counters():
    synthesizer = Synthesizer(three_coloring(), search="lattice")
    synthesizer.evaluate_all_combinations()
    summary = synthesizer.stats.summary()
    assert "synthsearch" in summary
    assert "combos pruned" in summary
