"""Theorem 4.2: the deadlock analysis on the paper's examples, plus
cross-validation of the per-size predictions against global checking."""

import pytest

from repro.checker import check_instance
from repro.core import analyze_deadlocks
from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import (
    agreement,
    generalizable_matching,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.viz import state_label


class TestExample42:
    """Figure 2: Example 4.2 is deadlock-free for every K."""

    def test_deadlock_free_for_all_k(self):
        report = analyze_deadlocks(generalizable_matching())
        assert report.deadlock_free
        assert report.witness_cycles == ()

    def test_no_deadlocked_size_exists(self):
        analyzer = DeadlockAnalyzer(generalizable_matching())
        assert analyzer.deadlocked_ring_sizes(12) == set()

    def test_cycles_over_legitimate_deadlocks_are_fine(self):
        """The induced RCG may contain cycles — they just must avoid
        illegitimate deadlocks (Theorem 4.2's condition is about bad
        cycles, not acyclicity)."""
        report = analyze_deadlocks(generalizable_matching())
        from repro.graphs import has_cycle

        assert has_cycle(report.induced_rcg)  # legitimate rings exist!


class TestExample43:
    """Figure 3: cycles of lengths 4 and 6 through ⟨l,l,s⟩."""

    def test_not_deadlock_free(self):
        report = analyze_deadlocks(nongeneralizable_matching())
        assert not report.deadlock_free

    def test_witness_cycle_lengths_include_4_and_6(self):
        report = analyze_deadlocks(nongeneralizable_matching())
        lengths = {len(c) for c in report.witness_cycles}
        assert {4, 6} <= lengths

    def test_lls_is_on_the_short_cycles(self):
        report = analyze_deadlocks(nongeneralizable_matching())
        for cycle in report.witness_cycles:
            if len(cycle) in (4, 6):
                assert "lls" in {state_label(s) for s in cycle}

    def test_length4_cycle_is_the_papers(self):
        report = analyze_deadlocks(nongeneralizable_matching())
        four = next(c for c in report.witness_cycles if len(c) == 4)
        assert {state_label(s) for s in four} == {"lls", "lsr", "srl",
                                                  "rll"}

    def test_witness_state_is_a_real_deadlock(self):
        protocol = nongeneralizable_matching()
        report = analyze_deadlocks(protocol)
        four = next(i for i, c in enumerate(report.witness_cycles)
                    if len(c) == 4)
        state = report.witness_state(four, repetitions=2)
        instance = protocol.instantiate(8)
        assert instance.is_deadlock(state)
        assert not instance.invariant_holds(state)

    @pytest.mark.parametrize("size", [4, 5, 6, 7, 8])
    def test_per_size_prediction_matches_global_checker(self, size):
        protocol = nongeneralizable_matching()
        predicted = DeadlockAnalyzer(protocol).deadlocked_ring_sizes(size)
        report = check_instance(protocol.instantiate(size))
        assert (size in predicted) == bool(report.deadlocks_outside)

    def test_refinement_of_papers_claim(self):
        """The paper says "multiples of 4 or 6" but closed walks combine
        cycles: K=7 also deadlocks (confirmed globally in the test
        above), while K=5 stays clean."""
        predicted = DeadlockAnalyzer(
            nongeneralizable_matching()).deadlocked_ring_sizes(12)
        assert 4 in predicted and 6 in predicted
        assert 7 in predicted          # beyond the paper's statement
        assert 5 not in predicted      # the size it was synthesized for


class TestEmptyProtocols:
    def test_agreement_deadlocks(self):
        report = analyze_deadlocks(agreement())
        assert not report.deadlock_free
        assert len(report.local_deadlocks) == 4  # every state
        assert len(report.illegitimate_deadlocks) == 2

    def test_sum_not_two_deadlocks(self):
        report = analyze_deadlocks(sum_not_two())
        labels = {state_label(s) for s in report.illegitimate_deadlocks}
        assert labels == {"20", "11", "02"}

    def test_resolve_candidates_agreement(self):
        """Section 6.2: either {01} or {10} suffices."""
        sets = DeadlockAnalyzer(agreement()).resolve_candidates()
        labels = {frozenset(state_label(s) for s in r) for r in sets}
        assert labels == {frozenset({"01"}), frozenset({"10"})}

    def test_resolve_candidates_sum_not_two(self):
        """Section 6.2: no proper subset works — all three required."""
        sets = DeadlockAnalyzer(sum_not_two()).resolve_candidates()
        labels = [frozenset(state_label(s) for s in r) for r in sets]
        assert labels == [frozenset({"20", "11", "02"})]

    def test_resolve_candidates_colorings(self):
        """Both colorings: every illegitimate state has a continuation
        self-loop, so all must be resolved."""
        for protocol, expected in [(two_coloring(), {"00", "11"}),
                                   (three_coloring(),
                                    {"00", "11", "22"})]:
            sets = DeadlockAnalyzer(protocol).resolve_candidates()
            labels = [frozenset(state_label(s) for s in r) for r in sets]
            assert labels == [frozenset(expected)]


class TestStabilizedProtocols:
    @pytest.mark.parametrize("factory", [stabilizing_agreement,
                                         stabilizing_sum_not_two])
    def test_synthesized_solutions_are_deadlock_free(self, factory):
        report = analyze_deadlocks(factory())
        assert report.deadlock_free

    def test_analysis_is_cached(self):
        analyzer = DeadlockAnalyzer(stabilizing_agreement())
        assert analyzer.analyze() is analyzer.analyze()
