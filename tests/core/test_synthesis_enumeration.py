"""Synthesizer.evaluate_all_combinations — the paper's §6.1 style
exhaustive enumeration of candidate subsets."""

from repro.core.synthesis import Synthesizer
from repro.protocols import (
    agreement,
    sum_not_two,
    three_coloring,
    two_coloring,
)


def accepted(verdicts):
    return [combo for combo, reason in verdicts if reason is None]


def test_three_coloring_all_eight_rejected():
    verdicts = Synthesizer(three_coloring()).evaluate_all_combinations()
    assert len(verdicts) == 8  # 2 candidates per deadlock, 3 deadlocks
    assert accepted(verdicts) == []
    for _combo, reason in verdicts:
        assert "contiguous trail" in reason


def test_sum_not_two_four_accepted_four_rejected():
    verdicts = Synthesizer(sum_not_two()).evaluate_all_combinations()
    assert len(verdicts) == 8
    assert len(accepted(verdicts)) == 4
    labelled = {frozenset(t.label for t in combo): reason
                for combo, reason in verdicts}
    # the paper's named pair:
    assert labelled[frozenset({"t21", "t12", "t01"})] is None  # accepted
    assert labelled[frozenset({"t21", "t10", "t02"})] is not None


def test_two_coloring_single_combination():
    verdicts = Synthesizer(two_coloring()).evaluate_all_combinations()
    assert len(verdicts) == 1
    assert accepted(verdicts) == []


def test_agreement_single_candidate_accepted():
    verdicts = Synthesizer(agreement()).evaluate_all_combinations()
    assert len(verdicts) == 1
    assert len(accepted(verdicts)) == 1
    combo = accepted(verdicts)[0]
    assert len(combo) == 1


def test_explicit_resolve_set():
    from repro.core.deadlock import DeadlockAnalyzer

    protocol = agreement()
    resolves = DeadlockAnalyzer(protocol).resolve_candidates()
    assert len(resolves) == 2
    for resolve in resolves:
        verdicts = Synthesizer(protocol).evaluate_all_combinations(
            resolve=resolve)
        assert len(verdicts) == 1
        assert accepted(verdicts)


def test_combination_budget_respected():
    synthesizer = Synthesizer(three_coloring(), max_combinations=3)
    verdicts = synthesizer.evaluate_all_combinations()
    assert len(verdicts) == 3
