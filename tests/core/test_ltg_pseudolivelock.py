"""LTG construction (Definition 5.3) and pseudo-livelocks
(Definition 5.13)."""

from repro.core.ltg import build_ltg, s_successors, t_arcs, t_successors
from repro.core.pseudolivelock import (
    elementary_pseudo_livelocks,
    has_pseudo_livelock,
    is_pseudo_livelock_support,
    pseudo_livelock_supports,
    write_projection_graph,
)
from repro.protocol.actions import LocalTransition
from repro.protocols import (
    generalizable_matching,
    livelock_agreement,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)


class TestLtg:
    def test_ltg_contains_both_arc_kinds(self):
        p = stabilizing_agreement()
        ltg = build_ltg(p.space)
        assert len(t_arcs(ltg)) == len(p.space.transitions) == 1
        s_count = sum(1 for _u, _v, k in ltg.edges() if k == "s")
        assert s_count == 8  # full RCG of the 4-state space

    def test_figure4_ltg_of_example42(self):
        p = generalizable_matching()
        ltg = build_ltg(p.space)
        assert len(ltg) == 27
        assert len(t_arcs(ltg)) == len(p.space.transitions)
        # every local state has 3 right continuations (s-arcs)
        for node in p.space.states:
            assert len(s_successors(ltg, node)) == 3

    def test_t_successors(self):
        p = stabilizing_agreement()
        ltg = build_ltg(p.space)
        src = p.space.state_of(1, 0)
        pairs = t_successors(ltg, src)
        assert len(pairs) == 1
        transition, target = pairs[0]
        assert target == p.space.state_of(1, 1)
        assert transition.source == src

    def test_explicit_transition_override(self):
        p = stabilizing_agreement()
        ltg = build_ltg(p.space, transitions=())
        assert t_arcs(ltg) == []


def tr(space, a, b, new):
    source = space.state_of(a, b)
    return LocalTransition(source, source.replace_own((new,)),
                           f"t{b}{new}")


class TestPseudoLivelocks:
    def test_two_cycle(self):
        space = livelock_agreement().space
        t01 = tr(space, 1, 0, 1)
        t10 = tr(space, 0, 1, 0)
        assert has_pseudo_livelock([t01, t10])
        assert not has_pseudo_livelock([t01])
        assert elementary_pseudo_livelocks([t01, t10]) == [
            frozenset({t01, t10})]

    def test_projection_graph_structure(self):
        space = livelock_agreement().space
        t01 = tr(space, 1, 0, 1)
        graph = write_projection_graph([t01])
        assert graph.has_edge((0,), (1,))
        assert graph.edge_keys((0,), (1,)) == {t01}

    def test_three_cycle_of_coloring(self):
        from repro.protocols import three_coloring

        space = three_coloring().space
        cyc = [tr(space, 0, 0, 1), tr(space, 1, 1, 2), tr(space, 2, 2, 0)]
        assert has_pseudo_livelock(cyc)
        assert elementary_pseudo_livelocks(cyc) == [frozenset(cyc)]
        # dropping any one breaks the cycle
        for skip in range(3):
            rest = [t for i, t in enumerate(cyc) if i != skip]
            assert not has_pseudo_livelock(rest)

    def test_parallel_projections_give_distinct_livelocks(self):
        space = livelock_agreement().space
        a = tr(space, 1, 0, 1)        # 0 -> 1 from ⟨1 0⟩
        b = tr(space, 0, 0, 1)        # 0 -> 1 from ⟨0 0⟩ (parallel edge)
        c = tr(space, 0, 1, 0)        # 1 -> 0
        livelocks = elementary_pseudo_livelocks([a, b, c])
        assert frozenset({a, c}) in livelocks
        assert frozenset({b, c}) in livelocks
        assert len(livelocks) == 2

    def test_supports_are_unions_of_elementary(self):
        space = livelock_agreement().space
        a = tr(space, 1, 0, 1)
        b = tr(space, 0, 0, 1)
        c = tr(space, 0, 1, 0)
        supports = pseudo_livelock_supports([a, b, c])
        assert frozenset({a, c}) in supports
        assert frozenset({b, c}) in supports
        assert frozenset({a, b, c}) in supports
        assert len(supports) == 3
        for support in supports:
            assert is_pseudo_livelock_support(support)

    def test_support_check_rejects_dangling_arcs(self):
        space = stabilizing_sum_not_two().space
        t21 = tr(space, 0, 2, 1)
        t12 = tr(space, 1, 1, 2)
        t01 = tr(space, 2, 0, 1)  # 0 -> 1 dangles off the {1,2} cycle
        assert is_pseudo_livelock_support([t21, t12])
        assert not is_pseudo_livelock_support([t21, t12, t01])
        assert not is_pseudo_livelock_support([t01])
        assert not is_pseudo_livelock_support([])

    def test_stabilizing_agreement_has_no_pseudo_livelock(self):
        space = stabilizing_agreement().space
        assert not has_pseudo_livelock(space.transitions)
        assert pseudo_livelock_supports(space.transitions) == []
