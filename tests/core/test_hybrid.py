"""The hybrid verifier: local certificates + bounded global checking."""

import pytest

from repro.core.hybrid import (
    HybridVerdict,
    WitnessClassification,
    _witness_sizes,
    hybrid_verify,
)
from repro.core.trail import TrailWitness
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocols import (
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    sum_not_two,
)


class TestVerdicts:
    def test_converging_protocol_passes_through(self):
        report = hybrid_verify(stabilizing_agreement())
        assert report.verdict is HybridVerdict.CONVERGES
        assert report.classifications == ()
        assert report.counterexample is None

    def test_deadlocking_protocol_passes_through(self):
        report = hybrid_verify(nongeneralizable_matching())
        assert report.verdict is HybridVerdict.DIVERGES_DEADLOCK

    def test_real_livelock_found_with_counterexample(self):
        report = hybrid_verify(livelock_agreement(), check_up_to=5)
        assert report.verdict is HybridVerdict.DIVERGES_LIVELOCK
        assert report.counterexample is not None
        # The counterexample really cycles outside I.
        size = len(report.counterexample[0])
        instance = livelock_agreement().instantiate(size)
        for i, state in enumerate(report.counterexample):
            assert not instance.invariant_holds(state)
            nxt = report.counterexample[
                (i + 1) % len(report.counterexample)]
            assert nxt in instance.successors(state)

    def test_real_witness_classified_real(self):
        report = hybrid_verify(livelock_agreement(), check_up_to=6)
        assert any(not c.spurious for c in report.classifications)
        assert "REAL" in report.summary()

    def test_spurious_trail_bounded_verdict(self):
        """The sum-not-two rejected candidate: its trail is spurious, so
        the hybrid verdict upgrades UNKNOWN to BOUNDED convergence."""
        protocol = sum_not_two()
        space = protocol.space

        def t(a, b, new):
            source = space.state_of(a, b)
            return LocalTransition(source, source.replace_own((new,)),
                                   f"t{b}{new}")

        rejected = [t(0, 2, 1), t(1, 1, 0), t(2, 0, 2)]
        candidate = protocol.extended_with(
            [action_for_transition(x, x.label) for x in rejected])
        report = hybrid_verify(candidate, check_up_to=6)
        assert report.verdict is HybridVerdict.BOUNDED
        assert report.classifications
        assert all(c.spurious for c in report.classifications)
        assert "spurious" in report.summary()


class TestWitnessSizes:
    def _witness(self, ring_size):
        return TrailWitness(ring_size=ring_size, enablements=1,
                            t_arcs=frozenset(), states=(),
                            illegitimate_states=())

    def test_multiples_of_base_size(self):
        assert _witness_sizes(self._witness(3), bound=10, minimum=2) \
            == [3, 6, 9]

    def test_minimum_respected(self):
        assert _witness_sizes(self._witness(2), bound=8, minimum=3) \
            == [4, 6, 8]

    def test_empty_when_bound_too_small(self):
        assert _witness_sizes(self._witness(5), bound=4, minimum=2) == []


def test_classification_str():
    witness = TrailWitness(ring_size=3, enablements=1,
                           t_arcs=frozenset(), states=(),
                           illegitimate_states=())
    spurious = WitnessClassification(witness, (3, 6), None)
    real = WitnessClassification(witness, (3, 6), 6)
    assert "spurious" in str(spurious)
    assert "REAL at K=6" in str(real)
