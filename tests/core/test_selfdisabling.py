"""Assumption 1/2 checks and the self-disabling transformation."""

import pytest

from repro.core.selfdisabling import (
    action_for_transition,
    is_self_disabling,
    is_self_terminating,
    make_self_disabling,
    self_disabling_transitions,
)
from repro.errors import AssumptionViolation
from repro.protocol.dsl import parse_action
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import (
    gouda_acharya_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)


def chain_protocol() -> RingProtocol:
    """x counts up while below the predecessor: local chains 0->1->2."""
    x = ranged("x", 3)
    action = parse_action("x[0] < x[-1] -> x := x[0] + 1", [x],
                          name="inc")
    return RingProtocol("chain", ProcessTemplate(variables=(x,),
                                                 actions=(action,)),
                        "x[0] == x[-1]")


def spinning_protocol() -> RingProtocol:
    """x toggles forever whenever the predecessor is 1: a local cycle."""
    x = ranged("x", 2)
    action = parse_action("x[-1] == 1 -> x := 1 - x[0]", [x], name="spin")
    return RingProtocol("spin", ProcessTemplate(variables=(x,),
                                                actions=(action,)),
                        "x[0] == x[-1]")


class TestChecks:
    def test_paper_solutions_are_self_disabling(self):
        for protocol in (stabilizing_agreement(),
                         stabilizing_sum_not_two(),
                         gouda_acharya_matching()):
            assert is_self_terminating(protocol.space)
            assert is_self_disabling(protocol.space)

    def test_chain_is_terminating_but_not_disabling(self):
        protocol = chain_protocol()
        assert is_self_terminating(protocol.space)
        assert not is_self_disabling(protocol.space)

    def test_spinning_is_not_terminating(self):
        protocol = spinning_protocol()
        assert not is_self_terminating(protocol.space)


class TestTransformation:
    def test_shortcuts_reach_terminal_deadlocks(self):
        protocol = chain_protocol()
        transformed = self_disabling_transitions(protocol.space)
        # From ⟨2 0⟩ the chain 0 -> 1 -> 2 collapses to the single
        # shortcut ⟨2 0⟩ -> ⟨2 2⟩ (and 1 -> 2 stays).
        space = protocol.space
        by_source = {}
        for t in transformed:
            by_source.setdefault(t.source, set()).add(t.target)
        assert by_source[space.state_of(2, 0)] == {space.state_of(2, 2)}
        assert by_source[space.state_of(2, 1)] == {space.state_of(2, 2)}

    def test_transformed_set_is_self_disabling(self):
        protocol = make_self_disabling(chain_protocol())
        assert is_self_disabling(protocol.space)
        assert is_self_terminating(protocol.space)

    def test_transformation_preserves_terminal_reachability(self):
        """Every terminal deadlock reachable by local chains before is
        directly reachable after, and no new sources appear."""
        original = chain_protocol()
        transformed = make_self_disabling(original)
        old_sources = {t.source for t in original.space.transitions}
        new_sources = {t.source for t in transformed.space.transitions}
        assert new_sources == old_sources

    def test_transformation_adds_no_new_deadlocks(self):
        original = chain_protocol()
        transformed = make_self_disabling(original)
        assert set(transformed.space.deadlocks()) == \
            set(original.space.deadlocks())

    def test_already_disabling_protocol_returned_unchanged(self):
        protocol = stabilizing_agreement()
        assert make_self_disabling(protocol) is protocol

    def test_spinning_protocol_raises(self):
        with pytest.raises(AssumptionViolation):
            self_disabling_transitions(spinning_protocol().space)
        with pytest.raises(AssumptionViolation):
            make_self_disabling(spinning_protocol())


class TestActionForTransition:
    def test_realizes_exactly_one_transition(self):
        protocol = stabilizing_agreement()
        space = protocol.space
        transition = space.transitions[0]
        action = action_for_transition(transition, name="only")
        rebuilt = protocol.with_actions((action,))
        assert rebuilt.space.transitions == (transition,)
