"""The Section 6 synthesis methodology end-to-end."""

import pytest

from repro.checker import check_instance
from repro.core import verify_convergence
from repro.core.synthesis import (
    SynthesisOutcome,
    Synthesizer,
    synthesize_convergence,
)
from repro.errors import SynthesisFailure
from repro.protocols import (
    agreement,
    stabilizing_agreement,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.viz import state_label


class TestAgreement:
    def test_success_without_pseudo_livelock(self):
        result = synthesize_convergence(agreement())
        assert result.outcome is SynthesisOutcome.SUCCESS_NPL
        assert result.succeeded
        assert len(result.chosen) == 1

    def test_resolve_is_one_illegitimate_deadlock(self):
        result = synthesize_convergence(agreement())
        assert {state_label(s) for s in result.resolve} in (
            {"01"}, {"10"})
        assert {state_label(s) for s in result.resolve} == {
            state_label(result.chosen[0].source)}

    def test_synthesized_protocol_converges_for_all_k(self):
        result = synthesize_convergence(agreement())
        report = verify_convergence(result.protocol)
        assert report.verdict.value == "converges"

    @pytest.mark.parametrize("size", [2, 3, 4, 5, 6])
    def test_synthesized_protocol_stabilizes_globally(self, size):
        result = synthesize_convergence(agreement())
        report = check_instance(result.protocol.instantiate(size))
        assert report.self_stabilizing

    def test_ternary_agreement_also_synthesizes(self):
        result = synthesize_convergence(agreement(values=3))
        assert result.succeeded
        report = check_instance(result.protocol.instantiate(4))
        assert report.self_stabilizing


class TestColorings:
    def test_three_coloring_fails_with_8_rejections(self):
        """§6.1: 2^3 candidate combinations, all rejected."""
        result = synthesize_convergence(three_coloring())
        assert result.outcome is SynthesisOutcome.FAILURE
        assert result.protocol is None
        assert len(result.rejected) == 8
        for rejection in result.rejected:
            assert "contiguous trail" in rejection.reason

    def test_two_coloring_fails(self):
        """§6.2: consistent with the impossibility result [25]."""
        result = synthesize_convergence(two_coloring())
        assert result.outcome is SynthesisOutcome.FAILURE
        assert len(result.rejected) == 1  # the single candidate pair

    def test_raise_on_failure_flag(self):
        with pytest.raises(SynthesisFailure):
            synthesize_convergence(two_coloring(), raise_on_failure=True)


class TestSumNotTwo:
    def test_success_at_pl_stage(self):
        result = synthesize_convergence(sum_not_two())
        assert result.outcome is SynthesisOutcome.SUCCESS_PL
        assert {state_label(s) for s in result.resolve} == {
            "20", "11", "02"}
        assert len(result.chosen) == 3

    def test_chosen_set_is_trail_free(self):
        result = synthesize_convergence(sum_not_two())
        report = verify_convergence(result.protocol)
        assert report.verdict.value == "converges"

    @pytest.mark.parametrize("size", [3, 4, 5, 6, 7])
    def test_synthesized_protocol_stabilizes_globally(self, size):
        result = synthesize_convergence(sum_not_two())
        report = check_instance(result.protocol.instantiate(size))
        assert report.self_stabilizing


class TestProblemStatementConstraints:
    """Problem 3.1: I unchanged, Δ_pss|I = Δ_p|I, strong stabilization."""

    def test_added_transitions_fire_only_outside_lc(self):
        for factory in (agreement, sum_not_two):
            protocol = factory()
            result = synthesize_convergence(protocol)
            for transition in result.chosen:
                assert not protocol.is_legitimate(transition.source)

    def test_behaviour_inside_invariant_unchanged(self):
        protocol = agreement()
        result = synthesize_convergence(protocol)
        instance = result.protocol.instantiate(5)
        for state in instance.invariant_states():
            assert instance.moves(state) == []  # input had none either

    def test_already_stabilizing_input_returned_as_is(self):
        protocol = stabilizing_agreement()
        result = synthesize_convergence(protocol)
        assert result.outcome is SynthesisOutcome.ALREADY_STABILIZING
        assert result.protocol is protocol
        assert result.chosen == ()


class TestBidirectionalGating:
    def test_bidirectional_synthesis_fails_fast_by_default(self):
        """Theorem 5.14 only excludes *contiguous* livelocks on
        bidirectional rings — not enough to certify a synthesis result,
        so the methodology declines (§6 is stated for unidirectional
        rings)."""
        from repro.protocols import matching_base

        result = synthesize_convergence(matching_base())
        assert result.outcome is SynthesisOutcome.FAILURE
        assert "contiguous" in result.rejected[0].reason

    def test_opt_in_flag_lifts_the_gate(self):
        """With accept_contiguous_only the per-combination verdict no
        longer fails fast on topology (checked on the cheap verdict
        path; a full bidirectional search is exercised by the
        benchmarks)."""
        from repro.protocols import gouda_acharya_matching

        gated = Synthesizer(gouda_acharya_matching())
        reason = gated._livelock_verdict(())
        assert reason is not None and "contiguous" in reason

        lifted = Synthesizer(gouda_acharya_matching(),
                             accept_contiguous_only=True)
        reason = lifted._livelock_verdict(())
        # the fragment has real trails, so it is still rejected — but
        # for the right (searched) reason now
        assert reason is not None and "contiguous trail" in reason


class TestDiagnostics:
    def test_candidate_transitions_are_self_disabling(self):
        synthesizer = Synthesizer(sum_not_two())
        resolve = synthesizer.protocol.space.deadlocks()
        from repro.core.deadlock import DeadlockAnalyzer

        resolve_set = DeadlockAnalyzer(
            synthesizer.protocol).resolve_candidates()[0]
        candidates = synthesizer.candidate_transitions(resolve_set)
        for options in candidates.values():
            for transition in options:
                assert transition.target not in resolve_set

    def test_summary_renders(self):
        result = synthesize_convergence(three_coloring())
        text = result.summary()
        assert "failure" in text
        assert "rejected combinations: 8" in text

    def test_resolve_sets_tried_recorded(self):
        result = synthesize_convergence(two_coloring())
        assert len(result.resolve_sets_tried) == 1
