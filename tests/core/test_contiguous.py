"""The contiguous-livelock dynamics model (Figure 7)."""

import pytest

from repro.core.contiguous import ContiguousLivelockModel


class TestDynamics:
    def test_figure7_scenario_k6_e3(self):
        """Figure 7: K=6, |E|=3 — after K-|E|=3 propagations the block
        of 3 adjacent enablements reappears one position to the left."""
        model = ContiguousLivelockModel(6, 3)
        states = model.run(model.steps_per_round)
        assert states[0].enabled == frozenset({0, 1, 2})
        assert states[-1].enabled == frozenset({5, 0, 1})
        assert states[-1].mover is None

    def test_enablement_count_is_invariant(self):
        """Lemma 5.5: |E| never changes along the livelock."""
        for ring, block in [(6, 3), (5, 2), (7, 1), (4, 3)]:
            model = ContiguousLivelockModel(ring, block)
            for state in model.run(3 * model.steps_per_rotation):
                assert len(state.enabled) == block

    def test_full_rotation_returns_to_start(self):
        model = ContiguousLivelockModel(6, 3)
        states = model.run(model.steps_per_rotation)
        assert states[-1].enabled == states[0].enabled
        assert model.steps_per_rotation == 6 * 3

    def test_block_rotates_against_propagation(self):
        """The segment moves left (decreasing positions) while each
        individual enablement propagates right."""
        model = ContiguousLivelockModel(6, 3)
        starts = []
        state = model.initial()
        for _round in range(6):
            starts.append(state.block_start)
            for _ in range(model.steps_per_round):
                state = model.step(state)
        assert starts == [0, 5, 4, 3, 2, 1]

    def test_single_enablement_walks_the_ring(self):
        model = ContiguousLivelockModel(4, 1)
        positions = [next(iter(s.enabled))
                     for s in model.run(8)]
        assert positions == [0, 1, 2, 3, 0, 1, 2, 3, 0]

    def test_render_matches_figure_style(self):
        model = ContiguousLivelockModel(6, 3)
        assert model.initial().render() == "E E E . . ."
        stepped = model.step(model.initial())
        assert stepped.render() == "E E . E . ."

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ContiguousLivelockModel(4, 0)
        with pytest.raises(ValueError):
            ContiguousLivelockModel(4, 4)

    def test_custom_block_start(self):
        model = ContiguousLivelockModel(5, 2)
        assert model.initial(block_start=3).enabled == frozenset({3, 4})
