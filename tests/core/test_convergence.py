"""The combined convergence verdict and the local closure check."""

import pytest

from repro.checker import StateGraph, is_closed
from repro.core.convergence import (
    ConvergenceVerdict,
    check_local_closure,
    verify_convergence,
)
from repro.protocol.dsl import parse_action
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import (
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    three_coloring,
)


class TestLocalClosure:
    @pytest.mark.parametrize("factory", [
        generalizable_matching,
        nongeneralizable_matching,
        gouda_acharya_matching,
        stabilizing_agreement,
        stabilizing_sum_not_two,
        livelock_agreement,
        three_coloring,
    ])
    def test_paper_protocols_are_closed(self, factory):
        assert check_local_closure(factory())

    def test_detects_direct_violation(self):
        """An action enabled inside LC that exits LC."""
        x = ranged("x", 2)
        bad = parse_action("x[0] == x[-1] -> x := 1 - x[0]", [x])
        protocol = RingProtocol(
            "bad", ProcessTemplate(variables=(x,), actions=(bad,)),
            "x[0] == x[-1]")
        assert not check_local_closure(protocol)

    def test_detects_neighbour_corruption(self):
        """An action that keeps its own window legitimate but corrupts
        its successor's: with ``LC_r = (x_{r-1} == 0)`` the writer never
        sees the damage (it does not read its own variable's effect on
        LC), yet writing ``x_r := 1`` breaks the successor's constraint."""
        x = ranged("x", 2)
        sneaky = parse_action("x[-1] == 0 and x[0] == 0 -> x := 1", [x])
        protocol = RingProtocol(
            "sneaky", ProcessTemplate(variables=(x,), actions=(sneaky,)),
            "x[-1] == 0")
        assert not check_local_closure(protocol)

    @pytest.mark.parametrize("factory,size", [
        (generalizable_matching, 5),
        (nongeneralizable_matching, 6),
        (stabilizing_sum_not_two, 5),
        (livelock_agreement, 5),
    ])
    def test_agrees_with_global_closure(self, factory, size):
        protocol = factory()
        local = check_local_closure(protocol)
        graph = StateGraph(protocol.instantiate(size))
        assert local == is_closed(graph)


class TestVerdicts:
    def test_converges(self):
        report = verify_convergence(stabilizing_agreement())
        assert report.verdict is ConvergenceVerdict.CONVERGES
        assert report.closure_ok
        assert "converges" in report.summary()

    def test_diverges_on_deadlock(self):
        report = verify_convergence(nongeneralizable_matching())
        assert report.verdict is ConvergenceVerdict.DIVERGES
        assert report.livelock is None  # skipped: deadlock is definitive
        assert "witness cycle" in report.summary()

    def test_unknown_on_livelock(self):
        report = verify_convergence(livelock_agreement())
        assert report.verdict is ConvergenceVerdict.UNKNOWN
        assert report.deadlock.deadlock_free
        assert report.livelock is not None
        assert report.livelock.trail_witnesses

    def test_livelock_check_can_be_skipped(self):
        report = verify_convergence(stabilizing_agreement(),
                                    check_livelocks=False)
        assert report.verdict is ConvergenceVerdict.UNKNOWN
        assert report.livelock is None
        assert "skipped" in report.summary()
