"""Right Continuation Graph construction (Definition 4.1, Figure 1)."""

import pytest

from repro.core.rcg import build_rcg, closed_walk_to_global_state
from repro.protocols import matching_base, stabilizing_agreement


class TestBuildRcg:
    def test_figure1_dimensions(self):
        """Figure 1: 27 local states; each has exactly 3 right
        continuations (one per value of the new window's far cell)."""
        base = matching_base()
        rcg = build_rcg(base.space)
        assert len(rcg) == 27
        for node in rcg.nodes:
            assert len(list(rcg.successors(node))) == 3
        assert rcg.edge_count() == 81

    def test_unidirectional_rcg(self):
        p = stabilizing_agreement()
        rcg = build_rcg(p.space)
        assert len(rcg) == 4
        # s2 continues s1 iff s1.own == s2.cell(-1): 2 continuations each.
        for node in rcg.nodes:
            assert len(list(rcg.successors(node))) == 2

    def test_induced_construction(self):
        p = stabilizing_agreement()
        space = p.space
        some = [space.state_of(0, 0), space.state_of(0, 1)]
        rcg = build_rcg(space, vertices=some)
        assert set(rcg.nodes) == set(some)
        assert rcg.has_edge(space.state_of(0, 0), space.state_of(0, 1))
        assert not rcg.has_edge(space.state_of(0, 1), space.state_of(0, 0))

    def test_all_arcs_are_s_arcs(self):
        rcg = build_rcg(stabilizing_agreement().space)
        assert all(key == "s" for _u, _v, key in rcg.edges())


class TestClosedWalkToGlobalState:
    def test_roundtrip_unidirectional(self):
        p = stabilizing_agreement()
        space = p.space
        walk = [space.state_of(0, 1), space.state_of(1, 1),
                space.state_of(1, 0), space.state_of(0, 0)]
        state = closed_walk_to_global_state(walk, space)
        assert state == ((1,), (1,), (0,), (0,))
        # The walk's windows must reappear as the instance's projections.
        instance = p.instantiate(4)
        for r, expected in enumerate(walk):
            assert instance.local_state(state, r) == expected

    def test_rejects_inconsistent_walk(self):
        space = stabilizing_agreement().space
        walk = [space.state_of(0, 1), space.state_of(0, 1)]
        with pytest.raises(ValueError):
            closed_walk_to_global_state(walk, space)

    def test_rejects_too_short_walk(self):
        base = matching_base()
        walk = [base.space.state_of("left", "left", "left")]
        with pytest.raises(ValueError):
            closed_walk_to_global_state(walk, base.space)

    def test_bidirectional_roundtrip(self):
        base = matching_base()
        space = base.space
        lll = space.state_of("left", "left", "left")
        state = closed_walk_to_global_state([lll, lll, lll], space)
        assert state == (("left",),) * 3
