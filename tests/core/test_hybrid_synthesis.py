"""Hybrid synthesis: the bounded-checking fallback."""

from repro.core.hybrid import HybridVerdict, hybrid_synthesize
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocols import (
    agreement,
    sum_not_two,
    three_coloring,
    two_coloring,
)


def rejected_sum_not_two():
    """Sum-not-two pre-equipped with the paper's rejected candidate
    {t21, t10, t02} (spurious trail)."""
    protocol = sum_not_two()
    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    combo = [t(0, 2, 1), t(1, 1, 0), t(2, 0, 2)]
    return protocol.extended_with(
        [action_for_transition(x, x.label) for x in combo])


def test_local_success_keeps_all_k_guarantee():
    result = hybrid_synthesize(agreement())
    assert result.succeeded
    assert result.guarantee == "all-k"
    assert result.local.succeeded


def test_sum_not_two_local_success():
    result = hybrid_synthesize(sum_not_two())
    assert result.guarantee == "all-k"


def test_colorings_fail_even_with_fallback():
    """Their rejected combinations carry *real* livelocks."""
    for factory in (two_coloring, three_coloring):
        result = hybrid_synthesize(factory(), check_up_to=5)
        assert not result.succeeded
        assert result.guarantee == "none"


def test_spurious_rejection_recovered_as_bounded():
    """The paper's rejected {t21, t10, t02}: the pure methodology cannot
    accept it (its pseudo-livelock forms a trail) but bounded checking
    shows every witness spurious — the hybrid path certifies it up to
    the bound."""
    result = hybrid_synthesize(rejected_sum_not_two(), check_up_to=6)
    assert result.succeeded
    assert result.guarantee == "bounded"
    assert result.report is not None
    assert result.report.verdict is HybridVerdict.BOUNDED
    assert all(c.spurious for c in result.report.classifications)
    # and the recovered protocol genuinely stabilizes at checked sizes
    from repro.checker import check_instance

    for size in (3, 4, 5, 6):
        report = check_instance(result.protocol.instantiate(size))
        assert report.self_stabilizing
