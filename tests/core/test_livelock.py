"""Theorem 5.14 certification on the paper's protocols."""

import pytest

from repro.core.livelock import (
    LivelockCertifier,
    LivelockVerdict,
    certify_livelock_freedom,
)
from repro.errors import AssumptionViolation
from repro.protocol.dsl import parse_action
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import (
    gouda_acharya_matching,
    livelock_agreement,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)


class TestCertification:
    def test_stabilizing_agreement_certified(self):
        report = certify_livelock_freedom(stabilizing_agreement())
        assert report.verdict is LivelockVerdict.CERTIFIED_FREE
        assert report.certified
        assert not report.contiguous_only

    def test_stabilizing_sum_not_two_certified(self):
        report = certify_livelock_freedom(stabilizing_sum_not_two())
        assert report.certified
        assert report.supports_checked >= 1  # {t21, t12} was examined

    def test_livelock_agreement_unknown_with_witness(self):
        report = certify_livelock_freedom(livelock_agreement())
        assert report.verdict is LivelockVerdict.UNKNOWN
        assert not report.certified
        assert report.trail_witnesses
        witness = report.trail_witnesses[0]
        assert len(witness.t_arcs) == 2

    def test_gouda_acharya_contiguous_only(self):
        report = certify_livelock_freedom(gouda_acharya_matching())
        assert report.contiguous_only  # bidirectional ring
        assert report.verdict is LivelockVerdict.UNKNOWN

    def test_bidirectional_certificate_never_full(self):
        """Even a trail-free bidirectional protocol is only certified for
        contiguous livelocks (Section 5's scope note)."""
        from repro.protocols import generalizable_matching
        from repro.core.selfdisabling import make_self_disabling

        protocol = make_self_disabling(generalizable_matching())
        report = LivelockCertifier(protocol).analyze()
        assert report.contiguous_only
        assert not report.certified


class TestAssumptions:
    def test_non_self_disabling_protocol_rejected(self):
        x = ranged("x", 3)
        chain = parse_action("x[0] < x[-1] -> x := x[0] + 1", [x])
        protocol = RingProtocol(
            "chain", ProcessTemplate(variables=(x,), actions=(chain,)),
            "x[0] == x[-1]")
        with pytest.raises(AssumptionViolation):
            LivelockCertifier(protocol).analyze()

    def test_non_terminating_protocol_rejected(self):
        x = ranged("x", 2)
        spin = parse_action("x[-1] == 1 -> x := 1 - x[0]", [x])
        protocol = RingProtocol(
            "spin", ProcessTemplate(variables=(x,), actions=(spin,)),
            "x[0] == x[-1]")
        with pytest.raises(AssumptionViolation):
            LivelockCertifier(protocol).analyze()

    def test_checks_can_be_disabled(self):
        x = ranged("x", 3)
        chain = parse_action("x[0] < x[-1] -> x := x[0] + 1", [x])
        protocol = RingProtocol(
            "chain", ProcessTemplate(variables=(x,), actions=(chain,)),
            "x[0] == x[-1]")
        report = LivelockCertifier(
            protocol, require_self_disabling=False).analyze()
        assert report is not None  # analysis runs; verdict best-effort
