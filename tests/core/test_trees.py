"""Tree topology: instance semantics and the exact per-shape DP."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trees import TreeDeadlockAnalyzer, certify_tree_termination
from repro.errors import ProtocolDefinitionError, TopologyError
from repro.protocol.chain import ChainProtocol
from repro.protocol.process import ProcessTemplate
from repro.protocol.tree import TreeInstance, validate_parents
from repro.protocol.variables import ranged
from repro.protocols import (
    chain_broadcast,
    chain_coloring,
    stabilizing_chain_coloring,
)


def parent_vectors(max_nodes: int = 5):
    """Random parent vectors: node i's parent is drawn from 0..i-1
    (node 0 is the root), then yields a valid rooted tree."""
    return st.integers(1, max_nodes).flatmap(
        lambda n: st.tuples(*[st.integers(0, i - 1)
                              for i in range(1, n)]).map(
            lambda ps: (None,) + ps))


class TestParentVectors:
    def test_valid_tree(self):
        assert validate_parents((None, 0, 0, 2)) == 0

    def test_root_not_first(self):
        assert validate_parents((1, None)) == 1

    def test_no_root_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            validate_parents((0, 0))

    def test_two_roots_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            validate_parents((None, None))

    def test_cycle_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            validate_parents((None, 2, 1))

    def test_out_of_range_parent_rejected(self):
        with pytest.raises(ProtocolDefinitionError):
            validate_parents((None, 9))


class TestTreeInstance:
    def test_chain_shaped_tree_equals_chain(self):
        """A path-shaped tree behaves exactly like the chain instance."""
        protocol = chain_broadcast()
        parents = (None, 0, 1, 2)
        tree = TreeInstance(protocol, parents)
        chain = protocol.instantiate(4)
        for state in tree.states():
            assert tree.invariant_holds(state) == \
                chain.invariant_holds(state)
            assert sorted(tree.successors(state)) == \
                sorted(chain.successors(state))

    def test_root_reads_boundary(self):
        protocol = chain_broadcast(boundary=1)
        tree = TreeInstance(protocol, (None, 0, 0))
        state = tree.state_of(0, 0, 1)
        local = tree.local_state(state, 0)
        assert local.cell(-1) == (1,)

    def test_children_and_depth(self):
        tree = TreeInstance(chain_broadcast(), (None, 0, 0, 1))
        assert tree.children_of(0) == [1, 2]
        assert tree.children_of(1) == [3]
        assert tree.depth_of(3) == 2
        assert tree.depth_of(0) == 0

    def test_bidirectional_template_rejected(self):
        x = ranged("x", 2)
        template = ProcessTemplate(variables=(x,), reads_left=1,
                                   reads_right=1)
        protocol = ChainProtocol("bi", template, "x[0] == x[-1]",
                                 left_boundary=0, right_boundary=0)
        with pytest.raises(TopologyError):
            TreeInstance(protocol, (None, 0))

    def test_moves_propagate_down_the_tree(self):
        protocol = chain_broadcast(boundary=1)
        tree = TreeInstance(protocol, (None, 0, 0))
        state = tree.state_of(1, 0, 1)  # child 1 disagrees with parent
        moves = tree.moves(state)
        assert [m.process for m in moves] == [1]
        assert tree.invariant_holds(moves[0].target)


class TestTreeDeadlocks:
    def test_all_trees_question_reduces_to_chains(self):
        assert not TreeDeadlockAnalyzer(
            chain_coloring(2)).deadlock_free_for_all_trees()
        assert TreeDeadlockAnalyzer(
            chain_broadcast()).deadlock_free_for_all_trees()

    def test_witness_is_a_real_tree_deadlock(self):
        analyzer = TreeDeadlockAnalyzer(chain_coloring(2))
        parents = (None, 0, 1, 1, 0)
        state = analyzer.witness_state(parents)
        assert state is not None
        tree = TreeInstance(chain_coloring(2), parents)
        assert tree.is_deadlock(state)
        assert not tree.invariant_holds(state)

    def test_stabilized_coloring_is_clean_on_shapes(self):
        analyzer = TreeDeadlockAnalyzer(stabilizing_chain_coloring(2))
        for parents in [(None,), (None, 0), (None, 0, 0),
                        (None, 0, 1, 1)]:
            assert analyzer.analyze_shape(parents).deadlock_free

    @given(parent_vectors(max_nodes=5))
    @settings(max_examples=40, deadline=None)
    def test_per_shape_dp_matches_brute_force(self, parents):
        """The DP verdict equals exhaustive enumeration of the shape's
        global states, for both a deadlocking and a clean protocol."""
        for factory in (chain_coloring, chain_broadcast):
            protocol = factory()
            analyzer = TreeDeadlockAnalyzer(protocol)
            report = analyzer.analyze_shape(parents)
            tree = TreeInstance(protocol, parents)
            brute = any(
                tree.is_deadlock(s) and not tree.invariant_holds(s)
                for s in tree.states())
            assert report.deadlock_free == (not brute), (
                factory.__name__, parents)
            if not report.deadlock_free:
                witness = analyzer.witness_state(parents)
                assert tree.is_deadlock(witness)
                assert not tree.invariant_holds(witness)

    def test_termination_certificate(self):
        assert certify_tree_termination(chain_broadcast()) == 1
