"""Definition 5.10 / Lemma 5.11 on the Example 5.2 livelock (Figures
5 and 6)."""

from itertools import permutations

import pytest

from repro.core.precedence import (
    precedence_preserving_schedules,
    precedence_relation,
    replay,
    schedule_of_cycle,
)
from repro.errors import TopologyError, VerificationError
from repro.protocols import generalizable_matching, livelock_agreement

PAPER_CYCLE = ["1000", "1100", "0100", "0110",
               "0111", "0011", "1011", "1001"]


@pytest.fixture
def example52():
    protocol = livelock_agreement()
    instance = protocol.instantiate(4)
    cycle = [instance.state_of(*[int(c) for c in s]) for s in PAPER_CYCLE]
    return instance, cycle


class TestSchedule:
    def test_schedule_processes(self, example52):
        instance, cycle = example52
        schedule = schedule_of_cycle(instance, cycle)
        assert [e.process for e in schedule] == [1, 0, 2, 3, 1, 0, 2, 3]

    def test_schedule_rejects_multi_process_steps(self, example52):
        instance, cycle = example52
        broken = [cycle[0], cycle[2]] + cycle[3:]  # skips a step
        with pytest.raises(VerificationError):
            schedule_of_cycle(instance, broken)

    def test_schedule_rejects_disabled_moves(self, example52):
        instance, cycle = example52
        impossible = [instance.state_of(0, 0, 0, 0),
                      instance.state_of(0, 0, 0, 1)]
        with pytest.raises(VerificationError):
            schedule_of_cycle(instance, impossible)


class TestRelation:
    def test_same_process_steps_are_ordered(self, example52):
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        schedule = relation.schedule
        for i in range(len(schedule)):
            for j in range(i + 1, len(schedule)):
                if schedule[i].process == schedule[j].process:
                    assert (i, j) in relation.order

    def test_relation_is_transitively_closed(self, example52):
        instance, cycle = example52
        order = precedence_relation(instance, cycle).order
        for (a, b) in order:
            for (c, d) in order:
                if b == c:
                    assert (a, d) in order

    def test_independent_pairs_are_unordered(self, example52):
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        for i, j in relation.independent_pairs:
            assert (i, j) not in relation.order
            assert (j, i) not in relation.order

    def test_bidirectional_rings_rejected(self):
        protocol = generalizable_matching()
        instance = protocol.instantiate(3)
        with pytest.raises(TopologyError):
            precedence_relation(instance, [instance.uniform_state("self")])


class TestLemma511:
    def test_exactly_eight_livelock_permutations(self, example52):
        """The paper's 2³ = 8 precedence-preserving permutations."""
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        schedules = list(precedence_preserving_schedules(relation))
        assert len(schedules) == 8
        assert tuple(range(8)) in schedules  # the original Sch

    def test_enumeration_matches_brute_force_ground_truth(self, example52):
        """Validated enumeration == all valid cyclic replays (first
        transition pinned)."""
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        mine = set(precedence_preserving_schedules(relation))
        truth = {
            (0,) + perm
            for perm in permutations(range(1, 8))
            if replay(instance, cycle[0], relation.schedule,
                      (0,) + perm) is not None
        }
        assert mine == truth

    def test_every_permutation_is_a_livelock_outside_i(self, example52):
        """Lemma 5.11: each precedence-preserving permutation replays to
        a cycle whose states all lie outside I (Figure 6)."""
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        for permutation in precedence_preserving_schedules(relation):
            states = replay(instance, cycle[0], relation.schedule,
                            permutation)
            assert states is not None
            assert all(not instance.invariant_holds(s) for s in states)

    def test_permutations_preserve_the_relation(self, example52):
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        for permutation in precedence_preserving_schedules(relation):
            assert relation.preserves(permutation)

    def test_figure6_second_livelock_differs_from_first(self, example52):
        """Figure 6 shows a second, distinct state sequence in the same
        equivalence class."""
        instance, cycle = example52
        relation = precedence_relation(instance, cycle)
        sequences = set()
        for permutation in precedence_preserving_schedules(relation):
            states = replay(instance, cycle[0], relation.schedule,
                            permutation)
            sequences.add(tuple(states))
        assert len(sequences) == 8  # all eight are distinct state cycles
