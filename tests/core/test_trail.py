"""The contiguous-trail search (Lemma 5.12 / Theorem 5.14)."""

import pytest

from repro.core.selfdisabling import action_for_transition
from repro.core.trail import ContiguousTrailSearcher, round_pattern
from repro.protocol.actions import LocalTransition
from repro.protocols import (
    agreement,
    sum_not_two,
    three_coloring,
    two_coloring,
)


def tr(space, a, b, new):
    source = space.state_of(a, b)
    return LocalTransition(source, source.replace_own((new,)),
                           f"t{b}{new}")


def with_transitions(protocol, transitions):
    actions = [action_for_transition(t, t.label) for t in transitions]
    return protocol.extended_with(actions)


class TestRoundPattern:
    def test_single_enablement_alternates(self):
        assert round_pattern(4, 1) == ["T", "S", "T", "S", "T", "S!"]

    def test_papers_agreement_trail_shape(self):
        """K=3, |E|=2 gives t,s,s — the shape of the paper's own
        both-transitions agreement trail ≪01,t10,00,s,01,s,10,...≫."""
        assert round_pattern(3, 2) == ["T", "S!", "S!"]

    def test_arc_counts(self):
        for ring_size in range(2, 8):
            for enablements in range(1, ring_size):
                pattern = round_pattern(ring_size, enablements)
                assert pattern.count("T") == ring_size - enablements
                assert (pattern.count("S") + pattern.count("S!")
                        == ring_size - 1)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            round_pattern(3, 0)
        with pytest.raises(ValueError):
            round_pattern(3, 3)


class TestTrailSearch:
    def test_three_coloring_cycle_forms_trail(self):
        """§6.1: {t01, t12, t20} creates the contiguous trail through
        {00, 01, 11, 12, 22, 20} — all illegitimate deadlocks visited."""
        protocol = three_coloring()
        space = protocol.space
        pl = [tr(space, 0, 0, 1), tr(space, 1, 1, 2), tr(space, 2, 2, 0)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        witness = searcher.find_trail(pl)
        assert witness is not None
        assert witness.t_arcs == frozenset(pl)
        assert witness.illegitimate_states  # Theorem 5.14 item 1

    def test_two_coloring_pair_forms_trail(self):
        """§6.2 / Figure 11: ≪00,t01,01,s,11,t10,10,s,00≫."""
        protocol = two_coloring()
        space = protocol.space
        pl = [tr(space, 0, 0, 1), tr(space, 1, 1, 0)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        witness = searcher.find_trail(pl)
        assert witness is not None
        assert witness.enablements == 1  # plain t/s alternation

    def test_agreement_both_directions_trail_at_k3_e2(self):
        """§6.2: including both t01 and t10 yields the trail with
        |E| = 2 (two circulating enablements)."""
        protocol = agreement()
        space = protocol.space
        pl = [tr(space, 1, 0, 1), tr(space, 0, 1, 0)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        witness = searcher.find_trail(pl)
        assert witness is not None
        assert (witness.ring_size, witness.enablements) == (3, 2)

    def test_sum_not_two_rejected_candidate_has_spurious_trail(self):
        """§6.2: {t21, t10, t02} forms a trail (K=3, |E|=2) even though
        no real K=3 livelock exists — sufficiency, not necessity."""
        protocol = sum_not_two()
        space = protocol.space
        pl = [tr(space, 0, 2, 1), tr(space, 1, 1, 0), tr(space, 2, 0, 2)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        witness = searcher.find_trail(pl)
        assert witness is not None
        # ... and indeed there is no real livelock at that size:
        from repro.checker import check_instance

        report = check_instance(
            with_transitions(protocol, pl).instantiate(3))
        assert report.livelock_cycles == ()

    def test_sum_not_two_accepted_candidate_has_no_trail(self):
        """§6.2: within {t21, t12, t01} the pseudo-livelock {t21, t12}
        forms no contiguous trail — the combination is accepted."""
        protocol = sum_not_two()
        space = protocol.space
        chosen = [tr(space, 0, 2, 1), tr(space, 1, 1, 2),
                  tr(space, 2, 0, 1)]
        searcher = ContiguousTrailSearcher(
            with_transitions(protocol, chosen))
        pl = [chosen[0], chosen[1]]  # t21, t12
        assert searcher.find_trail(pl) is None

    def test_empty_support_has_no_trail(self):
        searcher = ContiguousTrailSearcher(agreement())
        assert searcher.find_trail([]) is None

    def test_exists_trail_wrapper(self):
        protocol = two_coloring()
        space = protocol.space
        pl = [tr(space, 0, 0, 1), tr(space, 1, 1, 0)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        assert searcher.exists_trail(pl)
        assert not searcher.exists_trail(pl[:1])

    def test_invalid_max_ring_size(self):
        with pytest.raises(ValueError):
            ContiguousTrailSearcher(agreement(), max_ring_size=1)

    def test_trail_requires_illegitimate_state(self):
        """A candidate whose cycle only visits legitimate states is not a
        Theorem 5.14 witness.  Build one: agreement over 3 values with a
        'legitimate churn' pair on equal states — impossible by LC, so
        instead verify via the two-coloring searcher that supports made of
        legitimate-sourced arcs yield nothing."""
        protocol = two_coloring()
        space = protocol.space
        # arcs sourced at legitimate states 01 / 10
        pl = [tr(space, 0, 1, 0), tr(space, 1, 0, 1)]
        searcher = ContiguousTrailSearcher(with_transitions(protocol, pl))
        witness = searcher.find_trail(pl)
        # The walk 01 -t-> 00 ... actually sources are legitimate but the
        # visited targets 00/11 are illegitimate, so a witness here is
        # acceptable; the assertion is only that any witness must name an
        # illegitimate visited state.
        if witness is not None:
            assert witness.illegitimate_states
