"""Bidirectional chains: the deadlock analysis covers windows that read
both neighbours (the boundary constrains both ends)."""

import pytest

from repro.core.chains import ChainDeadlockAnalyzer
from repro.errors import TopologyError
from repro.core.chains import certify_chain_termination
from repro.protocol.chain import ChainProtocol
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import ranged
from repro.protocols.maximal_matching import (
    MATCHING_DOMAIN,
    MATCHING_LEGITIMACY,
)
from repro.protocol.variables import Variable


def bidirectional_chain(legitimacy: str, domain: int = 2,
                        left=0, right=0) -> ChainProtocol:
    x = ranged("x", domain)
    process = ProcessTemplate(variables=(x,), reads_left=1,
                              reads_right=1)
    return ChainProtocol("bi-chain", process, legitimacy,
                         left_boundary=left, right_boundary=right)


class TestBidirectionalChainDeadlocks:
    @pytest.mark.parametrize("legitimacy,left,right", [
        ("x[0] != x[-1] and x[0] != x[1]", 0, 0),   # middle coloring
        ("x[-1] == x[0] and x[0] == x[1]", 1, 1),   # full agreement
        ("x[0] == 0 or x[-1] == x[1]", 0, 1),
    ])
    def test_per_size_prediction_matches_global(self, legitimacy,
                                                left, right):
        protocol = bidirectional_chain(legitimacy, left=left,
                                       right=right)
        analyzer = ChainDeadlockAnalyzer(protocol)
        predicted = analyzer.deadlocked_chain_sizes(5)
        for size in range(1, 6):
            instance = protocol.instantiate(size)
            brute = any(
                instance.is_deadlock(s)
                and not instance.invariant_holds(s)
                for s in instance.states())
            assert (size in predicted) == brute, (legitimacy, size)

    def test_both_boundaries_constrain_the_walk(self):
        protocol = bidirectional_chain("x[0] != x[-1]", left=0, right=0)
        report = ChainDeadlockAnalyzer(protocol).analyze()
        for start in report.start_deadlocks:
            assert start.cell(-1) == (0,)
        for end in report.end_deadlocks:
            assert end.cell(1) == (0,)

    def test_matching_invariant_on_a_chain(self):
        """Maximal matching on an open chain: the deadlock analysis runs
        on the bidirectional window and agrees with brute force."""
        m = Variable("m", MATCHING_DOMAIN)
        process = ProcessTemplate(variables=(m,), reads_left=1,
                                  reads_right=1)
        protocol = ChainProtocol("matching-chain", process,
                                 MATCHING_LEGITIMACY,
                                 left_boundary="right",
                                 right_boundary="left")
        analyzer = ChainDeadlockAnalyzer(protocol)
        predicted = analyzer.deadlocked_chain_sizes(4)
        for size in (1, 2, 3, 4):
            instance = protocol.instantiate(size)
            brute = any(
                instance.is_deadlock(s)
                and not instance.invariant_holds(s)
                for s in instance.states())
            assert (size in predicted) == brute, size

    def test_termination_certificate_refuses_bidirectional(self):
        protocol = bidirectional_chain("x[0] != x[-1]")
        with pytest.raises(TopologyError):
            certify_chain_termination(protocol)
