"""Chain topology: the instance model, exact deadlock analysis,
termination certificate and synthesis."""

import pytest

from repro.checker import check_instance
from repro.core.chains import (
    ChainDeadlockAnalyzer,
    ChainVerdict,
    certify_chain_termination,
    synthesize_chain_convergence,
    verify_chain_convergence,
)
from repro.errors import (
    AssumptionViolation,
    ProtocolDefinitionError,
    TopologyError,
)
from repro.protocol.chain import ChainProtocol
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import ranged
from repro.protocols import (
    chain_agreement,
    chain_broadcast,
    chain_coloring,
    stabilizing_chain_coloring,
)


class TestChainModel:
    def test_boundary_required_for_left_reads(self):
        x = ranged("x", 2)
        with pytest.raises(ProtocolDefinitionError):
            ChainProtocol("c", ProcessTemplate(variables=(x,)),
                          "x[0] == x[-1]")

    def test_right_boundary_required_for_bidirectional(self):
        x = ranged("x", 2)
        p = ProcessTemplate(variables=(x,), reads_left=1, reads_right=1)
        with pytest.raises(ProtocolDefinitionError):
            ChainProtocol("c", p, "x[0] == x[-1]", left_boundary=0)
        chain = ChainProtocol("c", p, "x[0] == x[-1]",
                              left_boundary=0, right_boundary=1)
        assert chain.right_boundary == (1,)

    def test_local_state_uses_boundaries(self):
        chain = chain_broadcast(boundary=1)
        instance = chain.instantiate(3)
        state = instance.state_of(0, 1, 0)
        assert instance.local_state(state, 0) == \
            chain.space.state_of(1, 0)  # boundary on the left
        assert instance.local_state(state, 2) == \
            chain.space.state_of(1, 0)

    def test_single_process_chain(self):
        chain = chain_broadcast(boundary=1)
        instance = chain.instantiate(1)
        assert instance.state_count == 2
        bad = instance.state_of(0)
        assert not instance.invariant_holds(bad)
        moves = instance.moves(bad)
        assert len(moves) == 1
        assert instance.invariant_holds(moves[0].target)

    def test_invariant_pins_boundary_value(self):
        chain = chain_agreement(boundary=1)
        instance = chain.instantiate(4)
        assert list(instance.invariant_states()) == [
            instance.uniform_state(1)]

    def test_format_state(self):
        instance = chain_broadcast().instantiate(3)
        assert instance.format_state(instance.state_of(0, 1, 0)) \
            == "[0 1 0]"


class TestChainDeadlocks:
    def test_empty_coloring_deadlocks(self):
        analyzer = ChainDeadlockAnalyzer(chain_coloring(2))
        report = analyzer.analyze()
        assert not report.deadlock_free
        assert report.witness_walk is not None
        # Concrete witness is a real deadlock of the right size.
        state = analyzer.witness_state()
        instance = chain_coloring(2).instantiate(len(state))
        assert instance.is_deadlock(state)
        assert not instance.invariant_holds(state)

    def test_broadcast_is_deadlock_free(self):
        report = ChainDeadlockAnalyzer(chain_broadcast()).analyze()
        assert report.deadlock_free

    @pytest.mark.parametrize("factory", [chain_coloring, chain_broadcast,
                                         chain_agreement,
                                         stabilizing_chain_coloring])
    def test_per_size_prediction_matches_global(self, factory):
        protocol = factory()
        predicted = ChainDeadlockAnalyzer(protocol) \
            .deadlocked_chain_sizes(5)
        for size in range(1, 6):
            instance = protocol.instantiate(size)
            has_deadlock = any(
                instance.is_deadlock(s)
                and not instance.invariant_holds(s)
                for s in instance.states())
            assert (size in predicted) == has_deadlock, (factory, size)

    def test_boundary_consistency_filters_starts(self):
        chain = chain_coloring(2, boundary=0)
        report = ChainDeadlockAnalyzer(chain).analyze()
        for start in report.start_deadlocks:
            assert start.cell(-1) == (0,)


class TestTermination:
    def test_certificate_for_self_disabling_chain(self):
        assert certify_chain_termination(chain_broadcast()) == 1

    def test_bidirectional_chain_rejected(self):
        x = ranged("x", 2)
        p = ProcessTemplate(variables=(x,), reads_left=1, reads_right=1)
        chain = ChainProtocol("c", p, "x[0] == x[-1]",
                              left_boundary=0, right_boundary=0)
        with pytest.raises(TopologyError):
            certify_chain_termination(chain)

    def test_self_enabling_chain_rejected(self):
        from repro.protocol.dsl import parse_action

        x = ranged("x", 3)
        climb = parse_action("x[0] < x[-1] -> x := x[0] + 1", [x])
        chain = ChainProtocol(
            "c", ProcessTemplate(variables=(x,), actions=(climb,)),
            "x[0] == x[-1]", left_boundary=0)
        with pytest.raises(AssumptionViolation):
            certify_chain_termination(chain)

    def test_every_execution_terminates_within_bound(self):
        """Empirical check of the K(K+1)/2 bound on the broadcast."""
        from repro.simulation import AdversarialScheduler, run

        chain = chain_broadcast()
        for size in (2, 4, 6):
            instance = chain.instantiate(size)
            bound = size * (size + 1) // 2
            for seed in range(5):
                start = tuple(((seed >> i) & 1,) for i in range(size))
                trace = run(instance, start,
                            AdversarialScheduler(instance, seed=seed),
                            max_steps=bound + 1,
                            stop_on_convergence=False)
                assert trace.steps <= bound


class TestChainVerification:
    def test_broadcast_converges_exactly(self):
        report = verify_chain_convergence(chain_broadcast())
        assert report.verdict is ChainVerdict.CONVERGES
        assert "exact" in report.summary()

    def test_empty_coloring_diverges(self):
        report = verify_chain_convergence(chain_coloring(2))
        assert report.verdict is ChainVerdict.DIVERGES
        assert report.deadlock.witness_walk is not None

    @pytest.mark.parametrize("size", [1, 2, 4, 6])
    def test_verdicts_confirmed_globally(self, size):
        for factory, expect in [(chain_broadcast, True),
                                (stabilizing_chain_coloring, True),
                                (chain_coloring, False)]:
            protocol = factory()
            report = check_instance(protocol.instantiate(size))
            assert report.self_stabilizing == expect, (factory, size)


class TestChainSynthesis:
    def test_two_coloring_synthesizes_on_chains(self):
        """Impossible on unidirectional rings [25]; trivial on chains."""
        result = synthesize_chain_convergence(chain_coloring(2))
        assert result.succeeded
        assert len(result.chosen) == 2  # resolve both 00 and 11
        verdict = verify_chain_convergence(result.protocol)
        assert verdict.verdict is ChainVerdict.CONVERGES
        for size in (1, 3, 5):
            assert check_instance(
                result.protocol.instantiate(size)).self_stabilizing

    def test_agreement_synthesizes_on_chains(self):
        result = synthesize_chain_convergence(chain_agreement())
        assert result.succeeded
        for size in (2, 4):
            assert check_instance(
                result.protocol.instantiate(size)).self_stabilizing

    def test_already_stabilizing_input(self):
        protocol = chain_broadcast()
        result = synthesize_chain_convergence(protocol)
        assert result.succeeded
        assert result.chosen == ()
        assert result.protocol is protocol  # returned unchanged

    def test_summary_renders(self):
        result = synthesize_chain_convergence(chain_coloring(3))
        assert "chain synthesis succeeded" in result.summary()
