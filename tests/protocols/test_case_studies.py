"""Structure and basic semantics of the bundled case studies."""

import pytest

from repro.protocols import (
    DijkstraTokenRing,
    MATCHING_LEGITIMACY,
    agreement,
    coloring,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.protocols.registry import REGISTRY, get_protocol
from repro.viz import state_label


class TestMatchingFamily:
    def test_invariant_example41(self):
        """Example 4.1's legitimate local states."""
        base = matching_base()
        space = base.space
        assert base.is_legitimate(space.state_of("right", "left", "self"))
        assert base.is_legitimate(space.state_of("left", "self", "right"))
        assert base.is_legitimate(space.state_of("self", "right", "left"))
        assert not base.is_legitimate(space.state_of("left", "left",
                                                     "self"))
        assert not base.is_legitimate(space.state_of("self", "self",
                                                     "self"))

    def test_base_has_no_actions(self):
        assert matching_base().process.actions == ()

    def test_example42_action_structure(self):
        p = generalizable_matching()
        assert len(p.process.actions) == 8  # A1, A2, A3a/b, A4a/b, A5a/b
        assert not p.unidirectional
        # A2 is nondeterministic: ⟨s,s,s⟩ has two successors.
        space = p.space
        sss = space.state_of("self", "self", "self")
        targets = {t.target for t in space.transitions if t.source == sss}
        assert targets == {space.state_of("self", "right", "self"),
                           space.state_of("self", "left", "self")}

    def test_example43_action_structure(self):
        p = nongeneralizable_matching()
        assert len(p.process.actions) == 7  # B1, B2a/b, B3a/b, B4a/b

    def test_gouda_acharya_fragment(self):
        p = gouda_acharya_matching()
        assert len(p.process.actions) == 2
        space = p.space
        # t_ls: ⟨l,l,*⟩ -> self; t_sl: ⟨r|s, s, *⟩ -> left
        lls = space.state_of("left", "left", "self")
        assert any(t.source == lls and t.target.own == ("self",)
                   for t in space.transitions)

    def test_matching_actions_fire_only_outside_lc(self):
        for factory in (generalizable_matching, gouda_acharya_matching):
            p = factory()
            for t in p.space.transitions:
                assert not p.is_legitimate(t.source), (p.name, str(t))

    def test_example43_legit_sourced_action_is_unreachable_in_i(self):
        """B3a fires from ⟨r,r,l⟩, which satisfies LC_r locally — but no
        global I-state contains that window (its predecessor's window
        ⟨?,r,r⟩ cannot be legitimate), so closure still holds (the
        check_local_closure tests confirm this)."""
        p = nongeneralizable_matching()
        space = p.space
        rrl = space.state_of("right", "right", "left")
        assert p.is_legitimate(rrl)
        assert any(t.source == rrl for t in space.transitions)
        # no legitimate predecessor window continues into ⟨r,r,l⟩
        predecessors = [s for s in space.states
                        if space.continues(s, rrl)
                        and p.is_legitimate(s)]
        assert predecessors == []


class TestAgreementFamily:
    def test_empty_input(self):
        assert agreement().process.actions == ()
        assert agreement(values=5).space.cells == tuple(
            (v,) for v in range(5))

    def test_livelock_variant_copies_both_ways(self):
        p = livelock_agreement()
        labels = {t.label for t in p.space.transitions}
        assert labels == {"t10", "t01"}

    def test_stabilizing_variants(self):
        up = stabilizing_agreement(resolve_up=True)
        down = stabilizing_agreement(resolve_up=False)
        up_sources = {state_label(t.source)
                      for t in up.space.transitions}
        down_sources = {state_label(t.source)
                        for t in down.space.transitions}
        assert up_sources == {"10"}
        assert down_sources == {"01"}

    def test_mary_stabilizing_agreement(self):
        p = stabilizing_agreement(values=4)
        assert len(p.space) == 16
        # copies the larger predecessor: sources are x[0] < x[-1]
        for t in p.space.transitions:
            assert t.source.cell(0) < t.source.cell(-1)
            assert t.target.own == t.source.cell(-1)


class TestColoringAndSumNotTwo:
    def test_coloring_requires_two_colors(self):
        with pytest.raises(ValueError):
            coloring(1)

    def test_coloring_names(self):
        assert two_coloring().name == "2-coloring"
        assert three_coloring().name == "3-coloring"

    def test_sum_not_two_legitimacy(self):
        p = sum_not_two()
        space = p.space
        for state in space:
            expected = (state.cell(-1)[0] + state.cell(0)[0]) != 2
            assert p.is_legitimate(state) == expected

    def test_stabilizing_sum_not_two_picks_paper_transitions(self):
        """{t21, t12, t01}: 02→01, 11→12, 20→21."""
        p = stabilizing_sum_not_two()
        moves = {(state_label(t.source), state_label(t.target))
                 for t in p.space.transitions}
        assert moves == {("02", "01"), ("11", "12"), ("20", "21")}


class TestTokenRing:
    def test_privileges(self):
        ring = DijkstraTokenRing(4)
        assert ring.privileged((0, 0, 0, 0)) == [0]
        assert ring.privileged((1, 0, 0, 0)) == [1]
        assert ring.privileged((2, 0, 1, 0)) == [1, 2, 3]

    def test_root_move_increments_mod_m(self):
        ring = DijkstraTokenRing(3, values=3)
        moves = ring.moves((2, 2, 2))
        assert [m.process for m in moves] == [0]
        assert moves[0].target == (0, 2, 2)

    def test_non_root_copies_predecessor(self):
        ring = DijkstraTokenRing(3)
        moves = ring.moves((1, 0, 0))
        assert [m.process for m in moves] == [1]
        assert moves[0].target == (1, 1, 0)

    def test_validation(self):
        with pytest.raises(Exception):
            DijkstraTokenRing(1)
        with pytest.raises(Exception):
            DijkstraTokenRing(3).state_of(0, 1)
        with pytest.raises(Exception):
            DijkstraTokenRing(3).state_of(0, 1, 9)


class TestRegistry:
    def test_all_entries_buildable(self):
        for name in REGISTRY:
            protocol = get_protocol(name)
            assert protocol.name

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError, match="agreement"):
            get_protocol("nope")

    def test_legitimacy_constant_exported(self):
        assert "right" in MATCHING_LEGITIMACY
