"""Observability across the fork pool, and its differential contract.

Covers the issue's acceptance tests: a ``jobs=2`` run yields one
deterministic re-parented span tree; every serial fallback carries a
machine-readable reason; and verdicts are byte-identical with tracing
on or off.
"""

import dataclasses
import json
import pickle
import warnings

import pytest

from repro.engine import EngineStats
from repro.engine.pool import parallelism_available, run_work_items
from repro.obs import runtime as obs
from repro.checker.sweep import sweep_verify
from repro.protocols import stabilizing_sum_not_two


@pytest.fixture(autouse=True)
def _no_leaked_run():
    assert obs.active() is None
    yield
    if obs.active() is not None:  # pragma: no cover - test bug guard
        obs.finish(obs.active())
        pytest.fail("test leaked an active observability run")


# Pool workers must be module-level (resolved by qualified name in the
# forked children).
def _square(_context, item):
    with obs.span("worker.square", item=item):
        obs.metric("worker.calls")
    return item * item


def _unpicklable(_context, _item):
    return lambda: None  # cannot cross the result pipe


needs_fork = pytest.mark.skipif(not parallelism_available(),
                                reason="fork start method unavailable")


# ----------------------------------------------------------------------
# span re-parenting across the fork boundary
# ----------------------------------------------------------------------
@needs_fork
def test_parallel_run_yields_one_deterministic_span_tree():
    stats = EngineStats(jobs=2)
    with obs.run("pool-test") as run_ctx:
        results = run_work_items(_square, [2, 3, 4], jobs=2, stats=stats)
    assert results == [4, 9, 16]
    assert stats.parallel
    assert stats.pool_fallbacks == 0

    pool_span = run_ctx.spans[0].children[0]
    assert pool_span.name == "pool.map"
    assert pool_span.attrs == {"jobs": 2, "items": 3, "method": "fork"}
    # Adoption is by item index, so the tree is deterministic no matter
    # which worker finished first.
    assert [c.name for c in pool_span.children] == [
        "item[0]", "item[1]", "item[2]"]
    for index, wrapper in enumerate(pool_span.children):
        assert "pid" in wrapper.attrs
        (child,) = wrapper.children
        assert child.name == "worker.square"
        assert child.attrs == {"item": index + 2}
        assert child.pid == wrapper.attrs["pid"]
    # Worker metrics merged back into the parent run.
    assert run_ctx.metrics.value("worker.calls") == 3
    assert run_ctx.metrics.value("pool.fallbacks", default=None) is None


@needs_fork
def test_parallel_run_without_active_run_still_returns_results():
    stats = EngineStats(jobs=2)
    assert run_work_items(_square, [5, 6], jobs=2,
                          stats=stats) == [25, 36]
    assert stats.parallel


# ----------------------------------------------------------------------
# fallback telemetry — degradation is never silent
# ----------------------------------------------------------------------
@pytest.mark.parametrize("items,jobs,reason,level", [
    ([1, 2, 3], 1, "jobs<=1", "info"),
    ([7], 4, "single-item", "info"),
])
def test_expected_fallbacks_record_info_events(items, jobs, reason,
                                               level):
    stats = EngineStats(jobs=jobs)
    with obs.run("fallback-test") as run_ctx:
        results = run_work_items(_square, items, jobs=jobs, stats=stats)
    assert results == [i * i for i in items]
    assert not stats.parallel
    assert stats.pool_fallbacks == 1
    assert run_ctx.metrics.value("pool.fallbacks") == 1
    (event,) = [e for e in run_ctx.events
                if e["kind"] == "pool-fallback"]
    assert event["reason"] == reason
    assert event["level"] == level
    serial_span = run_ctx.spans[0].children[0]
    assert serial_span.name == "pool.serial"
    assert serial_span.attrs == {"reason": reason, "items": len(items)}


@needs_fork
def test_pool_error_falls_back_with_warning_and_reason():
    stats = EngineStats(jobs=2)
    with obs.run("error-test") as run_ctx:
        with pytest.warns(RuntimeWarning, match="recomputing"):
            results = run_work_items(_unpicklable, [1, 2], jobs=2,
                                     stats=stats)
    assert len(results) == 2 and all(callable(r) for r in results)
    assert stats.pool_fallbacks == 1
    assert not stats.parallel
    (event,) = [e for e in run_ctx.events
                if e["kind"] == "pool-fallback"]
    assert event["reason"].startswith("pool-error:")
    assert event["level"] == "warning"


def test_fallback_without_stats_or_run_is_quiet():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert run_work_items(_square, [3], jobs=1) == [9]


@needs_fork
def test_fallback_warning_deduped_within_a_run():
    """One RuntimeWarning per run+cause; counters and events intact."""
    from repro.engine.pool import reset_fallback_warnings

    stats = EngineStats(jobs=2)
    with obs.run("dedup-test") as run_ctx:
        with pytest.warns(RuntimeWarning, match="recomputing") as caught:
            run_work_items(_unpicklable, [1, 2], jobs=2, stats=stats)
            # Same cause, same run: the second fallback stays quiet ...
            run_work_items(_unpicklable, [3, 4], jobs=2, stats=stats)
    assert len(caught) == 1
    # ... but the telemetry still sees both degradations.
    assert stats.pool_fallbacks == 2
    events = [e for e in run_ctx.events if e["kind"] == "pool-fallback"]
    assert len(events) == 2
    assert run_ctx.metrics.value("pool.fallbacks") == 2

    # A fresh run is a fresh dedup scope: the user at the next command
    # still gets told.
    with obs.run("dedup-test-2"):
        with pytest.warns(RuntimeWarning, match="recomputing"):
            run_work_items(_unpicklable, [5, 6], jobs=2,
                           stats=EngineStats(jobs=2))

    # And without any run, reset_fallback_warnings() (called at every
    # CLI dispatch) reopens the gate.
    try:
        with pytest.warns(RuntimeWarning, match="recomputing"):
            run_work_items(_unpicklable, [7, 8], jobs=2,
                           stats=EngineStats(jobs=2))
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # deduped: stays quiet
            run_work_items(_unpicklable, [7, 8], jobs=2,
                           stats=EngineStats(jobs=2))
        reset_fallback_warnings()
        with pytest.warns(RuntimeWarning, match="recomputing"):
            run_work_items(_unpicklable, [7, 8], jobs=2,
                           stats=EngineStats(jobs=2))
    finally:
        reset_fallback_warnings()


# ----------------------------------------------------------------------
# EngineStats on the metrics registry
# ----------------------------------------------------------------------
def test_merge_kernel_counters_accumulates_stage_seconds():
    parent = EngineStats()
    parent.stage_seconds["sweep"] = 1.0
    child = EngineStats()
    child.stage_seconds["check"] = 0.25
    child.compile_seconds = 0.5
    child.work_items = 99  # engine-level: must NOT fold into the parent

    parent.merge_kernel_counters(child)
    parent.merge_kernel_counters(child)
    assert parent.stage_seconds["check"] == pytest.approx(0.5)
    assert parent.stage_seconds["sweep"] == pytest.approx(1.0)
    assert parent.compile_seconds == pytest.approx(1.0)
    assert parent.work_items == 0
    parent.merge_kernel_counters(None)  # tolerated


def test_stats_pickle_roundtrip_preserves_metrics():
    stats = EngineStats(jobs=4)
    stats.work_items = 3
    stats.stage_seconds["closure"] = 0.125
    clone = pickle.loads(pickle.dumps(stats))
    assert clone.jobs == 4
    assert clone.work_items == 3
    assert clone.stage_seconds["closure"] == 0.125
    assert clone.to_dict() == stats.to_dict()


def test_stats_to_dict_is_json_ready():
    stats = EngineStats()
    with stats.stage("closure"):
        pass
    stats.cache_hits += 2
    data = json.loads(json.dumps(stats.to_dict()))
    assert data["cache_hits"] == 2
    assert "closure" in data["stage_seconds"]
    assert data["total_seconds"] >= 0
    assert data["metrics"]["engine.cache_hits"] == 2


# ----------------------------------------------------------------------
# the differential contract: tracing never changes verdicts
# ----------------------------------------------------------------------
def test_sweep_verdicts_byte_identical_with_tracing_on():
    protocol = stabilizing_sum_not_two()
    plain = sweep_verify(protocol, up_to=6, jobs=2)
    with obs.run("traced-sweep"):
        traced = sweep_verify(protocol, up_to=6, jobs=2)

    def verdict_bytes(result):
        # stats carry wall-clock timings, which differ run to run; the
        # contract is about the verdict payload.
        return pickle.dumps(tuple(
            dataclasses.replace(report, stats=None)
            for report in result.reports))

    assert verdict_bytes(traced) == verdict_bytes(plain)
    assert traced.reports == plain.reports
    assert traced.all_self_stabilizing == plain.all_self_stabilizing
    assert traced.failing_sizes == plain.failing_sizes
