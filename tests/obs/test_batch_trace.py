"""Chrome-trace export under ``--schedule batch``.

The batch scheduler has no real parent process span per dispatch — the
``scheduler.batch`` spans are synthesized from the worker's idle report
and the ``item[i]`` subtrees are grafted back from worker captures.
The exported trace must still read coherently: every item subtree lands
on its worker's pid row, inside a synthesized batch span.
"""

import json

import pytest

from repro.cli import main
from repro.obs import validate


@pytest.fixture(scope="module")
def batch_trace(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("batch-trace")
    trace = tmp_path / "trace.json"
    log = tmp_path / "run.jsonl"
    assert main(["sweep", "sum-not-two", "--up-to", "6", "--jobs", "2",
                 "--schedule", "batch", "--trace", str(trace),
                 "--log-json", str(log), "--cache-dir", str(tmp_path),
                 "--no-cache", "--no-live", "--no-ledger"]) == 1
    assert validate.validate_chrome_trace(trace)["X"] >= 3
    assert validate.validate_run_log(log)
    return json.loads(trace.read_text())


def _complete_events(data):
    return [e for e in data["traceEvents"] if e["ph"] == "X"]


def test_batch_schedule_emits_batch_spans(batch_trace):
    events = _complete_events(batch_trace)
    dispatch = next(e for e in events if e["name"] == "scheduler.map")
    assert dispatch["args"]["mode"] == "batch"
    batches = [e for e in events if e["name"] == "scheduler.batch"]
    assert batches, "no synthesized scheduler.batch spans in the trace"
    for batch in batches:
        assert batch["args"]["items"] >= 1
        assert "worker" in batch["args"]
    items = [e for e in events if e["name"].startswith("item[")]
    assert len(items) == 5  # K = 2..6
    assert sum(b["args"]["items"] for b in batches) == len(items)


def test_item_subtrees_nest_inside_their_batch(batch_trace):
    events = _complete_events(batch_trace)
    batches = [e for e in events if e["name"] == "scheduler.batch"]
    items = [e for e in events if e["name"].startswith("item[")]
    slack_us = 20_000  # clocks: batch bounds come from the parent
    for item in items:
        same_pid = [b for b in batches if b["pid"] == item["pid"]]
        assert same_pid, (
            f"{item['name']} on pid {item['pid']} has no batch span row")
        assert any(
            b["ts"] - slack_us <= item["ts"]
            and item["ts"] + item["dur"] <= b["ts"] + b["dur"] + slack_us
            for b in same_pid), (
            f"{item['name']} does not nest inside any scheduler.batch "
            f"span on pid {item['pid']}")


def test_worker_rows_are_named(batch_trace):
    meta = [e for e in batch_trace["traceEvents"] if e["ph"] == "M"]
    named_pids = {e["pid"] for e in meta
                  if e["name"] == "process_name"}
    item_pids = {e["pid"] for e in _complete_events(batch_trace)
                 if e["name"].startswith("item[")}
    assert item_pids <= named_pids
