"""Exporter formats: Chrome traces, JSONL run logs, tree reports."""

import json

import pytest

from repro.obs import export, runtime as obs, validate


@pytest.fixture()
def sample_run():
    with obs.run("sample", protocol="sum-not-two") as run_ctx:
        with obs.span("sweep", jobs=2):
            with obs.span("check", K=3):
                obs.metric("engine.work_items")
            obs.event("pool-fallback", level="warning", reason="no-fork",
                      items=1)
    return run_ctx


def test_chrome_trace_schema(sample_run, tmp_path):
    path = tmp_path / "trace.json"
    export.write_chrome_trace(path, sample_run)
    counts = validate.validate_chrome_trace(path)
    assert counts["X"] == 3  # sample + sweep + check
    assert counts["M"] >= 1  # process_name metadata

    data = json.loads(path.read_text())
    spans = {e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"}
    # Children nest inside their parent on the timeline.
    # Starts are wall clock, durations are perf_counter deltas — the
    # two clocks can disagree by a few microseconds at this scale.
    assert spans["check"]["ts"] >= spans["sweep"]["ts"] - 10
    assert (spans["check"]["ts"] + spans["check"]["dur"]
            <= spans["sweep"]["ts"] + spans["sweep"]["dur"] + 10)
    assert spans["check"]["args"] == {"K": 3}
    assert data["otherData"]["metrics"]["engine.work_items"] == 1


def test_run_log_schema_and_roundtrip(sample_run, tmp_path):
    path = tmp_path / "run.jsonl"
    export.write_run_log(path, sample_run)
    counts = validate.validate_run_log(path)
    assert counts == {"run": 1, "span": 3, "event": 1,
                      "metrics": 1, "end": 1}

    records = export.load_run_log(path)
    spans = [r for r in records if r["type"] == "span"]
    assert [(s["name"], s["depth"]) for s in spans] == [
        ("sample", 0), ("sweep", 1), ("check", 2)]
    metrics = next(r for r in records if r["type"] == "metrics")
    assert metrics["values"]["engine.work_items"] == 1
    event = next(r for r in records if r["type"] == "event")
    assert event["reason"] == "no-fork"
    assert event["level"] == "warning"


def test_render_report_tree(sample_run):
    text = export.render_report(list(export.run_log_records(sample_run)))
    assert "== run: sample ==" in text
    assert "sweep" in text and "check" in text
    assert "[warning] pool-fallback" in text
    assert "engine.work_items = 1" in text
    assert "wall time:" in text
    # Depth shows as indentation: check is deeper than sweep.
    sweep_line = next(l for l in text.splitlines() if "sweep" in l)
    check_line = next(l for l in text.splitlines() if "check" in l)
    indent = lambda line: len(line) - len(line.lstrip())  # noqa: E731
    assert indent(check_line) == indent(sweep_line)  # same ms column
    assert check_line.index("check") > sweep_line.index("sweep")


def test_validator_rejects_malformed_artifacts(tmp_path):
    bad_trace = tmp_path / "bad.json"
    bad_trace.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(validate.ValidationError):
        validate.validate_chrome_trace(bad_trace)

    bad_log = tmp_path / "bad.jsonl"
    bad_log.write_text(json.dumps({"type": "span", "name": "x"}) + "\n")
    with pytest.raises(validate.ValidationError):
        validate.validate_run_log(bad_log)

    assert validate.main([str(bad_trace), str(bad_log)]) == 1


def test_validator_main_accepts_good_artifacts(sample_run, tmp_path):
    trace = tmp_path / "t.json"
    log = tmp_path / "r.jsonl"
    export.write_chrome_trace(trace, sample_run)
    export.write_run_log(log, sample_run)
    assert validate.main([str(trace), str(log)]) == 0


# ----------------------------------------------------------------------
# event-kind vocabulary
# ----------------------------------------------------------------------
def _event(kind, **fields):
    return {"type": "event", "ts": 1.0, "kind": kind, "level": "warning",
            **fields}


@pytest.mark.parametrize("kind,fields", [
    ("task-timeout", {"index": 0, "attempt": 1, "timeout_seconds": 5}),
    ("task-retry", {"index": 0, "attempt": 1, "reason": "crash",
                    "delay_seconds": 0.1}),
    ("task-degraded", {"index": 0, "attempts": 3, "reason": "timeout"}),
    ("task-resumed", {"index": 0, "key": "k"}),
    ("checkpoint", {"run_id": "r", "key": "k", "seq": 0}),
    ("batch-requeued", {"worker": 1, "items": 2}),
    ("artifact-corrupt", {"artifact": "kernel", "path": "/x",
                          "reason": "truncated"}),
    ("supervisor-serial", {"reason": "jobs<=1", "items": 4}),
    ("some-future-kind", {}),  # unknown kinds pass (forward compat)
])
def test_event_vocabulary_accepts_complete_events(kind, fields):
    validate._validate_event(_event(kind, **fields), "event")


@pytest.mark.parametrize("record,complaint", [
    (_event("task-timeout", index=0, attempt=1), "timeout_seconds"),
    (_event("checkpoint", run_id="r", key="k"), "seq"),
    (_event("batch-requeued", worker=1), "items"),
    ({"type": "event", "ts": 1.0, "kind": "x", "level": "loud"},
     "level"),
    ({"type": "event", "kind": "x", "level": "info"}, "ts"),
    ({"type": "event", "ts": 1.0, "level": "info"}, "kind"),
])
def test_event_vocabulary_rejects_incomplete_events(record, complaint):
    with pytest.raises(validate.ValidationError, match=complaint):
        validate._validate_event(record, "event")


def test_validator_main_dispatches_by_artifact_name(tmp_path):
    assert validate._validator_for("a/b/status.json") \
        is validate.validate_status
    assert validate._validator_for("run-7.status.json") \
        is validate.validate_status
    assert validate._validator_for(".repro-cache/ledger.jsonl") \
        is validate.validate_ledger
    assert validate._validator_for("out/bench.ledger.jsonl") \
        is validate.validate_ledger
    assert validate._validator_for("run.jsonl") \
        is validate.validate_run_log
    assert validate._validator_for("trace.json") \
        is validate.validate_chrome_trace


def test_status_validator_rejects_malformed_snapshots():
    good = {"version": 1, "run_id": "r", "pid": 1, "state": "running",
            "started": 1.0, "updated": 2.0,
            "tasks": {"total": 4, "done": 1},
            "workers": [{"ident": 0, "busy": True}],
            "events": [_event("task-resumed", index=0, key="k")]}
    counts = validate.validate_status_data(good)
    assert counts == {"workers": 1, "events": 1, "snapshots": 0}
    for mutation, complaint in [
        ({"version": 99}, "version"),
        ({"run_id": ""}, "run_id"),
        ({"tasks": {"done": -1}}, "non-negative"),
        ({"workers": [{"ident": 0}]}, "ident/busy"),
        ({"events": [{"kind": "x"}]}, "level"),
    ]:
        with pytest.raises(validate.ValidationError, match=complaint):
            validate.validate_status_data({**good, **mutation})
