"""Exporter formats: Chrome traces, JSONL run logs, tree reports."""

import json

import pytest

from repro.obs import export, runtime as obs, validate


@pytest.fixture()
def sample_run():
    with obs.run("sample", protocol="sum-not-two") as run_ctx:
        with obs.span("sweep", jobs=2):
            with obs.span("check", K=3):
                obs.metric("engine.work_items")
            obs.event("pool-fallback", level="warning", reason="no-fork")
    return run_ctx


def test_chrome_trace_schema(sample_run, tmp_path):
    path = tmp_path / "trace.json"
    export.write_chrome_trace(path, sample_run)
    counts = validate.validate_chrome_trace(path)
    assert counts["X"] == 3  # sample + sweep + check
    assert counts["M"] >= 1  # process_name metadata

    data = json.loads(path.read_text())
    spans = {e["name"]: e for e in data["traceEvents"] if e["ph"] == "X"}
    # Children nest inside their parent on the timeline.
    assert spans["check"]["ts"] >= spans["sweep"]["ts"]
    assert (spans["check"]["ts"] + spans["check"]["dur"]
            <= spans["sweep"]["ts"] + spans["sweep"]["dur"] + 1e-3)
    assert spans["check"]["args"] == {"K": 3}
    assert data["otherData"]["metrics"]["engine.work_items"] == 1


def test_run_log_schema_and_roundtrip(sample_run, tmp_path):
    path = tmp_path / "run.jsonl"
    export.write_run_log(path, sample_run)
    counts = validate.validate_run_log(path)
    assert counts == {"run": 1, "span": 3, "event": 1,
                      "metrics": 1, "end": 1}

    records = export.load_run_log(path)
    spans = [r for r in records if r["type"] == "span"]
    assert [(s["name"], s["depth"]) for s in spans] == [
        ("sample", 0), ("sweep", 1), ("check", 2)]
    metrics = next(r for r in records if r["type"] == "metrics")
    assert metrics["values"]["engine.work_items"] == 1
    event = next(r for r in records if r["type"] == "event")
    assert event["reason"] == "no-fork"
    assert event["level"] == "warning"


def test_render_report_tree(sample_run):
    text = export.render_report(list(export.run_log_records(sample_run)))
    assert "== run: sample ==" in text
    assert "sweep" in text and "check" in text
    assert "[warning] pool-fallback" in text
    assert "engine.work_items = 1" in text
    assert "wall time:" in text
    # Depth shows as indentation: check is deeper than sweep.
    sweep_line = next(l for l in text.splitlines() if "sweep" in l)
    check_line = next(l for l in text.splitlines() if "check" in l)
    indent = lambda line: len(line) - len(line.lstrip())  # noqa: E731
    assert indent(check_line) == indent(sweep_line)  # same ms column
    assert check_line.index("check") > sweep_line.index("sweep")


def test_validator_rejects_malformed_artifacts(tmp_path):
    bad_trace = tmp_path / "bad.json"
    bad_trace.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
    with pytest.raises(validate.ValidationError):
        validate.validate_chrome_trace(bad_trace)

    bad_log = tmp_path / "bad.jsonl"
    bad_log.write_text(json.dumps({"type": "span", "name": "x"}) + "\n")
    with pytest.raises(validate.ValidationError):
        validate.validate_run_log(bad_log)

    assert validate.main([str(bad_trace), str(bad_log)]) == 1


def test_validator_main_accepts_good_artifacts(sample_run, tmp_path):
    trace = tmp_path / "t.json"
    log = tmp_path / "r.jsonl"
    export.write_chrome_trace(trace, sample_run)
    export.write_run_log(log, sample_run)
    assert validate.main([str(trace), str(log)]) == 0
