"""The --trace/--log-json flags, `repro report`, and --json stats."""

import json

import pytest

from repro.cli import main
from repro.obs import runtime as obs, validate


@pytest.fixture(autouse=True)
def _no_leaked_run():
    assert obs.active() is None
    yield
    if obs.active() is not None:  # pragma: no cover - test bug guard
        obs.finish(obs.active())
        pytest.fail("CLI leaked an active observability run")


def test_sweep_trace_and_log_artifacts_validate(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    log = tmp_path / "run.jsonl"
    # sum-not-two (the unstabilized variant) diverges, hence exit 1 —
    # the artifacts must be written regardless of the verdict.
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--jobs", "2",
                 "--trace", str(trace), "--log-json", str(log)]) == 1
    err = capsys.readouterr().err
    assert "wrote Chrome trace" in err and "wrote run log" in err

    trace_counts = validate.validate_chrome_trace(trace)
    assert trace_counts["X"] >= 3  # root + sweep + per-K checks
    log_counts = validate.validate_run_log(log)
    assert log_counts["run"] == 1 and log_counts["end"] == 1
    assert log_counts["span"] == trace_counts["X"]

    data = json.loads(trace.read_text())
    names = [e["name"] for e in data["traceEvents"] if e["ph"] == "X"]
    assert names[0] == "repro sweep"
    assert "sweep" in names and "check" in names
    # The protocol fingerprint rides on the root span and the gauges.
    root = next(e for e in data["traceEvents"]
                if e["ph"] == "X" and e["name"] == "repro sweep")
    assert root["args"]["protocol"] == "sum-not-two"
    assert len(root["args"]["fingerprint"]) == 64  # sha-256 hex
    metrics = data["otherData"]["metrics"]
    assert metrics["protocol.name"] == "sum-not-two"
    assert metrics["protocol.fingerprint"] == root["args"]["fingerprint"]

    # The root span covers (almost) all recorded wall time.
    last_end = max(e["ts"] + e["dur"] for e in data["traceEvents"]
                   if e["ph"] == "X")
    assert root["dur"] >= 0.95 * (last_end - root["ts"])


def test_trace_written_even_when_command_fails(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["check", "matching-gouda-acharya", "-K", "5",
                 "--trace", str(trace)]) == 1
    assert validate.validate_chrome_trace(trace)["X"] >= 2


def test_verify_json_includes_stats(capsys):
    assert main(["verify", "agreement-ss", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    stats = data["stats"]
    assert "closure" in stats["stage_seconds"]
    assert "livelock" in stats["stage_seconds"]
    assert stats["total_seconds"] > 0
    assert stats["metrics"]["engine.work_items"] == stats["work_items"]


def test_check_json_includes_stats(capsys):
    assert main(["check", "agreement-ss", "-K", "4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["stats"]["stage_seconds"]["check"] > 0


def test_report_renders_run_log(tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    assert main(["check", "agreement-ss", "-K", "4",
                 "--log-json", str(log)]) == 0
    capsys.readouterr()
    assert main(["report", str(log)]) == 0
    out = capsys.readouterr().out
    assert "== run: repro check ==" in out
    assert "check" in out
    assert "wall time:" in out


def test_report_validate_exit_codes(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    assert main(["check", "agreement-ss", "-K", "4",
                 "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["report", "--validate", str(trace)]) == 0
    assert "ok" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    assert main(["report", "--validate", str(bad)]) == 1
    assert "FAIL" in capsys.readouterr().err


def test_no_obs_flags_leaves_runtime_untouched(capsys):
    assert main(["check", "agreement-ss", "-K", "3"]) == 0
    assert obs.active() is None
