"""Span trees, the ambient run, and fork-capture re-parenting."""

import pickle

import pytest

from repro.obs import runtime as obs
from repro.obs.trace import Span, Tracer


@pytest.fixture(autouse=True)
def _no_leaked_run():
    assert obs.active() is None
    yield
    if obs.active() is not None:  # pragma: no cover - test bug guard
        obs.finish(obs.active())
        pytest.fail("test leaked an active observability run")


def test_span_nesting_builds_a_tree():
    tracer = Tracer()
    with tracer.span("outer", K=3):
        with tracer.span("inner-1"):
            pass
        with tracer.span("inner-2"):
            with tracer.span("leaf"):
                pass
    assert [s.name for _d, s in tracer.walk()] == [
        "outer", "inner-1", "inner-2", "leaf"]
    assert [d for d, _s in tracer.walk()] == [0, 1, 1, 2]
    root = tracer.roots[0]
    assert root.attrs == {"K": 3}
    assert root.duration is not None
    assert all(child.duration <= root.duration
               for child in root.children)


def test_span_closes_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("fails"):
            raise RuntimeError("boom")
    assert tracer.roots[0].duration is not None
    assert tracer.current is None


def test_annotate_targets_current_span():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            tracer.annotate(states=81)
    assert tracer.roots[0].children[0].attrs == {"states": 81}
    tracer.annotate(ignored=True)  # outside any span: no-op
    assert tracer.roots[0].attrs == {}


def test_spans_pickle_with_children():
    tracer = Tracer()
    with tracer.span("parent", backend="kernel"):
        with tracer.span("child"):
            pass
    clone = pickle.loads(pickle.dumps(tracer.roots[0]))
    assert clone.name == "parent"
    assert clone.attrs == {"backend": "kernel"}
    assert [c.name for c in clone.children] == ["child"]
    assert clone.pid == tracer.roots[0].pid


def test_ambient_helpers_are_noops_when_inactive():
    with obs.span("nothing") as span:
        assert span is None
    obs.annotate(ignored=True)
    obs.event("ignored")
    obs.metric("ignored")
    obs.gauge("ignored", 1)
    assert obs.active() is None


def test_run_records_spans_events_metrics():
    with obs.run("test-run", flavor="unit") as run_ctx:
        with obs.span("step", K=2) as span:
            assert span is not None
            obs.metric("engine.work_items", 3)
            obs.event("milestone", detail="reached")
            obs.annotate(extra=1)
    assert run_ctx.wall_seconds is not None
    names = [s.name for _d, s in run_ctx.walk()]
    assert names == ["test-run", "step"]
    step = run_ctx.spans[0].children[0]
    assert step.attrs == {"K": 2, "extra": 1}
    assert run_ctx.metrics.value("engine.work_items") == 3
    assert run_ctx.events[0]["kind"] == "milestone"
    assert obs.active() is None


def test_nested_run_activation_raises():
    with obs.run("outer"):
        with pytest.raises(RuntimeError):
            obs.start("inner")


def test_fork_capture_roundtrip_reparents_and_merges():
    with obs.run("parent-run") as run_ctx:
        # Simulate the forked child: swap, record, capture.
        inherited = obs.fork_capture_begin()
        with obs.span("worker.task", item=7):
            obs.metric("localkernel.mask_evaluations", 5)
            obs.event("from-child")
        capture = obs.fork_capture_end(inherited)
        capture = pickle.loads(pickle.dumps(capture))  # crosses the pipe

        with obs.span("pool.map"):
            obs.adopt_child(capture, "item[0]", K=4)

    pool_span = run_ctx.spans[0].children[0]
    assert pool_span.name == "pool.map"
    wrapper = pool_span.children[0]
    assert wrapper.name == "item[0]"
    assert wrapper.attrs["K"] == 4
    assert wrapper.attrs["pid"] == capture.pid
    assert [c.name for c in wrapper.children] == ["worker.task"]
    assert run_ctx.metrics.value("localkernel.mask_evaluations") == 5
    assert any(e["kind"] == "from-child" for e in run_ctx.events)


def test_fork_capture_is_noop_without_active_run():
    inherited = obs.fork_capture_begin()
    assert inherited is None
    assert obs.fork_capture_end(inherited) is None
    obs.adopt_child(None)  # must not raise


def test_adopt_child_without_wrapper_extends_current_children():
    with obs.run("run") as run_ctx:
        inherited = obs.fork_capture_begin()
        with obs.span("bare"):
            pass
        capture = obs.fork_capture_end(inherited)
        obs.adopt_child(capture)
    assert [c.name for c in run_ctx.spans[0].children] == ["bare"]
