"""The live telemetry plane: LiveRun snapshots, repro ps / repro top."""

import json
import os
import time

import pytest

from repro.checker.sweep import sweep_verify
from repro.cli import main
from repro.obs import live, runtime as obs, validate
from repro.protocols import sum_not_two


@pytest.fixture(autouse=True)
def _no_leaked_plane():
    assert live.active() is None
    yield
    if live.active() is not None:  # pragma: no cover - test bug guard
        live.deactivate(live.active())
        pytest.fail("a LiveRun leaked past its test")


# ----------------------------------------------------------------------
# LiveRun publisher
# ----------------------------------------------------------------------
def test_publish_writes_valid_snapshot(tmp_path):
    run = live.LiveRun(tmp_path, "r1", command="sweep")
    run.annotate(protocol="sum-not-two")
    run.begin_stage("sweep", total=5, resumed=2)
    run.note(done=1, retried=1)
    assert run.publish(force=True)
    status = live.load_status(tmp_path)
    assert validate.validate_status_data(status)
    assert status["run_id"] == "r1"
    assert status["command"] == "sweep"
    assert status["protocol"] == "sum-not-two"
    assert status["state"] == "running"
    # begin_stage pre-credits resumed items as done.
    assert status["tasks"] == {"total": 5, "done": 3, "in_flight": 0,
                               "retried": 1, "degraded": 0,
                               "resumed": 2, "requeued": 0}
    assert status["stage"]["name"] == "sweep"


def test_publish_rate_limited_and_forced(tmp_path):
    run = live.LiveRun(tmp_path, "r1", interval=3600.0)
    assert run.publish()          # first one is always due
    assert not run.publish()      # within the interval: suppressed
    assert run.publish(force=True)
    assert run.snapshots == 2


def test_tick_builds_payload_only_when_due(tmp_path):
    run = live.LiveRun(tmp_path, "r1", interval=3600.0)
    live.activate(run)
    try:
        calls = []

        def payload():
            calls.append(1)
            return {"workers": []}

        assert live.tick(payload)       # due: payload built, published
        assert not live.tick(payload)   # not due: payload NOT built
        assert len(calls) == 1
    finally:
        live.deactivate(run)


def test_snapshot_merges_nested_extra_dicts(tmp_path):
    run = live.LiveRun(tmp_path, "r1")
    run.note(total=4, done=1)
    doc = run.snapshot({"tasks": {"in_flight": 2},
                        "workers": [{"ident": 0, "busy": True}]})
    assert doc["tasks"]["done"] == 1          # existing keys kept
    assert doc["tasks"]["in_flight"] == 2     # nested dict merged
    assert doc["workers"] == [{"ident": 0, "busy": True}]


def test_finish_publishes_terminal_state(tmp_path):
    run = live.LiveRun(tmp_path, "r1", interval=3600.0)
    run.publish(force=True)
    run.finish(state="finished", exit_status=1)
    status = live.load_status(tmp_path)
    assert status["state"] == "finished"
    assert status["exit_status"] == 1
    assert live.liveness(status) == "finished"


def test_publish_swallows_io_errors(tmp_path):
    target = tmp_path / "not-a-dir"
    target.write_text("a file where the run directory should be")
    run = live.LiveRun(target / "sub", "r1")
    assert not run.publish(force=True)  # no raise


def test_active_plane_captures_warning_events(tmp_path):
    run = live.LiveRun(tmp_path, "r1")
    live.activate(run)
    try:
        obs.event("task-timeout", level="warning", index=3, attempt=1,
                  timeout_seconds=5)
        obs.event("checkpoint", level="info", run_id="r1", key="k",
                  seq=0)
    finally:
        live.deactivate(run)
    kinds = [e["kind"] for e in run.events]
    assert kinds == ["task-timeout"]  # info events stay out of the ring
    obs.event("task-timeout", level="warning", index=4, attempt=1,
              timeout_seconds=5)
    assert len(run.events) == 1       # sink unsubscribed on deactivate


def test_stall_threshold():
    assert live.stall_threshold(None) == float("inf")
    assert live.stall_threshold(0.01) == live.STALL_MIN_SECONDS
    assert live.stall_threshold(2.0) == 8.0


# ----------------------------------------------------------------------
# Reading the plane from outside
# ----------------------------------------------------------------------
def test_liveness_classification(tmp_path):
    now = time.time()
    running = {"state": "running", "updated": now, "pid": os.getpid()}
    assert live.liveness(running, now) == "live"
    dead_pid = dict(running, pid=2 ** 22 + 12345)
    assert live.liveness(dead_pid, now) == "stale"
    old = dict(running, updated=now - 2 * live.STALE_AFTER_SECONDS)
    assert live.liveness(old, now) == "stale"
    assert live.liveness({"state": "failed"}, now) == "failed"


def test_scan_runs_orders_and_skips_torn(tmp_path):
    for run_id, updated in (("a", 3.0), ("b", 1.0)):
        directory = tmp_path / run_id
        directory.mkdir()
        (directory / live.STATUS_NAME).write_text(json.dumps(
            {"run_id": run_id, "updated": updated}))
    torn = tmp_path / "torn"
    torn.mkdir()
    (torn / live.STATUS_NAME).write_text('{"run_id": "to')
    statuses = live.scan_runs(tmp_path)
    assert [s["run_id"] for s in statuses] == ["b", "a"]


def test_render_ps_and_top(tmp_path):
    now = time.time()
    status = {"run_id": "r1", "state": "finished", "command": "sweep",
              "protocol": "sum-not-two", "updated": now, "pid": 1,
              "started": now - 5.0, "snapshots": 3,
              "tasks": {"total": 4, "done": 2, "in_flight": 1,
                        "retried": 0, "degraded": 0},
              "stage": {"name": "sweep", "ewma_task_seconds": 0.01,
                        "p95_task_seconds": 0.02, "eta_seconds": 0.5},
              "cache": {"results": {"hits": 3, "misses": 1,
                                    "rate": 0.75}},
              "workers": [
                  {"ident": 0, "pid": 11, "busy": True, "task": 7,
                   "age_seconds": 9.0, "stalled": True},
                  {"ident": 1, "pid": 12, "busy": False},
              ]}
    ps = live.render_ps([status], now)
    assert "RUN-ID" in ps and "r1" in ps and "2/4" in ps
    assert live.render_ps([], now).splitlines()[1] == "(no runs found)"
    top = live.render_top(status, now)
    assert "2/4 done" in top
    assert "10.0 ms/task" in top and "eta ~0.5 s" in top
    assert "results 75% hit (3/4)" in top
    assert "!! stalled" in top and "idle" in top


# ----------------------------------------------------------------------
# CLI: repro ps / repro top and the dispatcher's live plane
# ----------------------------------------------------------------------
def test_cli_sweep_publishes_and_ps_lists(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5",
                 "--cache-dir", str(tmp_path), "--no-cache"]) == 1
    capsys.readouterr()
    assert main(["ps", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "finished" in out and "sweep" in out and "sum-not-two" in out
    (run_dir,) = (tmp_path / "runs").iterdir()
    status = live.load_status(run_dir)
    assert validate.validate_status_data(status)
    assert status["tasks"]["done"] == status["tasks"]["total"] == 4

    assert main(["top", run_dir.name, "--cache-dir", str(tmp_path),
                 "--once"]) == 0
    top_out = capsys.readouterr().out
    assert "4/4 done" in top_out

    assert main(["top", run_dir.name, "--cache-dir", str(tmp_path),
                 "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["run_id"] == run_dir.name


def test_cli_top_unknown_run_exits_2(tmp_path, capsys):
    assert main(["top", "nope", "--cache-dir", str(tmp_path)]) == 2
    assert "no status snapshot" in capsys.readouterr().err


def test_cli_no_live_publishes_nothing(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--no-live",
                 "--no-ledger", "--cache-dir", str(tmp_path),
                 "--no-cache"]) == 1
    assert not (tmp_path / "runs").exists()


def test_cli_checkpoint_run_shares_directory(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--checkpoint",
                 "--run-id", "shared", "--cache-dir", str(tmp_path),
                 "--no-cache"]) == 1
    run_dir = tmp_path / "runs" / "shared"
    assert (run_dir / "journal.jsonl").exists()
    assert (run_dir / "status.json").exists()
    status = live.load_status(run_dir)
    assert status["state"] == "finished"


def test_cli_failed_command_publishes_failed_state(tmp_path, capsys):
    with pytest.raises(ValueError):
        main(["sweep", "sum-not-two", "--up-to", "1",
              "--cache-dir", str(tmp_path)])
    (run_dir,) = (tmp_path / "runs").iterdir()
    assert live.load_status(run_dir)["state"] == "failed"
    assert live.active() is None


# ----------------------------------------------------------------------
# Differential: the plane observes, it never participates
# ----------------------------------------------------------------------
def _verdict_bytes(result) -> bytes:
    from repro.serialization import global_report_to_dict

    rows = []
    for report in result.reports:
        row = global_report_to_dict(report)
        row.pop("stats", None)
        rows.append(row)
    return json.dumps(rows, sort_keys=True).encode()


@pytest.mark.parametrize("schedule,jobs", [("auto", 1), ("batch", 2)])
def test_sweep_verdicts_identical_live_on_vs_off(tmp_path, schedule,
                                                jobs):
    protocol = sum_not_two()
    plain = sweep_verify(protocol, up_to=6, jobs=jobs,
                         schedule=schedule)
    run = live.LiveRun(tmp_path, "diff", interval=0.0)
    live.activate(run)
    try:
        observed = sweep_verify(protocol, up_to=6, jobs=jobs,
                                schedule=schedule)
    finally:
        run.finish()
        live.deactivate(run)
    assert _verdict_bytes(observed) == _verdict_bytes(plain)
    assert run.snapshots > 0
    status = live.load_status(tmp_path)
    assert validate.validate_status_data(status)
    assert status["tasks"]["done"] == 5
