"""The cross-run ledger: records, diffing, and `repro runs`."""

import json

import pytest

from repro.cli import main
from repro.obs import ledger, validate


def _record(run_id, *, wall=1.0, counters=None, stages=None,
            verdict=None, flags=None, command="sweep", v=None,
            fingerprint="fp"):
    record = ledger.make_record(
        run_id, command, protocol="p", fingerprint=fingerprint,
        flags=flags or {"up_to": 6}, verdict=verdict or {"ok": True},
        exit_status=0, wall_seconds=wall, started=1000.0,
        counters=counters or {}, stage_seconds=stages or {})
    if v is not None:
        record["v"] = v
    return record


# ----------------------------------------------------------------------
# Append / load round-trip and corruption tolerance
# ----------------------------------------------------------------------
def test_append_load_roundtrip(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger.append(path, _record("a"))
    ledger.append(path, _record("b", wall=2.0))
    records, skipped = ledger.load(path)
    assert skipped == 0
    assert [r["run_id"] for r in records] == ["a", "b"]
    assert validate.validate_ledger_records(records)
    assert validate.validate_ledger(path) == {"records": 2}


def test_load_skips_damaged_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger.append(path, _record("a"))
    with open(path, "a") as handle:
        handle.write('{"torn": \n')        # torn tail
        handle.write('"just a string"\n')  # parseable, wrong shape
        handle.write('{"no_run_id": 1}\n')
    ledger.append(path, _record("b"))
    records, skipped = ledger.load(path)
    assert [r["run_id"] for r in records] == ["a", "b"]
    assert skipped == 3
    with pytest.raises(validate.ValidationError):
        validate.validate_ledger(path)  # CI mode refuses damage


def test_load_missing_file(tmp_path):
    assert ledger.load(tmp_path / "absent.jsonl") == ([], 0)


def test_verdict_digest_is_order_insensitive():
    a = ledger.verdict_digest({"x": 1, "y": [2, 3]})
    b = ledger.verdict_digest({"y": [2, 3], "x": 1})
    assert a == b and len(a) == 16
    assert ledger.verdict_digest({"x": 2, "y": [2, 3]}) != a


# ----------------------------------------------------------------------
# Baseline selection
# ----------------------------------------------------------------------
def test_find_run_last_record_wins(tmp_path):
    records = [_record("a", wall=1.0), _record("a", wall=9.0)]
    assert ledger.find_run(records, "a")["wall_seconds"] == 9.0
    assert ledger.find_run(records, "zz") is None


def test_latest_matching_respects_identity():
    records = [
        _record("other-cmd", command="verify"),
        _record("other-flags", flags={"up_to": 9}),
        _record("other-fp", fingerprint="zz"),
        _record("old-version", v=99),
        _record("match-1"),
        _record("match-2"),
        _record("candidate"),
    ]
    candidate = records[-1]
    assert ledger.latest_matching(records, candidate)["run_id"] \
        == "match-2"
    assert ledger.latest_matching(records[:1], records[0]) is None
    # Records appended AFTER the candidate are never its baseline.
    assert ledger.latest_matching(records, records[-2])["run_id"] \
        == "match-1"


def test_latest_matching_ignores_later_records():
    first = _record("first")
    later = _record("later")
    assert ledger.latest_matching([first, later], first) is None
    assert ledger.latest_matching([first, later], later)["run_id"] \
        == "first"


# ----------------------------------------------------------------------
# Diff semantics
# ----------------------------------------------------------------------
def test_diff_flags_verdict_drift():
    base = _record("a", verdict={"ok": True})
    cand = _record("b", verdict={"ok": False})
    result = ledger.diff(cand, base)
    (finding,) = result["regressions"]
    assert finding["kind"] == "verdict"


def test_diff_flags_timing_regressions_over_floor():
    base = _record("a", wall=1.0, stages={"sweep": 1.0, "tiny": 0.001})
    cand = _record("b", wall=1.5,
                   stages={"sweep": 1.04, "tiny": 0.004})
    result = ledger.diff(cand, base, threshold=0.25)
    names = [f["name"] for f in result["regressions"]]
    assert names == ["wall_seconds"]  # sweep +4% under threshold,
    #                                   tiny 4x but under the floor
    slow = ledger.diff(_record("c", wall=1.0,
                               stages={"sweep": 2.0}), base)
    assert [f["name"] for f in slow["regressions"]] == ["stage:sweep"]


def test_diff_flags_health_increase_and_work_drift():
    base = _record("a", counters={"supervisor_timeouts": 0,
                                  "work_items": 5, "cache_hits": 0})
    cand = _record("b", counters={"supervisor_timeouts": 2,
                                  "work_items": 4, "cache_hits": 0})
    kinds = [f["kind"] for f in ledger.diff(cand, base)["regressions"]]
    assert kinds == ["health", "work"]  # sorted worst-kind order


def test_diff_excuses_work_drift_from_cache_hits():
    base = _record("a", counters={"work_items": 5, "cache_hits": 0,
                                  "cache_misses": 5})
    cand = _record("b", counters={"work_items": 0, "cache_hits": 5,
                                  "cache_misses": 0})
    result = ledger.diff(cand, base)
    assert result["regressions"] == []
    assert any("cache hits" in note for note in result["notes"])


def test_diff_flags_cache_rate_drop():
    base = _record("a", counters={"cache_hits": 9, "cache_misses": 1,
                                  "work_items": 1})
    cand = _record("b", counters={"cache_hits": 1, "cache_misses": 9,
                                  "work_items": 1})
    result = ledger.diff(cand, base, threshold=0.25)
    kinds = {f["kind"] for f in result["regressions"]}
    assert "cache" in kinds


def test_diff_identity_mismatch_noted():
    result = ledger.diff(_record("b", flags={"up_to": 9}), _record("a"))
    assert any("identities differ" in note for note in result["notes"])


def test_render_list_and_diff():
    records = [_record("a"), _record("b")]
    listing = ledger.render_list(records, skipped=1)
    assert listing.splitlines()[1].startswith("b")  # newest first
    assert "1 damaged line(s) skipped" in listing
    assert "(ledger is empty)" in ledger.render_list([])
    rendered = ledger.render_diff(
        ledger.diff(_record("b", wall=9.0), _record("a", wall=1.0)))
    assert "[timing]" in rendered and "9.000s" in rendered
    clean = ledger.render_diff(ledger.diff(_record("a"), _record("a")))
    assert "no regressions" in clean


# ----------------------------------------------------------------------
# CLI: ledger recording and repro runs list|show|diff
# ----------------------------------------------------------------------
def test_cli_sweep_records_ledger_entry(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5",
                 "--cache-dir", str(tmp_path), "--no-cache",
                 "--no-live"]) == 1
    records, skipped = ledger.load(ledger.ledger_path(tmp_path))
    assert skipped == 0
    (record,) = records
    assert record["command"] == "sweep"
    assert record["protocol"] == "sum-not-two"
    assert record["exit_status"] == 1
    assert record["verdict"]["all_self_stabilizing"] is False
    assert record["verdict"]["failing_sizes"] == [2, 3, 4, 5]
    assert record["flags"]["up_to"] == 5
    assert "run_id" not in record["flags"]
    assert record["counters"]["work_items"] == 4
    assert record["stage_seconds"]["sweep"] > 0
    assert record["wall_seconds"] > 0
    assert validate.validate_ledger_records(records)


def test_cli_no_ledger_opts_out(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5",
                 "--cache-dir", str(tmp_path), "--no-cache",
                 "--no-ledger", "--no-live"]) == 1
    assert not ledger.ledger_path(tmp_path).exists()


def test_cli_runs_list_show_diff(tmp_path, capsys):
    common = ["--cache-dir", str(tmp_path), "--no-cache", "--no-live"]
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--run-id",
                 "base"] + common) == 1
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--run-id",
                 "cand"] + common) == 1
    capsys.readouterr()

    assert main(["runs", "list", "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "base" in out and "cand" in out

    assert main(["runs", "show", "cand",
                 "--cache-dir", str(tmp_path)]) == 0
    shown = json.loads(capsys.readouterr().out)
    assert shown["run_id"] == "cand"

    # Same analysis, same flags: the implicit baseline is 'base' and
    # nothing regressed.
    assert main(["runs", "diff", "cand",
                 "--cache-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "baseline base" in out and "no regressions" in out

    # A doctored slow candidate is flagged (exit 1).
    records, _ = ledger.load(ledger.ledger_path(tmp_path))
    slow = dict(ledger.find_run(records, "cand"))
    slow["run_id"] = "slow"
    slow["wall_seconds"] = 1000.0 + (slow["wall_seconds"] or 0.0)
    ledger.append(ledger.ledger_path(tmp_path), slow)
    assert main(["runs", "diff", "slow", "base",
                 "--cache-dir", str(tmp_path)]) == 1
    assert "[timing]" in capsys.readouterr().out

    assert main(["runs", "show", "missing",
                 "--cache-dir", str(tmp_path)]) == 2
    assert main(["runs", "diff", "missing",
                 "--cache-dir", str(tmp_path)]) == 2
    capsys.readouterr()


def test_cli_runs_diff_no_matching_baseline(tmp_path, capsys):
    assert main(["sweep", "sum-not-two", "--up-to", "5", "--run-id",
                 "only", "--cache-dir", str(tmp_path), "--no-cache",
                 "--no-live"]) == 1
    capsys.readouterr()
    assert main(["runs", "diff", "only",
                 "--cache-dir", str(tmp_path)]) == 2
    assert "no earlier run" in capsys.readouterr().err
