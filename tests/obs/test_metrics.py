"""Metric kinds and the single registry merge path."""

import pickle

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


def _registry(spec):
    registry = MetricsRegistry()
    for kind, name, values in spec:
        for value in values:
            if kind == "counter":
                registry.counter(name).inc(value)
            elif kind == "gauge":
                registry.gauge(name).set(value)
            else:
                registry.histogram(name).observe(value)
    return registry


SPECS = [
    [("counter", "a", [1, 2]), ("histogram", "h", [0.5, 3.0])],
    [("counter", "a", [10]), ("counter", "b", [7]),
     ("gauge", "g", ["x"])],
    [("histogram", "h", [1.0]), ("gauge", "g", ["y"]),
     ("counter", "b", [1])],
]


def test_merge_is_associative():
    # ((a + b) + c) and (a + (b + c)) must export identically.
    left = _registry(SPECS[0])
    left.merge(_registry(SPECS[1]))
    left.merge(_registry(SPECS[2]))

    bc = _registry(SPECS[1])
    bc.merge(_registry(SPECS[2]))
    right = _registry(SPECS[0])
    right.merge(bc)

    assert left.as_dict() == right.as_dict()
    assert left.as_dict()["a"] == 13
    assert left.as_dict()["h"] == {
        "count": 3, "total": 4.5, "min": 0.5, "max": 3.0, "mean": 1.5}
    assert left.as_dict()["g"] == "y"


def test_merge_order_of_fold_does_not_matter_for_counters_histograms():
    parts = [_registry(spec) for spec in SPECS]
    forward = MetricsRegistry()
    for part in parts:
        forward.merge(part)
    backward = MetricsRegistry()
    for part in reversed(parts):
        backward.merge(part)
    for name in ("a", "b", "h"):
        assert forward.value(name) == backward.value(name)


def test_merge_named_selects_exact_names_and_prefixes():
    source = MetricsRegistry()
    source.counter("kernel.compile_seconds").inc(1.5)
    source.counter("stage.sweep").inc(2.0)
    source.counter("engine.work_items").inc(9)
    source.counter("stageless").inc(4)

    target = MetricsRegistry()
    target.merge_named(source, ["kernel.", "stage.", "stageless"])
    assert target.value("kernel.compile_seconds") == 1.5
    assert target.value("stage.sweep") == 2.0
    assert target.value("stageless") == 4
    assert "engine.work_items" not in target


def test_kind_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_metrics_pickle_roundtrip():
    registry = _registry(SPECS[0])
    clone = pickle.loads(pickle.dumps(registry))
    assert clone.as_dict() == registry.as_dict()
    clone.counter("a").inc(1)  # still mutable after the round trip
    assert clone.value("a") == registry.value("a") + 1


def test_copy_is_independent():
    registry = _registry(SPECS[0])
    clone = registry.copy()
    clone.counter("a").inc(100)
    assert registry.value("a") == 3


def test_gauge_merge_ignores_unset_other():
    gauge = Gauge("g", "keep")
    gauge.merge(Gauge("g"))
    assert gauge.value == "keep"


def test_histogram_summary_fields():
    histogram = Histogram("h")
    for value in (4.0, 1.0, 2.5):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.minimum == 1.0
    assert histogram.maximum == 4.0
    assert histogram.mean == pytest.approx(2.5)


def test_counter_value_default():
    registry = MetricsRegistry()
    assert registry.value("missing") == 0
    assert registry.value("missing", default=None) is None
    assert isinstance(registry.counter("c"), Counter)
