"""Merge algebra of :class:`repro.engine.EngineStats`.

Checkpoint/resume made merge order a real degree of freedom: a resumed
sweep folds partial stats from journal entries first and freshly
computed reports afterwards, while the uninterrupted run folds the same
reports in sweep order.  For the totals to be trustworthy the merge
operations must be associative and commutative — any interleaving of
the same partial stats yields the same aggregate.
"""

from __future__ import annotations

import random
from itertools import permutations

import pytest

from repro.engine import EngineStats

#: A representative slice of every counter family (engine, supervisor,
#: kernel, localkernel, fvs, synthesis).
_COUNTERS = (
    "work_items", "states_explored", "cache_hits", "cache_misses",
    "supervisor_timeouts", "supervisor_retries", "supervisor_resumed",
    "compile_seconds", "encode_seconds", "states_encoded",
    "skeleton_compiles", "mask_evaluations", "trail_cache_hits",
    "verdict_cache_hits", "fvs_nodes_explored",
)

_STAGES = ("sweep", "check", "trail-search")


def _random_stats(rng: random.Random) -> EngineStats:
    stats = EngineStats()
    for name in _COUNTERS:
        if rng.random() < 0.7:
            value = (rng.uniform(0.0, 2.0) if name.endswith("_seconds")
                     else rng.randrange(0, 100))
            setattr(stats, name, value)
    for stage in _STAGES:
        if rng.random() < 0.5:
            stats.stage_seconds[stage] = rng.uniform(0.0, 1.0)
    return stats


def _totals(stats: EngineStats) -> dict:
    return stats.metrics.as_dict()


def _merged(parts, op) -> EngineStats:
    accumulator = EngineStats()
    for part in parts:
        op(accumulator, part)
    return accumulator


def _approx_equal(left: dict, right: dict) -> bool:
    return set(left) == set(right) and all(
        left[key] == pytest.approx(right[key]) for key in left)


class TestFullMerge:
    @pytest.mark.parametrize("seed", range(5))
    def test_merge_is_order_independent(self, seed):
        rng = random.Random(seed)
        parts = [_random_stats(rng) for _ in range(3)]
        baselines = None
        for order in permutations(parts):
            totals = _totals(_merged(
                order, lambda acc, p: acc.merge(p)))
            if baselines is None:
                baselines = totals
            else:
                assert _approx_equal(totals, baselines)

    def test_merge_is_associative_in_grouping(self):
        rng = random.Random(42)
        a, b, c = (_random_stats(rng) for _ in range(3))
        # (a + b) + c
        left = EngineStats()
        left.merge(a)
        left.merge(b)
        grouped_left = EngineStats()
        grouped_left.merge(left)
        grouped_left.merge(c)
        # a + (b + c)
        right = EngineStats()
        right.merge(b)
        right.merge(c)
        grouped_right = EngineStats()
        grouped_right.merge(a)
        grouped_right.merge(right)
        assert _approx_equal(_totals(grouped_left),
                             _totals(grouped_right))

    def test_merge_none_is_identity(self):
        stats = _random_stats(random.Random(1))
        before = _totals(stats)
        stats.merge(None)
        assert _totals(stats) == before


class TestKernelCounterMerge:
    """The selective merge used when a sweep folds per-K report stats —
    fresh from a worker or reloaded from a resume journal."""

    @pytest.mark.parametrize("seed", range(5))
    def test_resumed_partials_merge_order_independently(self, seed):
        # Model one sweep's per-K partial stats: under resume, journal
        # hits are folded before fresh work; uninterrupted runs fold in
        # sweep order.  Totals must not care.
        rng = random.Random(100 + seed)
        per_size = [_random_stats(rng) for _ in range(4)]
        resumed_order = [per_size[1], per_size[3],  # journal hits first
                         per_size[0], per_size[2]]
        direct = _merged(per_size,
                         lambda acc, p: acc.merge_kernel_counters(p))
        resumed = _merged(resumed_order,
                          lambda acc, p: acc.merge_kernel_counters(p))
        assert _approx_equal(_totals(direct), _totals(resumed))

    def test_engine_level_counters_stay_out(self):
        # The enclosing run counts work items / cache traffic itself;
        # folding a child's copy back in would double-count.
        child = EngineStats(work_items=7, cache_hits=3,
                            states_explored=100, states_encoded=50,
                            mask_evaluations=20)
        parent = EngineStats()
        parent.merge_kernel_counters(child)
        assert parent.work_items == 0
        assert parent.cache_hits == 0
        assert parent.states_explored == 0
        assert parent.states_encoded == 50
        assert parent.mask_evaluations == 20

    def test_supervisor_counters_stay_out(self):
        # A journaled report's stats may carry the *original* run's
        # supervision history; the resuming run tracks its own.
        child = EngineStats(supervisor_retries=5, supervisor_resumed=2,
                            compile_seconds=0.25)
        parent = EngineStats()
        parent.merge_kernel_counters(child)
        assert parent.supervisor_retries == 0
        assert parent.supervisor_resumed == 0
        assert parent.compile_seconds == pytest.approx(0.25)

    def test_stage_timings_accumulate(self):
        first = EngineStats(stage_seconds={"check": 0.5})
        second = EngineStats(stage_seconds={"check": 0.25,
                                            "sweep": 1.0})
        parent = EngineStats()
        parent.merge_kernel_counters(first)
        parent.merge_kernel_counters(second)
        assert parent.stage_seconds["check"] == pytest.approx(0.75)
        assert parent.stage_seconds["sweep"] == pytest.approx(1.0)

    def test_merge_none_is_identity(self):
        stats = _random_stats(random.Random(2))
        before = _totals(stats)
        stats.merge_kernel_counters(None)
        assert _totals(stats) == before
