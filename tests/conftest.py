"""Shared fixtures and strategies for the test suite."""

from __future__ import annotations

import pytest

from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)


@pytest.fixture
def agreement_protocol() -> RingProtocol:
    return agreement()


@pytest.fixture
def agreement_ss() -> RingProtocol:
    return stabilizing_agreement()


@pytest.fixture
def matching_42() -> RingProtocol:
    return generalizable_matching()


@pytest.fixture
def matching_43() -> RingProtocol:
    return nongeneralizable_matching()


@pytest.fixture
def gouda_matching() -> RingProtocol:
    return gouda_acharya_matching()


@pytest.fixture
def snt() -> RingProtocol:
    return sum_not_two()


@pytest.fixture
def snt_ss() -> RingProtocol:
    return stabilizing_sum_not_two()


@pytest.fixture
def coloring2() -> RingProtocol:
    return two_coloring()


@pytest.fixture
def coloring3() -> RingProtocol:
    return three_coloring()


@pytest.fixture
def agreement_ll() -> RingProtocol:
    return livelock_agreement()


@pytest.fixture
def matching_invariant_only() -> RingProtocol:
    return matching_base()


def empty_unidirectional(domain_size: int, name: str = "p",
                         legitimacy: str = "x[0] == x[-1]") -> RingProtocol:
    """A fresh empty unidirectional protocol for ad-hoc tests."""
    x = ranged("x", domain_size)
    process = ProcessTemplate(variables=(x,))
    return RingProtocol(name, process, legitimacy)
