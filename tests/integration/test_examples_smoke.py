"""Smoke-run the example scripts (the fast ones) so they cannot rot.

``simulate_convergence.py`` and ``hybrid_verification.py`` are excluded
here for runtime; the benchmark/CI pipeline runs them directly.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "matching_generalizability.py",
    "synthesize_coloring.py",
    "token_ring_audit.py",
    "chain_topologies.py",
]


def load_module(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script, capsys):
    module = load_module(EXAMPLES / script)
    module.main()  # every example asserts its own claims internally
    out = capsys.readouterr().out
    assert out.strip()  # produced some narrative


def test_examples_directory_complete():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "simulate_convergence.py",
            "hybrid_verification.py",
            "certificates_and_reports.py"} <= present
    assert len(present) >= 8
