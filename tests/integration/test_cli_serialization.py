"""CLI export / JSON output / file-based protocols."""

import json

from repro.cli import main


def test_export_then_verify_from_file(tmp_path, capsys):
    path = tmp_path / "agreement.json"
    assert main(["export", "agreement-ss", "-o", str(path)]) == 0
    capsys.readouterr()
    assert main(["verify", str(path)]) == 0
    out = capsys.readouterr().out
    assert "verdict: converges" in out


def test_verify_json_output(capsys):
    assert main(["verify", "agreement-ss", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["verdict"] == "converges"
    assert data["deadlock"]["deadlock_free"] is True


def test_verify_json_diverging(capsys):
    assert main(["verify", "matching-ex4.3", "--json"]) == 1
    data = json.loads(capsys.readouterr().out)
    assert data["verdict"] == "diverges"
    assert data["deadlock"]["witness_cycles"]


def test_check_json_output(capsys):
    assert main(["check", "agreement-ss", "-K", "4", "--json"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["self_stabilizing"] is True
    assert data["state_count"] == 16


def test_check_from_exported_file(tmp_path, capsys):
    path = tmp_path / "snt.json"
    assert main(["export", "sum-not-two-ss", "-o", str(path)]) == 0
    capsys.readouterr()
    assert main(["check", str(path), "-K", "5"]) == 0
    assert "strong convergence: True" in capsys.readouterr().out
