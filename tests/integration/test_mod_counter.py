"""A pure-livelock stress case: the mod-3 counter ring.

``LC_r = (c_r = c_{r-1} + 1 mod 3)`` with the self-disabling repair
``c_r := c_{r-1} + 1``.  The protocol never deadlocks, yet livelocks at
*every* size (and ``I(K)`` is empty unless 3 | K, so convergence is
outright impossible there).  A sound analysis must therefore answer
deadlock-free + livelock-UNKNOWN, and the hybrid verifier must produce a
concrete livelock counterexample.
"""

import pytest

from repro.checker import check_instance
from repro.core import verify_convergence
from repro.core.hybrid import HybridVerdict, hybrid_verify
from repro.protocol.dsl import parse_actions
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged


@pytest.fixture(scope="module")
def mod3_counter() -> RingProtocol:
    c = ranged("c", 3)
    actions = parse_actions(
        [("inc", "c[0] != (c[-1] + 1) % 3 -> c := (c[-1] + 1) % 3")],
        [c])
    return RingProtocol(
        "mod3-counter",
        ProcessTemplate(variables=(c,), actions=actions),
        "c[0] == (c[-1] + 1) % 3")


def test_invariant_empty_unless_size_divisible_by_three(mod3_counter):
    for size in (3, 4, 5, 6):
        instance = mod3_counter.instantiate(size)
        count = sum(1 for _ in instance.invariant_states())
        assert (count > 0) == (size % 3 == 0)
        if count:
            assert count == 3  # the three rotations of (0,1,2,...)


def test_local_analysis_is_sound_not_misled(mod3_counter):
    """Deadlock-freedom is exact (there are none); the livelock side
    must answer UNKNOWN — certifying this protocol would be unsound."""
    report = verify_convergence(mod3_counter)
    assert report.deadlock.deadlock_free
    assert report.verdict.value == "unknown"
    assert report.livelock.trail_witnesses  # plenty of real trails


@pytest.mark.parametrize("size", [3, 4, 5])
def test_livelocks_at_every_size(mod3_counter, size):
    report = check_instance(mod3_counter.instantiate(size))
    assert not report.deadlocks_outside
    assert report.livelock_cycles


def test_hybrid_finds_the_counterexample(mod3_counter):
    report = hybrid_verify(mod3_counter, check_up_to=5)
    assert report.verdict is HybridVerdict.DIVERGES_LIVELOCK
    assert report.counterexample is not None
    # at least one witness classified real
    assert any(not c.spurious for c in report.classifications)
