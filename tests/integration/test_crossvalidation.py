"""Cross-validation of the local analyses against global model checking
for every bundled protocol (benchmark X1's testable core)."""

import pytest

from repro.checker import check_instance
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.convergence import check_local_closure
from repro.checker import StateGraph, is_closed
from repro.errors import AssumptionViolation
from repro.protocols.registry import REGISTRY, get_protocol

SIZES = (3, 4, 5, 6)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_deadlock_prediction_matches_global(name):
    protocol = get_protocol(name)
    analyzer = DeadlockAnalyzer(protocol)
    predicted = analyzer.deadlocked_ring_sizes(max(SIZES))
    for size in SIZES:
        if size < protocol.process.window_width:
            continue
        report = check_instance(protocol.instantiate(size))
        assert (size in predicted) == bool(report.deadlocks_outside), (
            f"{name} at K={size}")


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_closure_check_matches_global(name):
    protocol = get_protocol(name)
    local = check_local_closure(protocol)
    for size in SIZES:
        if size < protocol.process.window_width:
            continue
        graph = StateGraph(protocol.instantiate(size))
        if local:
            assert is_closed(graph), f"{name} at K={size}"
    # the bundled protocols are all closed, so local must agree
    assert local


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_livelock_certificate_is_sound(name):
    protocol = get_protocol(name)
    try:
        report = LivelockCertifier(protocol).analyze()
    except AssumptionViolation:
        pytest.skip("protocol breaks Assumption 1/2; certificate N/A")
    if report.verdict is not LivelockVerdict.CERTIFIED_FREE:
        pytest.skip("no certificate issued; soundness untestable")
    if report.contiguous_only:
        pytest.skip("bidirectional: certificate covers contiguous only")
    for size in SIZES:
        global_report = check_instance(protocol.instantiate(size))
        assert global_report.livelock_cycles == (), (
            f"{name} certified but livelocks at K={size}")


def test_ex42_model_checked_5_to_8_as_in_the_paper():
    """The paper model-checked Example 4.2 for 5..8 processes."""
    from repro.protocols import generalizable_matching

    protocol = generalizable_matching()
    for size in (5, 6, 7, 8):
        report = check_instance(protocol.instantiate(size))
        assert report.self_stabilizing, f"K={size}"
