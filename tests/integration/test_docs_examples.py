"""Execute every python code block of docs/PROTOCOL_GUIDE.md.

The guide promises its blocks run verbatim; this test extracts them in
order and executes them in one shared namespace, so documentation drift
fails CI.
"""

import re
from pathlib import Path

GUIDE = Path(__file__).resolve().parents[2] / "docs" / \
    "PROTOCOL_GUIDE.md"


def python_blocks(text: str) -> list[str]:
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_guide_blocks_execute_in_order(capsys):
    blocks = python_blocks(GUIDE.read_text())
    assert len(blocks) >= 6
    namespace: dict = {}
    for i, block in enumerate(blocks):
        try:
            exec(compile(block, f"<guide block {i}>", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - diagnostic aid
            raise AssertionError(
                f"guide block {i} failed: {exc}\n{block}") from exc
    # The walkthrough's protagonists exist and converged.
    assert namespace["report"].verdict.value == "converges"
    assert namespace["result"].succeeded
    out = capsys.readouterr().out
    assert "steps to recover" in out


def test_guide_mentions_every_cli_verb_it_promises():
    text = GUIDE.read_text()
    for verb in ("repro verify", "repro hybrid", "repro sweep"):
        assert verb in text
