"""The random-protocol sampler and the fuzzing audit."""

import pytest

from repro.core.selfdisabling import is_self_disabling
from repro.core.convergence import check_local_closure
from repro.randomgen import (
    AuditReport,
    Discrepancy,
    ProtocolSampler,
    audit_theorems,
)


class TestSampler:
    def test_deterministic_per_seed(self):
        first = [ProtocolSampler(seed=7).sample().pretty()
                 for _ in range(5)]
        second = [ProtocolSampler(seed=7).sample().pretty()
                  for _ in range(5)]
        assert first == second

    def test_samples_are_self_disabling(self):
        sampler = ProtocolSampler(seed=3)
        for _ in range(25):
            protocol = sampler.sample()
            assert is_self_disabling(protocol.space)

    def test_restricted_samples_respect_closure(self):
        sampler = ProtocolSampler(seed=5, restrict_sources_to_bad=True)
        for _ in range(25):
            protocol = sampler.sample()
            for transition in protocol.space.transitions:
                assert not protocol.is_legitimate(transition.source)
            assert check_local_closure(protocol)

    def test_unrestricted_samples_may_touch_legit_states(self):
        sampler = ProtocolSampler(seed=1, restrict_sources_to_bad=False,
                                  max_transitions=8)
        touched = False
        for _ in range(50):
            protocol = sampler.sample()
            if any(protocol.is_legitimate(t.source)
                   for t in protocol.space.transitions):
                touched = True
                break
        assert touched

    def test_domain_bounds_validated(self):
        with pytest.raises(ValueError):
            ProtocolSampler(min_domain=1)
        with pytest.raises(ValueError):
            ProtocolSampler(min_domain=4, max_domain=3)

    def test_domains_within_range(self):
        sampler = ProtocolSampler(seed=0, min_domain=2, max_domain=3)
        for _ in range(20):
            domain = sampler.sample().process.variables[0].domain
            assert len(domain) in (2, 3)


class TestAudit:
    def test_audit_is_clean(self):
        report = audit_theorems(samples=20, max_ring_size=4, seed=11)
        assert report.clean
        assert report.samples == 20
        assert report.deadlock_checks == 20 * 3  # K = 2, 3, 4
        assert "CLEAN" in report.summary()

    def test_audit_counts_certificates(self):
        report = audit_theorems(samples=30, max_ring_size=4, seed=2)
        assert 0 < report.certificates_issued <= 30

    def test_custom_sampler_accepted(self):
        sampler = ProtocolSampler(seed=9, max_transitions=3)
        report = audit_theorems(samples=10, max_ring_size=3,
                                sampler=sampler)
        assert report.clean

    def test_discrepancy_rendering(self):
        report = AuditReport(samples=1, certificates_issued=0,
                             deadlock_checks=1)
        report.discrepancies.append(
            Discrepancy("theorem-4.2-mismatch", 4, "protocol p"))
        assert not report.clean
        assert "1 DISCREPANCIES" in report.summary()
