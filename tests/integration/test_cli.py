"""The command-line interface end to end."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "matching-ex4.2" in out
    assert "sum-not-two" in out


def test_show(capsys):
    assert main(["show", "agreement-ss"]) == 0
    out = capsys.readouterr().out
    assert "protocol agreement-ss" in out
    assert "t01" in out


def test_verify_converging_protocol(capsys):
    assert main(["verify", "agreement-ss"]) == 0
    out = capsys.readouterr().out
    assert "verdict: converges" in out


def test_verify_diverging_protocol_reports_sizes(capsys):
    assert main(["verify", "matching-ex4.3", "--max-sizes", "8"]) == 1
    out = capsys.readouterr().out
    assert "verdict: diverges" in out
    assert "deadlocked ring sizes" in out
    assert "4" in out and "6" in out


def test_check(capsys):
    assert main(["check", "agreement-ss", "-K", "5"]) == 0
    out = capsys.readouterr().out
    assert "K=5" in out
    assert "strong convergence: True" in out


def test_check_failing_instance(capsys):
    assert main(["check", "matching-gouda-acharya", "-K", "5"]) == 1


def test_synthesize_success(capsys):
    assert main(["synthesize", "sum-not-two"]) == 0
    out = capsys.readouterr().out
    assert "success" in out
    assert "protocol sum-not-two_ss" in out


def test_synthesize_failure(capsys):
    assert main(["synthesize", "3-coloring"]) == 1
    out = capsys.readouterr().out
    assert "failure" in out


def test_simulate(capsys):
    assert main(["simulate", "agreement-ss", "-K", "6",
                 "--samples", "20"]) == 0
    out = capsys.readouterr().out
    assert "20/20 converged" in out


def test_figures(tmp_path, capsys):
    assert main(["figures", "--out", str(tmp_path)]) == 0
    written = {p.name for p in tmp_path.iterdir()}
    assert "fig01_rcg_matching.dot" in written
    assert "fig04_ltg_ex42.dot" in written
    for path in tmp_path.iterdir():
        assert path.read_text().startswith("digraph")


def test_unknown_protocol_exit_code(capsys):
    assert main(["verify", "no-such-protocol"]) == 2
    assert "unknown protocol" in capsys.readouterr().err


def test_parser_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
