"""One test per figure/claim of the paper (the testable core of the
benchmark harness, F1–F12)."""

import pytest

from repro.checker import check_instance
from repro.core import (
    analyze_deadlocks,
    build_ltg,
    build_rcg,
    certify_livelock_freedom,
    synthesize_convergence,
)
from repro.core.contiguous import ContiguousLivelockModel
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.precedence import (
    precedence_preserving_schedules,
    precedence_relation,
    replay,
)
from repro.core.synthesis import SynthesisOutcome
from repro.core.trail import ContiguousTrailSearcher
from repro.protocol.actions import LocalTransition
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    matching_base,
    nongeneralizable_matching,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.viz import state_label


def test_fig1_rcg_of_maximal_matching():
    """Figure 1: the continuation relation over all 27 local states."""
    base = matching_base()
    rcg = build_rcg(base.space)
    assert len(rcg) == 27
    assert rcg.edge_count() == 81  # 3 continuations per state
    lls = base.space.state_of("left", "left", "self")
    lsr = base.space.state_of("left", "self", "right")
    assert rcg.has_edge(lls, lsr)


def test_fig2_example42_deadlock_rcg_has_no_bad_cycle():
    """Figure 2 / Example 4.2: deadlock-free for arbitrary K."""
    report = analyze_deadlocks(generalizable_matching())
    assert report.deadlock_free


def test_fig3_example43_cycles_of_length_4_and_6_through_lls():
    """Figure 3 / Example 4.3."""
    report = analyze_deadlocks(nongeneralizable_matching())
    labelled = {tuple(sorted(state_label(s) for s in c))
                for c in report.witness_cycles if len(c) in (4, 6)}
    assert ("lls", "lsr", "rll", "srl") in labelled
    assert any(len(c) == 6 and "lls" in {state_label(s) for s in c}
               for c in report.witness_cycles)
    # resolving ⟨l,l,s⟩ repairs the protocol for every K (paper's note)
    analyzer = DeadlockAnalyzer(nongeneralizable_matching())
    resolves = analyzer.resolve_candidates()
    assert frozenset({nongeneralizable_matching().space.state_of(
        "left", "left", "self")}) in resolves


def test_fig4_ltg_of_example42():
    """Figure 4: LTG = RCG + t-arcs of Example 4.2."""
    protocol = generalizable_matching()
    ltg = build_ltg(protocol.space)
    from repro.core.ltg import t_arcs

    assert len(t_arcs(ltg)) == len(protocol.space.transitions) > 0
    s_arcs = sum(1 for _u, _v, k in ltg.edges() if k == "s")
    assert s_arcs == 81


def test_fig5_fig6_precedence_classes_of_example52():
    """Figures 5–6: the K=4 agreement livelock admits exactly 8
    precedence-preserving schedules, each replaying to a livelock."""
    instance = livelock_agreement().instantiate(4)
    cycle = [instance.state_of(*map(int, s)) for s in
             ("1000", "1100", "0100", "0110",
              "0111", "0011", "1011", "1001")]
    relation = precedence_relation(instance, cycle)
    schedules = list(precedence_preserving_schedules(relation))
    assert len(schedules) == 8
    for schedule in schedules:
        states = replay(instance, cycle[0], relation.schedule, schedule)
        assert states is not None
        assert all(not instance.invariant_holds(s) for s in states)


def test_fig7_contiguous_livelock_dynamics():
    """Figure 7: K=6, |E|=3 — block shifts left per round of 3
    propagations; |E| conserved (Lemma 5.5)."""
    model = ContiguousLivelockModel(6, 3)
    states = model.run(model.steps_per_round)
    assert states[0].enabled == frozenset({0, 1, 2})
    assert states[-1].enabled == frozenset({5, 0, 1})
    assert all(len(s.enabled) == 3 for s in states)


def test_fig8_gouda_acharya_livelock_and_trail():
    """Figure 8: the [23] fragment livelocks at K=5 and its LTG shows a
    contiguous trail."""
    protocol = gouda_acharya_matching()
    report = check_instance(protocol.instantiate(5))
    assert report.livelock_cycles
    certificate = certify_livelock_freedom(protocol)
    assert certificate.trail_witnesses


def test_fig9_three_coloring_synthesis_fails():
    """Figure 9 / §6.1: Resolve = {00,11,22}, 8 candidate sets, all
    rejected."""
    result = synthesize_convergence(three_coloring())
    assert result.outcome is SynthesisOutcome.FAILURE
    assert {state_label(s) for s in result.resolve} == {"00", "11", "22"}
    assert len(result.rejected) == 8


def test_fig10_agreement_synthesis_succeeds_minimally():
    """Figure 10 / §6.2: resolve exactly one of {01, 10}; including both
    candidate transitions is rejected."""
    result = synthesize_convergence(agreement())
    assert result.outcome is SynthesisOutcome.SUCCESS_NPL
    assert len(result.chosen) == 1

    space = agreement().space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)))

    both = [t(1, 0, 1), t(0, 1, 0)]
    from repro.core.selfdisabling import action_for_transition

    protocol = agreement().extended_with(
        [action_for_transition(x, "t") for x in both])
    report = certify_livelock_freedom(protocol)
    assert report.trail_witnesses  # the paper's alternating trail


def test_fig11_two_coloring_cannot_be_concluded():
    """Figure 11 / §6.2: failure, consistent with impossibility [25]."""
    result = synthesize_convergence(two_coloring())
    assert result.outcome is SynthesisOutcome.FAILURE


def test_fig12_sum_not_two_success_and_spurious_trail():
    """Figure 12 / §6.2: the methodology succeeds; the rejected candidate
    {t21,t10,t02} forms a trail that is spurious (no real K=3
    livelock)."""
    result = synthesize_convergence(sum_not_two())
    assert result.outcome is SynthesisOutcome.SUCCESS_PL
    synthesized = result.protocol
    for size in (3, 4, 5):
        assert check_instance(
            synthesized.instantiate(size)).self_stabilizing

    space = sum_not_two().space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)))

    rejected = [t(0, 2, 1), t(1, 1, 0), t(2, 0, 2)]
    from repro.core.selfdisabling import action_for_transition

    candidate = sum_not_two().extended_with(
        [action_for_transition(x, "t") for x in rejected])
    searcher = ContiguousTrailSearcher(candidate)
    witness = searcher.find_trail(rejected)
    assert witness is not None
    # spurious: the global instance at the witness size has no livelock
    report = check_instance(candidate.instantiate(3))
    assert report.livelock_cycles == ()
