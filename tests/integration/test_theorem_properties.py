"""Adversarial property-based validation of the paper's theorems.

These tests generate *random* unidirectional ring protocols (random
locally conjunctive invariants, random local transition sets) and check
the local-reasoning verdicts against brute-force global model checking:

* **Theorem 4.2 is exact**: the deadlock-induced RCG predicts, size by
  size, exactly the rings with illegitimate global deadlocks.
* **Theorem 5.14 is sound**: whenever the certifier reports
  livelock-freedom for a self-disabling protocol with transitions
  confined to ``¬LC_r`` (which guarantees closure), no instance up to
  the test horizon has a livelock.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checker import StateGraph, check_instance
from repro.checker.livelock import has_livelock
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged

MAX_K = 6


def make_protocol(domain: int, legit_mask: list[bool],
                  transition_picks: list[tuple[int, int]],
                  restrict_sources_to_bad: bool) -> RingProtocol:
    """Build a unidirectional protocol from raw hypothesis draws.

    ``legit_mask[i]`` declares local state i legitimate.  Each pick
    ``(state_index, new_value)`` adds the transition rewriting that
    state's own cell; picks are filtered to keep the set self-disabling
    (no target is a source) and, optionally, sourced outside LC_r.
    """
    x = ranged("x", domain)
    skeleton = RingProtocol(
        "random", ProcessTemplate(variables=(x,)), lambda v: True)
    states = skeleton.space.states
    legit = {s for s, keep in zip(states, legit_mask) if keep}

    protocol = RingProtocol(
        "random", ProcessTemplate(variables=(x,)),
        lambda view: view.state in legit)

    transitions: list[LocalTransition] = []
    sources: set = set()
    for index, value in transition_picks:
        source = states[index % len(states)]
        if restrict_sources_to_bad and source in legit:
            continue
        target = source.replace_own((value % domain,))
        if target == source:
            continue
        transitions.append(LocalTransition(source, target, "rnd"))
        sources.add(source)
    # Self-disabling: drop transitions whose target is itself a source.
    kept = [t for t in transitions if t.target not in sources]
    deduped = list(dict.fromkeys(kept))
    actions = tuple(action_for_transition(t, name=f"r{i}")
                    for i, t in enumerate(deduped))
    return protocol.with_actions(actions, name="random")


protocol_draws = st.tuples(
    st.integers(2, 3),                                   # domain size
    st.lists(st.booleans(), min_size=9, max_size=9),     # legitimacy mask
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 2)),
             max_size=6),                                # transitions
)


@given(protocol_draws)
@settings(max_examples=60, deadline=None)
def test_theorem_42_exact_against_brute_force(draw):
    """Per-size deadlock prediction == global enumeration, K = 2..6."""
    domain, mask, picks = draw
    mask = mask[:domain * domain]
    protocol = make_protocol(domain, mask, picks,
                             restrict_sources_to_bad=False)
    analyzer = DeadlockAnalyzer(protocol)
    predicted = analyzer.deadlocked_ring_sizes(MAX_K)
    for size in range(2, MAX_K + 1):
        instance = protocol.instantiate(size)
        has_global = any(
            instance.is_deadlock(s) and not instance.invariant_holds(s)
            for s in instance.states())
        assert (size in predicted) == has_global, (
            f"K={size}: local={size in predicted}, global={has_global}\n"
            f"{protocol.pretty()}")
    # The boolean verdict must agree with an empty prediction set
    # whenever witness cycles fit within the horizon.
    report = analyzer.analyze()
    if report.deadlock_free:
        assert predicted == set()


@given(protocol_draws)
@settings(max_examples=40, deadline=None)
def test_theorem_514_sound_against_brute_force(draw):
    """Certified livelock-freedom ⇒ no livelock at any K up to the
    horizon (for closure-respecting, self-disabling random protocols)."""
    domain, mask, picks = draw
    mask = mask[:domain * domain]
    protocol = make_protocol(domain, mask, picks,
                             restrict_sources_to_bad=True)
    certifier = LivelockCertifier(protocol, max_ring_size=MAX_K + 1)
    report = certifier.analyze()
    if report.verdict is not LivelockVerdict.CERTIFIED_FREE:
        return  # sufficiency only: nothing to check on UNKNOWN
    for size in range(2, MAX_K + 1):
        graph = StateGraph(protocol.instantiate(size))
        assert not has_livelock(graph), (
            f"certified livelock-free but K={size} livelocks\n"
            f"{protocol.pretty()}")


@given(protocol_draws)
@settings(max_examples=40, deadline=None)
def test_local_closure_check_exact_against_brute_force(draw):
    """check_local_closure vs global closure on random protocols
    (transition sources unrestricted, so closure genuinely varies).

    Soundness: local "closed" ⇒ every checked instance is closed.
    Exactness: local "broken" ⇒ some instance within the span-derived
    horizon exhibits a violation.
    """
    from repro.checker import StateGraph, is_closed
    from repro.core.convergence import check_local_closure

    domain, mask, picks = draw
    mask = mask[:domain * domain]
    protocol = make_protocol(domain, mask, picks,
                             restrict_sources_to_bad=False)
    local = check_local_closure(protocol)
    horizon = range(2, 8)
    broken_somewhere = False
    for size in horizon:
        graph = StateGraph(protocol.instantiate(size))
        closed = is_closed(graph)
        if local:
            assert closed, (f"local says closed, K={size} disagrees\n"
                            f"{protocol.pretty()}")
        elif not closed:
            broken_somewhere = True
            break
    if not local:
        assert broken_somewhere, (
            f"local says broken, no violation up to K=7\n"
            f"{protocol.pretty()}")


def make_bidirectional_protocol(legit_mask: list[bool],
                                transition_picks: list[tuple[int, int]],
                                ) -> RingProtocol:
    """A random bidirectional (window ⟨-1,0,+1⟩) binary protocol."""
    x = ranged("x", 2)
    template = ProcessTemplate(variables=(x,), reads_left=1,
                               reads_right=1)
    skeleton = RingProtocol("random-bi", template, lambda v: True)
    states = skeleton.space.states
    legit = {s for s, keep in zip(states, legit_mask) if keep}
    protocol = RingProtocol("random-bi", template,
                            lambda view: view.state in legit)
    transitions = []
    for index, value in transition_picks:
        source = states[index % len(states)]
        target = source.replace_own((value % 2,))
        if target != source:
            transitions.append(LocalTransition(source, target, "rnd"))
    deduped = list(dict.fromkeys(transitions))
    actions = tuple(action_for_transition(t, name=f"b{i}")
                    for i, t in enumerate(deduped))
    return protocol.with_actions(actions, name="random-bi")


bidirectional_draws = st.tuples(
    st.lists(st.booleans(), min_size=8, max_size=8),
    st.lists(st.tuples(st.integers(0, 7), st.integers(0, 1)),
             max_size=5),
)


@given(bidirectional_draws)
@settings(max_examples=40, deadline=None)
def test_theorem_42_exact_on_bidirectional_rings(draw):
    """Theorem 4.2 covers bidirectional rings too; check exactness for
    K = 3..5 (window width 3)."""
    mask, picks = draw
    protocol = make_bidirectional_protocol(mask, picks)
    analyzer = DeadlockAnalyzer(protocol)
    predicted = analyzer.deadlocked_ring_sizes(5)
    for size in range(3, 6):
        instance = protocol.instantiate(size)
        has_global = any(
            instance.is_deadlock(s) and not instance.invariant_holds(s)
            for s in instance.states())
        assert (size in predicted) == has_global, (
            f"K={size}: local={size in predicted}, global={has_global}")


@given(protocol_draws)
@settings(max_examples=30, deadline=None)
def test_combined_verdict_soundness(draw):
    """verify_convergence CONVERGES ⇒ every small instance strongly
    self-stabilizes; DIVERGES ⇒ some small instance fails (when the
    witness fits the horizon)."""
    from repro.core.convergence import ConvergenceVerdict, \
        verify_convergence

    domain, mask, picks = draw
    mask = mask[:domain * domain]
    protocol = make_protocol(domain, mask, picks,
                             restrict_sources_to_bad=True)
    report = verify_convergence(protocol, max_ring_size=MAX_K + 1)
    if report.verdict is ConvergenceVerdict.CONVERGES:
        for size in range(2, MAX_K + 1):
            global_report = check_instance(protocol.instantiate(size))
            assert global_report.self_stabilizing, (
                f"CONVERGES but K={size} fails\n{protocol.pretty()}")
