"""JSON round-trips for protocols and report exports."""

import json

import pytest

from repro.core import analyze_deadlocks, verify_convergence
from repro.checker import check_instance
from repro.errors import ProtocolDefinitionError
from repro.protocols import chain_broadcast, stabilizing_agreement
from repro.protocols.registry import REGISTRY, get_protocol
from repro.serialization import (
    convergence_report_to_dict,
    global_report_to_dict,
    load_protocol,
    protocol_from_dict,
    protocol_to_dict,
    save_protocol,
)


@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_registry_protocols_roundtrip(name):
    original = get_protocol(name)
    rebuilt = protocol_from_dict(
        json.loads(json.dumps(protocol_to_dict(original))))
    assert rebuilt.name == original.name
    assert rebuilt.process.window_offsets == \
        original.process.window_offsets
    # Semantics preserved: identical local transitions and legitimacy.
    assert rebuilt.space.transitions == original.space.transitions
    for state in original.space.states:
        assert rebuilt.is_legitimate(state) == \
            original.is_legitimate(state)


def test_chain_roundtrip(tmp_path):
    original = chain_broadcast(values=3, boundary=2)
    path = tmp_path / "broadcast.json"
    save_protocol(original, path)
    rebuilt = load_protocol(path)
    assert rebuilt.left_boundary == (2,)
    assert rebuilt.space.transitions == original.space.transitions
    # The rebuilt chain is analyzable like the original.
    from repro.core.chains import verify_chain_convergence

    assert verify_chain_convergence(rebuilt).verdict.value == "converges"


def test_roundtripped_protocol_analyzes_identically():
    original = stabilizing_agreement()
    rebuilt = protocol_from_dict(protocol_to_dict(original))
    assert analyze_deadlocks(rebuilt).deadlock_free == \
        analyze_deadlocks(original).deadlock_free
    assert verify_convergence(rebuilt).verdict == \
        verify_convergence(original).verdict


def test_callable_protocols_refuse_serialization():
    from repro.protocol.process import ProcessTemplate
    from repro.protocol.ring import RingProtocol
    from repro.protocol.variables import ranged

    x = ranged("x", 2)
    protocol = RingProtocol("opaque", ProcessTemplate(variables=(x,)),
                            lambda view: True)
    with pytest.raises(ProtocolDefinitionError):
        protocol_to_dict(protocol)


def test_synthesized_actions_refuse_serialization():
    from repro.core import synthesize_convergence
    from repro.protocols import agreement

    result = synthesize_convergence(agreement())
    with pytest.raises(ProtocolDefinitionError):
        protocol_to_dict(result.protocol)


def test_unknown_topology_rejected():
    data = protocol_to_dict(stabilizing_agreement())
    data["topology"] = "torus"
    with pytest.raises(ProtocolDefinitionError):
        protocol_from_dict(data)


def test_convergence_report_export():
    report = verify_convergence(stabilizing_agreement())
    data = convergence_report_to_dict(report)
    assert data["verdict"] == "converges"
    assert data["deadlock"]["deadlock_free"] is True
    assert data["livelock"]["verdict"] == "certified-livelock-free"
    json.dumps(data)  # fully JSON-ready

    from repro.protocols import livelock_agreement

    unknown = convergence_report_to_dict(
        verify_convergence(livelock_agreement()))
    assert unknown["livelock"]["trail_witnesses"]
    json.dumps(unknown)


def test_global_report_export():
    report = check_instance(stabilizing_agreement().instantiate(4))
    data = global_report_to_dict(report)
    assert data["self_stabilizing"] is True
    assert data["state_count"] == 16
    json.dumps(data)
