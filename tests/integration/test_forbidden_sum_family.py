"""The generalized forbidden-sum synthesis workload.

Runs the Section 6 methodology across the ``(domain, forbidden)``
family and cross-validates every outcome: synthesized protocols must
verify CONVERGES locally and self-stabilize globally; failures must not
be globally repairable by the enumerated candidate set (every
combination either livelocks or was rightly rejected).
"""

import pytest

from repro.checker import check_instance
from repro.core import verify_convergence
from repro.core.selfdisabling import action_for_transition
from repro.core.synthesis import Synthesizer, synthesize_convergence
from repro.protocols.sum_not_two import forbidden_sum


def test_validation():
    with pytest.raises(ValueError):
        forbidden_sum(1, 0)
    with pytest.raises(ValueError):
        forbidden_sum(3, 5)


def test_sum_not_two_is_a_family_member():
    member = forbidden_sum(3, 2)
    from repro.protocols import sum_not_two

    reference = sum_not_two()
    assert {str(s) for s in member.illegitimate_states()} == \
        {str(s) for s in reference.illegitimate_states()}


@pytest.mark.parametrize("domain,forbidden", [
    (2, 0), (2, 1), (2, 2),
    (3, 0), (3, 1), (3, 2), (3, 3), (3, 4),
    (4, 3),
])
def test_family_outcomes_are_sound(domain, forbidden):
    protocol = forbidden_sum(domain, forbidden)
    result = synthesize_convergence(protocol)
    if result.succeeded:
        report = verify_convergence(result.protocol)
        assert report.verdict.value == "converges"
        for size in (3, 4, 5):
            assert check_instance(
                result.protocol.instantiate(size)).self_stabilizing, \
                (domain, forbidden, size)
    else:
        # Failure must never hide an acceptable combination: every
        # enumerated combination is either rejected by the trail search
        # (as recorded) or absent because a deadlock was unresolvable.
        verdicts = Synthesizer(protocol).evaluate_all_combinations()
        assert all(reason is not None for _c, reason in verdicts)


def test_family_rejections_catch_real_livelocks():
    """Wherever the methodology rejects a combination, double-check that
    accepted ones stabilize and count how many rejections shield real
    livelocks (regression net for the trail search)."""
    protocol = forbidden_sum(3, 2)
    real, spurious = 0, 0
    for combo, reason in Synthesizer(protocol) \
            .evaluate_all_combinations():
        candidate = protocol.extended_with(
            [action_for_transition(t, t.label) for t in combo])
        stabilizes = all(
            check_instance(candidate.instantiate(size)).self_stabilizing
            for size in (3, 4))
        if reason is None:
            assert stabilizes
        elif stabilizes:
            spurious += 1
        else:
            real += 1
    assert real == 2       # the {t20, t02} chase pair
    assert spurious == 2   # the paper's two named rejections
