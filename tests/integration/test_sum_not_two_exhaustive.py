"""Exhaustive audit of all 2³ sum-not-two candidate combinations.

Section 6.2 names one rejected combination ({t21,t10,t02}, spurious
trail) and one accepted ({t21,t12,t01}), then claims *none of the
remaining* subsets forms a trail.  Exhaustive checking refutes that
blanket claim — and vindicates the formal theorem over the prose:

* the two combinations containing the pseudo-livelock {t20, t02}
  (i.e. {t20,t10,t02} and {t20,t12,t02}) have **real livelocks** at
  K = 3 (the cycle 002 → 202 → 200 → 220 → 020 → 022): their sources
  ⟨0,2⟩ and ⟨2,0⟩ are mutually continuation-adjacent, so the corruption
  pair can chase itself around the ring;
* our trail search (faithful to Lemma 5.12's structure) rejects exactly
  those two *plus* two spurious ones — including both combinations the
  paper names — and accepts four;
* every accepted combination is globally self-stabilizing at K = 3..6
  (certificate soundness), and every combination with a real livelock
  is rejected (no wrong acceptance).
"""

import pytest

from repro.checker import check_instance
from repro.core.selfdisabling import action_for_transition
from repro.core.synthesis import Synthesizer
from repro.protocols import sum_not_two


@pytest.fixture(scope="module")
def verdicts():
    protocol = sum_not_two()
    synthesizer = Synthesizer(protocol)
    results = []
    for combo, reason in synthesizer.evaluate_all_combinations():
        candidate = protocol.extended_with(
            [action_for_transition(t, t.label) for t in combo])
        global_ok = all(
            check_instance(candidate.instantiate(size)).self_stabilizing
            for size in (3, 4, 5))
        labels = frozenset(t.label for t in combo)
        results.append((labels, reason is None, global_ok))
    return results


def test_eight_combinations_enumerated(verdicts):
    assert len(verdicts) == 8


def test_accepted_combinations_all_stabilize(verdicts):
    """Certificate soundness over the whole candidate lattice."""
    for labels, accepted, global_ok in verdicts:
        if accepted:
            assert global_ok, labels


def test_real_livelocks_all_rejected(verdicts):
    """No combination with a real livelock slips through."""
    for labels, accepted, global_ok in verdicts:
        if not global_ok:
            assert not accepted, labels


def test_papers_named_decisions_reproduce(verdicts):
    by_labels = {labels: (accepted, global_ok)
                 for labels, accepted, global_ok in verdicts}
    # the paper's accepted set
    assert by_labels[frozenset({"t21", "t12", "t01"})] == (True, True)
    # the paper's named rejected set: rejected, yet spurious
    assert by_labels[frozenset({"t21", "t10", "t02"})] == (False, True)


def test_papers_blanket_claim_is_refuted(verdicts):
    """The two {t20, t02}-containing combinations livelock for real —
    contrary to "none of the remaining candidates forms a trail"."""
    by_labels = {labels: (accepted, global_ok)
                 for labels, accepted, global_ok in verdicts}
    for labels in (frozenset({"t20", "t10", "t02"}),
                   frozenset({"t20", "t12", "t02"})):
        accepted, global_ok = by_labels[labels]
        assert not global_ok     # real livelock exists
        assert not accepted      # and we reject it


def test_the_k3_livelock_is_the_02_chase():
    from repro.protocol.actions import LocalTransition

    protocol = sum_not_two()
    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    combo = [t(0, 2, 0), t(1, 1, 0), t(2, 0, 2)]  # {t20, t10, t02}
    candidate = protocol.extended_with(
        [action_for_transition(x, x.label) for x in combo])
    report = check_instance(candidate.instantiate(3))
    assert report.livelock_cycles
    cycle = report.livelock_cycles[0]
    values = {tuple(c[0] for c in state) for state in cycle}
    # only 0s and 2s circulate — the {t20, t02} value chase
    assert all(set(v) <= {0, 2} for v in values)
