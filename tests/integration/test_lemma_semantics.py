"""Section 5's lemmas validated on *real* livelocks.

The trail machinery rests on structural lemmas about livelocks of
unidirectional rings; these tests check each lemma against concrete
livelock cycles found by the global checker:

* Lemma 5.5 — enablement conservation;
* Corollary 5.6 — absence of collisions;
* Lemma 5.8 — some process is always in an illegitimate local state;
* Lemma 5.9 — somewhere along the livelock a *corruption* (enabled and
  illegitimate) occurs;
* Lemma 5.12 (|E| = 1) — the livelock projects onto the LTG as an
  alternating t-arc / s-arc trail.
"""

import pytest

from repro.checker import StateGraph
from repro.checker.livelock import livelock_cycles
from repro.core.precedence import (
    precedence_preserving_schedules,
    precedence_relation,
    replay,
)
from repro.protocols import gouda_acharya_matching, livelock_agreement

PAPER_CYCLE = ("1000", "1100", "0100", "0110",
               "0111", "0011", "1011", "1001")


def actor_of(instance, state, nxt) -> int:
    return next(r for r in range(instance.size) if state[r] != nxt[r])


@pytest.fixture(scope="module")
def agreement_livelocks():
    """All eight equivalent livelocks of Example 5.2 (K=4)."""
    protocol = livelock_agreement()
    instance = protocol.instantiate(4)
    cycle = [instance.state_of(*map(int, s)) for s in PAPER_CYCLE]
    relation = precedence_relation(instance, cycle)
    cycles = []
    for permutation in precedence_preserving_schedules(relation):
        cycles.append(replay(instance, cycle[0], relation.schedule,
                             permutation))
    return instance, cycles


def test_lemma_5_5_enablement_conservation(agreement_livelocks):
    instance, cycles = agreement_livelocks
    for cycle in cycles:
        counts = {len(instance.enabled_processes(s)) for s in cycle}
        assert len(counts) == 1  # |E| constant along the livelock
        assert counts == {2}     # Example 5.2 circulates two enablements


def test_corollary_5_6_no_collisions(agreement_livelocks):
    """No step executes a process whose successor is enabled."""
    instance, cycles = agreement_livelocks
    for cycle in cycles:
        for i, state in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            actor = actor_of(instance, state, nxt)
            successor = (actor + 1) % instance.size
            assert successor not in instance.enabled_processes(state), (
                f"collision: {actor} fired while {successor} enabled")


def test_corollary_5_7_no_continuously_enabled_process(
        agreement_livelocks):
    """Every process is disabled somewhere along the livelock."""
    instance, cycles = agreement_livelocks
    for cycle in cycles:
        for process in range(instance.size):
            assert any(process not in instance.enabled_processes(s)
                       for s in cycle)


def test_lemma_5_8_local_illegitimacy(agreement_livelocks):
    instance, cycles = agreement_livelocks
    for cycle in cycles:
        for state in cycle:
            assert instance.corrupted_processes(state)


def test_lemma_5_9_a_corruption_occurs(agreement_livelocks):
    """Some global state has a process both enabled and illegitimate."""
    instance, cycles = agreement_livelocks
    for cycle in cycles:
        assert any(
            set(instance.enabled_processes(state))
            & set(instance.corrupted_processes(state))
            for state in cycle)


def test_lemma_5_12_e1_livelock_is_an_alternating_trail():
    """The Gouda–Acharya K=5 livelock (|E| = 1, right propagation)
    projects onto the LTG as t-arc, s-arc, t-arc, s-arc, …"""
    protocol = gouda_acharya_matching()
    instance = protocol.instantiate(5)
    space = protocol.space
    graph = StateGraph(instance)
    cycle = livelock_cycles(graph, max_cycles=1)[0]
    transitions = set(space.transitions)

    n = len(cycle)
    for i, state in enumerate(cycle):
        nxt = cycle[(i + 1) % n]
        actor = actor_of(instance, state, nxt)
        # the executed step is a t-arc of δ_r
        pre = instance.local_state(state, actor)
        post = instance.local_state(nxt, actor)
        assert any(t.source == pre and t.target.own == post.own
                   for t in transitions)
        # the handover to the next actor is an s-arc (right continuation)
        after = cycle[(i + 1) % n]
        next_actor = actor_of(instance, after, cycle[(i + 2) % n])
        assert next_actor == (actor + 1) % instance.size  # |E| = 1 flow
        handover_source = instance.local_state(after, actor)
        handover_target = instance.local_state(after, next_actor)
        assert space.continues(handover_source, handover_target)
