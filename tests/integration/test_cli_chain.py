"""The ``repro chain`` subcommand."""

from repro.cli import main


def test_chain_list(capsys):
    assert main(["chain", "list"]) == 0
    out = capsys.readouterr().out
    assert "broadcast-chain" in out
    assert "2-coloring-chain" in out


def test_chain_verify_converging(capsys):
    assert main(["chain", "broadcast-chain"]) == 0
    out = capsys.readouterr().out
    assert "converges (exact for every chain size)" in out


def test_chain_verify_diverging(capsys):
    assert main(["chain", "2-coloring-chain"]) == 1
    out = capsys.readouterr().out
    assert "diverges" in out
    assert "witness walk" in out


def test_chain_synthesize(capsys):
    assert main(["chain", "2-coloring-chain", "--synthesize"]) == 0
    out = capsys.readouterr().out
    assert "chain synthesis succeeded" in out
    assert "unidirectional chain" in out


def test_chain_unknown_protocol(capsys):
    assert main(["chain", "no-such-chain"]) == 2
    assert "unknown chain protocol" in capsys.readouterr().err
