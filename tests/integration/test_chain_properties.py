"""Property-based validation of the chain extension.

Random unidirectional chain protocols: the boundary-walk deadlock
analysis must be exact against brute force, the per-size DP must match
enumeration, and (with self-disabling transitions) every execution must
terminate within the K(K+1)/2 bound.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chains import ChainDeadlockAnalyzer
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocol.chain import ChainProtocol
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import ranged
from repro.simulation import RandomScheduler, run

MAX_K = 5

chain_draws = st.tuples(
    st.integers(2, 3),                                  # domain
    st.lists(st.booleans(), min_size=9, max_size=9),    # legitimacy
    st.lists(st.tuples(st.integers(0, 8), st.integers(0, 2)),
             max_size=6),                               # transitions
    st.integers(0, 2),                                  # left boundary
)


def make_chain(domain, mask, picks, boundary) -> ChainProtocol:
    x = ranged("x", domain)
    blank = ChainProtocol("rand", ProcessTemplate(variables=(x,)),
                          lambda v: True,
                          left_boundary=boundary % domain)
    states = blank.space.states
    legit = {s for s, keep in zip(states, mask[:domain * domain])
             if keep}
    protocol = ChainProtocol(
        "rand", ProcessTemplate(variables=(x,)),
        lambda view: view.state in legit,
        left_boundary=boundary % domain)
    transitions: list[LocalTransition] = []
    sources: set = set()
    for index, value in picks:
        source = states[index % len(states)]
        target = source.replace_own((value % domain,))
        if target == source:
            continue
        transitions.append(LocalTransition(source, target, "rnd"))
        sources.add(source)
    kept = list(dict.fromkeys(
        t for t in transitions if t.target not in sources))
    actions = tuple(action_for_transition(t, name=f"c{i}")
                    for i, t in enumerate(kept))
    return protocol.extended_with(actions)


@given(chain_draws)
@settings(max_examples=50, deadline=None)
def test_chain_deadlock_dp_exact(draw):
    domain, mask, picks, boundary = draw
    protocol = make_chain(domain, mask, picks, boundary)
    analyzer = ChainDeadlockAnalyzer(protocol)
    predicted = analyzer.deadlocked_chain_sizes(MAX_K)
    for size in range(1, MAX_K + 1):
        instance = protocol.instantiate(size)
        brute = any(
            instance.is_deadlock(s) and not instance.invariant_holds(s)
            for s in instance.states())
        assert (size in predicted) == brute, (
            f"K={size}\n{protocol.pretty()}")
    # boolean verdict consistent with the horizon scan
    report = analyzer.analyze()
    if report.deadlock_free:
        assert predicted == set()


@given(chain_draws, st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_chain_executions_terminate_within_bound(draw, seed):
    domain, mask, picks, boundary = draw
    protocol = make_chain(domain, mask, picks, boundary)
    size = 4
    bound = size * (size + 1) // 2
    instance = protocol.instantiate(size)
    cells = protocol.space.cells
    start = tuple(cells[(seed + i) % len(cells)] for i in range(size))
    trace = run(instance, start, RandomScheduler(seed=seed),
                max_steps=bound + 1, stop_on_convergence=False)
    # the run must halt (deadlock) strictly within the bound
    assert trace.steps <= bound
