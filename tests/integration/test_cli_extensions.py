"""CLI subcommands added beyond the core paper workflow."""

from repro.cli import main


def test_hybrid_converging(capsys):
    assert main(["hybrid", "agreement-ss"]) == 0
    out = capsys.readouterr().out
    assert "hybrid verdict: converges" in out


def test_hybrid_finds_real_livelock(capsys):
    assert main(["hybrid", "agreement-livelock",
                 "--check-up-to", "5"]) == 1
    out = capsys.readouterr().out
    assert "diverges-livelock" in out
    assert "REAL at K=" in out
    assert "counterexample livelock" in out


def test_hybrid_deadlock_passthrough(capsys):
    assert main(["hybrid", "matching-ex4.3"]) == 1
    assert "diverges-deadlock" in capsys.readouterr().out


def test_sweep_reports_failing_sizes(capsys):
    assert main(["sweep", "matching-ex4.3", "--up-to", "6"]) == 1
    out = capsys.readouterr().out
    assert "fails at K = [4, 6]" in out


def test_sweep_clean(capsys):
    assert main(["sweep", "agreement-ss", "--up-to", "5"]) == 0
    assert "self-stabilizing throughout" in capsys.readouterr().out


def test_sweep_stop_on_failure(capsys):
    assert main(["sweep", "matching-ex4.3", "--up-to", "8",
                 "--stop-on-failure"]) == 1
    out = capsys.readouterr().out
    assert "K=4" in out
    assert "K=5" not in out


def test_fuzz_clean(capsys):
    assert main(["fuzz", "--samples", "8", "--max-ring-size", "4"]) == 0
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "8 random protocols" in out
