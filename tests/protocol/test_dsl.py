"""The guarded-command DSL parser."""

import pytest

from repro.errors import DslNameError, DslSyntaxError
from repro.protocol.dsl import (
    parse_action,
    parse_actions,
    parse_predicate,
    split_top_level,
)
from repro.protocol.localstate import LocalStateSpace
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import Variable, ranged


def space_for(*variables, reads_left=1, reads_right=0,
              actions=()) -> LocalStateSpace:
    return ProcessTemplate(variables=tuple(variables), actions=actions,
                           reads_left=reads_left,
                           reads_right=reads_right).local_space()


class TestSplitTopLevel:
    def test_plain_split(self):
        assert split_top_level("a | b | c", "|") == ["a ", " b ", " c"]

    def test_brackets_protect(self):
        assert split_top_level("f[1, 2], b", ",") == ["f[1, 2]", " b"]

    def test_quotes_protect(self):
        assert split_top_level("'a,b', c", ",") == ["'a,b'", " c"]

    def test_multichar_separator(self):
        assert split_top_level("g -> s", "->") == ["g ", " s"]

    def test_unterminated_quote(self):
        with pytest.raises(DslSyntaxError):
            split_top_level("'oops", ",")

    def test_unbalanced_brackets(self):
        with pytest.raises(DslSyntaxError):
            split_top_level("(a, b", ",")


class TestParseAction:
    def test_simple_action(self):
        x = ranged("x", 2)
        action = parse_action("x[-1] == 1 and x[0] == 0 -> x := 1", [x],
                              name="t01")
        space = space_for(x, actions=(action,))
        enabled = space.state_of(1, 0)
        disabled = space.state_of(0, 0)
        assert space.enabled_actions(enabled) == [action]
        assert space.enabled_actions(disabled) == []
        targets = space.targets(enabled, action)
        assert targets == [space.state_of(1, 1)]

    def test_nondeterministic_choice(self):
        m = Variable("m", ("left", "right", "self"))
        action = parse_action(
            "m[0] == 'self' -> m := 'right' | 'left'", [m])
        space = space_for(m, actions=(action,))
        state = space.state_of("self", "self")
        targets = set(space.targets(state, action))
        assert targets == {space.state_of("self", "right"),
                           space.state_of("self", "left")}

    def test_multi_variable_atomic_assignment(self):
        a, b = ranged("a", 2), ranged("b", 2)
        # Atomic swap: right-hand sides read the pre-state.
        action = parse_action("a[0] != b[0] -> a := b[0], b := a[0]",
                              [a, b])
        space = space_for(a, b, actions=(action,))
        state = space.state_of((0, 0), (0, 1))
        targets = space.targets(state, action)
        assert targets == [space.state_of((0, 0), (1, 0))]

    def test_noop_writes_are_dropped(self):
        x = ranged("x", 2)
        action = parse_action("x[0] == 0 -> x := 0", [x])
        space = space_for(x, actions=(action,))
        assert space.targets(space.state_of(0, 0), action) == []
        assert space.transitions == ()

    def test_missing_arrow(self):
        with pytest.raises(DslSyntaxError):
            parse_action("x[0] == 0", [ranged("x", 2)])

    def test_assignment_to_unknown_variable(self):
        with pytest.raises(DslNameError):
            parse_action("x[0] == 0 -> y := 1", [ranged("x", 2)])

    def test_assignment_without_walrus(self):
        with pytest.raises(DslSyntaxError):
            parse_action("x[0] == 0 -> x = 1", [ranged("x", 2)])

    def test_source_text_recorded(self):
        x = ranged("x", 2)
        text = "x[0] == 0 -> x := 1"
        assert parse_action(text, [x]).source_text == text


class TestParseActions:
    def test_auto_naming(self):
        x = ranged("x", 2)
        actions = parse_actions(
            ["x[0] == 0 -> x := 1", "x[0] == 1 -> x := 0"], [x])
        assert [a.name for a in actions] == ["A1", "A2"]

    def test_explicit_names(self):
        x = ranged("x", 2)
        actions = parse_actions(
            [("up", "x[0] == 0 -> x := 1")], [x])
        assert actions[0].name == "up"


class TestParsePredicate:
    def test_truthiness(self):
        x = ranged("x", 3)
        predicate = parse_predicate("x[0] + x[-1] != 2", [x])
        space = space_for(x)
        assert predicate(space.view(space.state_of(0, 0)))
        assert not predicate(space.view(space.state_of(2, 0)))
