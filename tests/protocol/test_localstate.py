"""Local states, views, spaces and the continuation relation."""

import pytest

from repro.errors import DomainError, ProtocolDefinitionError
from repro.protocol.dsl import parse_action
from repro.protocol.localstate import LocalState, LocalStateSpace
from repro.protocol.process import ProcessTemplate
from repro.protocol.variables import Variable, ranged


def unidirectional_space(domain=2, actions=()) -> LocalStateSpace:
    x = ranged("x", domain)
    return ProcessTemplate(variables=(x,), actions=actions).local_space()


def bidirectional_space(actions=()) -> LocalStateSpace:
    m = Variable("m", ("left", "right", "self"))
    return ProcessTemplate(variables=(m,), actions=actions,
                           reads_left=1, reads_right=1).local_space()


class TestLocalState:
    def test_cell_access_by_offset(self):
        s = LocalState(((0,), (1,), (2,)), left=1)
        assert s.cell(-1) == (0,)
        assert s.cell(0) == (1,)
        assert s.cell(1) == (2,)
        assert s.own == (1,)

    def test_out_of_window_offset_raises(self):
        s = LocalState(((0,), (1,)), left=1)
        with pytest.raises(ProtocolDefinitionError):
            s.cell(1)
        with pytest.raises(ProtocolDefinitionError):
            s.cell(-2)

    def test_replace_own(self):
        s = LocalState(((0,), (1,)), left=1)
        t = s.replace_own((9,))
        assert t.cell(0) == (9,)
        assert t.cell(-1) == (0,)
        assert s.cell(0) == (1,)  # original untouched

    def test_hashable_and_ordered(self):
        a = LocalState(((0,), (1,)), left=1)
        b = LocalState(((0,), (1,)), left=1)
        c = LocalState(((1,), (0,)), left=1)
        assert a == b
        assert hash(a) == hash(b)
        assert a < c

    def test_str_rendering(self):
        s = LocalState((("left",), ("self",)), left=1)
        assert str(s) == "⟨left self⟩"


class TestSpaceEnumeration:
    def test_state_count_unidirectional(self):
        assert len(unidirectional_space(domain=3)) == 9

    def test_state_count_bidirectional(self):
        assert len(bidirectional_space()) == 27  # Figure 1's 27 vertices

    def test_index_roundtrip(self):
        space = unidirectional_space(domain=3)
        for i, state in enumerate(space.states):
            assert space.index(state) == i

    def test_state_of_validates_width(self):
        space = unidirectional_space()
        with pytest.raises(ProtocolDefinitionError):
            space.state_of(0)

    def test_state_of_validates_domain(self):
        space = unidirectional_space()
        with pytest.raises(DomainError):
            space.state_of(0, 7)

    def test_multi_variable_cells(self):
        a, b = ranged("a", 2), ranged("b", 3)
        space = ProcessTemplate(variables=(a, b)).local_space()
        assert len(space.cells) == 6
        assert len(space) == 36


class TestContinuation:
    def test_unidirectional_rule(self):
        space = unidirectional_space()
        # candidate continues state iff state.own == candidate.cell(-1)
        assert space.continues(space.state_of(0, 1), space.state_of(1, 0))
        assert space.continues(space.state_of(0, 1), space.state_of(1, 1))
        assert not space.continues(space.state_of(0, 1),
                                   space.state_of(0, 1))

    def test_bidirectional_rule(self):
        space = bidirectional_space()
        s = space.state_of("left", "self", "right")
        # continuation must carry (own, right) -> (left', own').
        good = space.state_of("self", "right", "left")
        bad = space.state_of("self", "left", "left")
        assert space.continues(s, good)
        assert not space.continues(s, bad)

    def test_right_continuation_counts(self):
        # Unidirectional binary: each state has |domain| continuations.
        space = unidirectional_space()
        for state in space:
            assert len(space.right_continuations(state)) == 2

    def test_bidirectional_continuation_counts(self):
        space = bidirectional_space()
        for state in space:
            assert len(space.right_continuations(state)) == 3


class TestTransitions:
    def test_deadlocks_without_actions(self):
        space = unidirectional_space()
        assert space.deadlocks() == space.states
        assert space.transitions == ()

    def test_transitions_only_write_own_cell(self):
        x = ranged("x", 2)
        action = parse_action("x[0] == 0 -> x := 1", [x])
        space = unidirectional_space(actions=(action,))
        for t in space.transitions:
            assert t.source.cell(-1) == t.target.cell(-1)
            assert t.source.own != t.target.own

    def test_duplicate_state_changes_merge_labels(self):
        x = ranged("x", 2)
        a1 = parse_action("x[0] == 0 -> x := 1", [x], name="first")
        a2 = parse_action("x[-1] == x[-1] and x[0] == 0 -> x := 1", [x],
                          name="second")
        space = unidirectional_space(actions=(a1, a2))
        # Same state change from both actions: merged, labels joined.
        assert len(space.transitions) == 2  # sources 00 and 10
        for t in space.transitions:
            assert t.label == "first+second"

    def test_enablement_queries(self):
        x = ranged("x", 2)
        action = parse_action("x[-1] == 1 and x[0] == 0 -> x := 1", [x])
        space = unidirectional_space(actions=(action,))
        assert space.is_enabled(space.state_of(1, 0))
        assert space.is_deadlock(space.state_of(0, 0))

    def test_partition(self):
        space = unidirectional_space()
        good, bad = space.partition(lambda v: v[0] == v[-1])
        assert {str(s) for s in good} == {"⟨0 0⟩", "⟨1 1⟩"}
        assert len(bad) == 2
