"""Process templates and ring protocols."""

import pytest

from repro.errors import ProtocolDefinitionError
from repro.protocol.dsl import parse_action
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged


X = ranged("x", 2)


class TestProcessTemplate:
    def test_defaults_are_unidirectional(self):
        p = ProcessTemplate(variables=(X,))
        assert p.unidirectional
        assert list(p.window_offsets) == [-1, 0]
        assert p.window_width == 2

    def test_bidirectional_window(self):
        p = ProcessTemplate(variables=(X,), reads_left=1, reads_right=1)
        assert not p.unidirectional
        assert list(p.window_offsets) == [-1, 0, 1]

    def test_wider_windows_supported(self):
        p = ProcessTemplate(variables=(X,), reads_left=2, reads_right=0)
        assert p.window_width == 3

    def test_requires_a_variable(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessTemplate(variables=())

    def test_rejects_duplicate_variable_names(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessTemplate(variables=(X, ranged("x", 3)))

    def test_rejects_isolated_process(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessTemplate(variables=(X,), reads_left=0, reads_right=0)

    def test_rejects_negative_window(self):
        with pytest.raises(ProtocolDefinitionError):
            ProcessTemplate(variables=(X,), reads_left=-1)

    def test_with_actions_replaces(self):
        a = parse_action("x[0] == 0 -> x := 1", [X], name="a")
        b = parse_action("x[0] == 1 -> x := 0", [X], name="b")
        p = ProcessTemplate(variables=(X,), actions=(a,))
        q = p.with_actions((b,))
        assert [ac.name for ac in q.actions] == ["b"]
        assert [ac.name for ac in p.actions] == ["a"]

    def test_extended_with_appends(self):
        a = parse_action("x[0] == 0 -> x := 1", [X], name="a")
        b = parse_action("x[0] == 1 -> x := 0", [X], name="b")
        p = ProcessTemplate(variables=(X,), actions=(a,))
        q = p.extended_with((b,))
        assert [ac.name for ac in q.actions] == ["a", "b"]


class TestRingProtocol:
    def test_legitimacy_from_dsl(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         "x[0] == x[-1]")
        space = p.space
        assert p.is_legitimate(space.state_of(0, 0))
        assert not p.is_legitimate(space.state_of(0, 1))
        assert len(p.legitimate_states()) == 2
        assert len(p.illegitimate_states()) == 2

    def test_legitimacy_from_callable(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         lambda view: view[0] == 1)
        assert sum(p.is_legitimate(s) for s in p.space) == 2

    def test_invalid_legitimacy_type(self):
        with pytest.raises(ProtocolDefinitionError):
            RingProtocol("t", ProcessTemplate(variables=(X,)), 42)

    def test_space_is_cached(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         "x[0] == x[-1]")
        assert p.space is p.space

    def test_instantiate_rejects_degenerate_sizes(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         "x[0] == x[-1]")
        with pytest.raises(ProtocolDefinitionError):
            p.instantiate(1)
        assert p.instantiate(2).size == 2

    def test_extended_with_preserves_legitimacy(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         "x[0] == x[-1]")
        extra = parse_action("x[0] != x[-1] -> x := x[-1]", [X], name="fix")
        q = p.extended_with((extra,))
        assert q.name == "t_ss"
        assert len(q.process.actions) == 1
        assert q.is_legitimate(q.space.state_of(1, 1))

    def test_pretty_listing(self):
        p = RingProtocol("t", ProcessTemplate(variables=(X,)),
                         "x[0] == x[-1]")
        text = p.pretty()
        assert "protocol t" in text
        assert "unidirectional" in text
        assert "x[0] == x[-1]" in text
