"""Multi-variable processes: the model beyond single-variable examples.

The paper's formalism allows several owned variables per process; these
tests exercise that path end-to-end — local states over composite cells,
DSL actions reading/writing both variables, continuation, deadlock
analysis and global instantiation.
"""

import pytest

from repro.core import analyze_deadlocks, verify_convergence
from repro.checker import check_instance
from repro.protocol.dsl import parse_actions
from repro.protocol.localstate import LocalView
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import boolean, ranged


@pytest.fixture
def two_var_protocol() -> RingProtocol:
    """Each process owns a value ``v`` and a done-flag ``f``; legitimacy
    asks the value to copy the predecessor *and* the flag to be set.
    Recovery: copy upward (a single direction, like the §6.2 agreement
    solution — copying both ways would livelock), then raise the flag."""
    v, f = ranged("v", 2), boolean("f")
    actions = parse_actions([
        ("copy", "v[0] < v[-1] -> v := v[-1], f := 0"),
        ("raise", "v[0] == v[-1] and f[0] == 0 -> f := 1"),
    ], [v, f])
    process = ProcessTemplate(variables=(v, f), actions=actions)
    return RingProtocol(
        "copy-flag", process, "v[0] == v[-1] and f[0] == 1")


def test_cells_are_composite(two_var_protocol):
    space = two_var_protocol.space
    assert len(space.cells) == 4
    assert len(space) == 16


def test_view_access_by_name(two_var_protocol):
    space = two_var_protocol.space
    state = space.state_of((0, 1), (1, 0))
    view = space.view(state)
    assert view.get("v", -1) == 0
    assert view.get("f", -1) == 1
    assert view.get("v") == 1
    assert view.get("f", 0) == 0
    with pytest.raises(Exception):
        view[0]  # single-var shorthand is invalid here


def test_atomic_multi_assignment(two_var_protocol):
    space = two_var_protocol.space
    # copy fires when the value lags the predecessor and clears the flag
    # in the same atomic step
    state = space.state_of((1, 1), (0, 1))
    targets = {t.target for t in space.transitions if t.source == state}
    assert space.state_of((1, 1), (1, 0)) in targets


def test_deadlock_analysis_handles_composite_cells(two_var_protocol):
    report = analyze_deadlocks(two_var_protocol)
    # deadlocks: value equal and flag set (legitimate) only
    assert report.deadlock_free, [str(s) for s in
                                  report.illegitimate_deadlocks]


def test_not_self_disabling_but_deadlock_exact(two_var_protocol):
    """copy leads into raise-enabled states, so Assumption 2 fails;
    the deadlock side is exact regardless, and the self-disabling
    transformation repairs the protocol for the livelock side."""
    from repro.core import make_self_disabling, is_self_disabling

    assert not is_self_disabling(two_var_protocol.space)
    repaired = make_self_disabling(two_var_protocol)
    assert is_self_disabling(repaired.space)
    report = verify_convergence(repaired)
    assert report.verdict.value == "converges"


@pytest.mark.parametrize("size", [3, 5])
def test_global_stabilization(two_var_protocol, size):
    """Even without Assumption 2 the instance stabilizes (check
    globally) — and the transformed variant too."""
    report = check_instance(two_var_protocol.instantiate(size))
    assert report.self_stabilizing
