"""Concrete ring instances: projections, moves, invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProtocolDefinitionError
from repro.protocol.dsl import parse_action
from repro.protocol.process import ProcessTemplate
from repro.protocol.ring import RingProtocol
from repro.protocol.variables import ranged
from repro.protocols import generalizable_matching, stabilizing_agreement


def agreement_ss():
    return stabilizing_agreement()


class TestProjections:
    def test_local_state_wraps_around(self):
        p = agreement_ss()
        instance = p.instantiate(4)
        state = instance.state_of(0, 1, 0, 1)
        assert instance.local_state(state, 0) == p.space.state_of(1, 0)
        assert instance.local_state(state, 3) == p.space.state_of(0, 1)

    def test_bidirectional_projection(self):
        p = generalizable_matching()
        instance = p.instantiate(3)
        state = instance.state_of("left", "right", "self")
        local = instance.local_state(state, 0)
        assert local == p.space.state_of("self", "left", "right")

    def test_local_states_cover_all_positions(self):
        p = agreement_ss()
        instance = p.instantiate(5)
        state = instance.state_of(0, 0, 1, 1, 0)
        locals_ = instance.local_states(state)
        assert len(locals_) == 5
        assert locals_[2] == p.space.state_of(0, 1)


class TestMoves:
    def test_enabled_moves_match_local_transitions(self):
        p = agreement_ss()
        instance = p.instantiate(4)
        state = instance.state_of(1, 0, 0, 0)
        moves = instance.moves(state)
        # Only process 1 sees x[-1]=1, x[0]=0.
        assert [m.process for m in moves] == [1]
        assert moves[0].target == instance.state_of(1, 1, 0, 0)

    def test_moves_of_single_process(self):
        p = agreement_ss()
        instance = p.instantiate(4)
        state = instance.state_of(1, 0, 1, 0)
        assert len(instance.moves_of(state, 1)) == 1
        assert instance.moves_of(state, 0) == []

    def test_deadlock_detection(self):
        p = agreement_ss()
        instance = p.instantiate(3)
        assert instance.is_deadlock(instance.uniform_state(0))
        assert not instance.is_deadlock(instance.state_of(1, 0, 1))

    def test_successors_deduplicate(self):
        x = ranged("x", 2)
        # Two actions with the same effect from the same states.
        a = parse_action("x[0] == 0 -> x := 1", [x], name="a")
        b = parse_action("x[0] == 0 -> x := 1", [x], name="b")
        p = RingProtocol("dup", ProcessTemplate(variables=(x,),
                                                actions=(a, b)),
                         "x[0] == x[-1]")
        instance = p.instantiate(2)
        succ = instance.successors(instance.state_of(0, 1))
        assert len(succ) == len(set(succ))


class TestInvariant:
    def test_invariant_holds(self):
        p = agreement_ss()
        instance = p.instantiate(4)
        assert instance.invariant_holds(instance.uniform_state(1))
        assert not instance.invariant_holds(instance.state_of(1, 0, 1, 0))

    def test_corrupted_processes(self):
        p = agreement_ss()
        instance = p.instantiate(4)
        state = instance.state_of(0, 0, 1, 0)
        assert instance.corrupted_processes(state) == [2, 3]

    def test_invariant_states_of_agreement(self):
        instance = agreement_ss().instantiate(5)
        assert sorted(instance.invariant_states()) == [
            instance.uniform_state(0), instance.uniform_state(1)]


class TestValidation:
    def test_state_of_wrong_arity(self):
        instance = agreement_ss().instantiate(3)
        with pytest.raises(ProtocolDefinitionError):
            instance.state_of(0, 1)

    def test_state_count(self):
        assert agreement_ss().instantiate(6).state_count == 64
        assert generalizable_matching().instantiate(4).state_count == 81

    def test_format_state(self):
        instance = generalizable_matching().instantiate(3)
        text = instance.format_state(
            instance.state_of("left", "right", "self"))
        assert text == "(l r s)"


@given(st.integers(2, 6), st.data())
@settings(max_examples=50, deadline=None)
def test_property_moves_agree_with_local_semantics(size, data):
    """Every global move corresponds to an enabled local transition and
    vice versa — the grouping g(δ_r) of Section 2.1."""
    p = agreement_ss()
    instance = p.instantiate(size)
    cells = p.space.cells
    state = tuple(
        data.draw(st.sampled_from(cells), label=f"cell{i}")
        for i in range(size))
    moves = instance.moves(state)
    for r in range(size):
        local = instance.local_state(state, r)
        local_targets = {
            t.target.own
            for t in p.space.transitions if t.source == local}
        move_targets = {m.target[r] for m in moves if m.process == r}
        assert move_targets == local_targets
