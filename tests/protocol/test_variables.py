"""Variable declaration and validation."""

import pytest

from repro.errors import ProtocolDefinitionError
from repro.protocol.variables import Variable, boolean, ranged


def test_basic_variable():
    m = Variable("m", ("left", "right", "self"))
    assert m.name == "m"
    assert m.domain == ("left", "right", "self")
    assert "left" in m
    assert "up" not in m
    assert m.index("right") == 1


def test_domain_coerced_to_tuple():
    v = Variable("v", [0, 1, 2])
    assert isinstance(v.domain, tuple)


def test_invalid_identifier_rejected():
    with pytest.raises(ProtocolDefinitionError):
        Variable("not a name", (0, 1))


def test_empty_domain_rejected():
    with pytest.raises(ProtocolDefinitionError):
        Variable("x", ())


def test_duplicate_domain_values_rejected():
    with pytest.raises(ProtocolDefinitionError):
        Variable("x", (0, 0, 1))


def test_index_of_missing_value_raises():
    with pytest.raises(ProtocolDefinitionError):
        Variable("x", (0, 1)).index(7)


def test_boolean_shorthand():
    b = boolean("flag")
    assert b.domain == (0, 1)


def test_ranged_shorthand():
    r = ranged("x", 4)
    assert r.domain == (0, 1, 2, 3)


def test_ranged_requires_positive_size():
    with pytest.raises(ProtocolDefinitionError):
        ranged("x", 0)


def test_variables_are_hashable_and_equal_by_value():
    assert Variable("x", (0, 1)) == Variable("x", (0, 1))
    assert hash(Variable("x", (0, 1))) == hash(Variable("x", (0, 1)))
    assert Variable("x", (0, 1)) != Variable("x", (0, 1, 2))
