"""The safe expression compiler: semantics and sandboxing."""

import pytest

from repro.errors import DslNameError, DslSyntaxError
from repro.protocol.expr import compile_expression, compile_predicate
from repro.protocol.localstate import LocalState, LocalView
from repro.protocol.variables import Variable, ranged


def view_for(values: dict[int, object], var: Variable,
             left: int = 1) -> LocalView:
    width = len(values)
    cells = tuple((values[o],) for o in sorted(values))
    state = LocalState(cells, left)
    return LocalView(state, {var.name: 0})


X = ranged("x", 3)


def test_arithmetic_and_offsets():
    f = compile_expression("(x[0] + x[-1]) % 3", [X])
    assert f(view_for({-1: 2, 0: 2}, X)) == 1


def test_comparisons_and_booleans():
    p = compile_predicate("x[-1] == 1 and not x[0] != 0", [X])
    assert p(view_for({-1: 1, 0: 0}, X)) is True
    assert p(view_for({-1: 1, 0: 2}, X)) is False


def test_string_literals():
    m = Variable("m", ("left", "right", "self"))
    p = compile_predicate("m[0] == 'left' or m[0] == 'self'", [m])
    assert p(view_for({-1: "right", 0: "left"}, m))
    assert not p(view_for({-1: "right", 0: "right"}, m))


def test_conditional_expression():
    f = compile_expression("1 if x[0] == 0 else 2", [X])
    assert f(view_for({-1: 0, 0: 0}, X)) == 1
    assert f(view_for({-1: 0, 0: 1}, X)) == 2


def test_unary_minus_and_subtraction():
    f = compile_expression("x[0] - x[-1]", [X])
    assert f(view_for({-1: 2, 0: 0}, X)) == -2


def test_unknown_variable_rejected_at_compile_time():
    with pytest.raises(DslNameError):
        compile_expression("y[0] + 1", [X])


def test_unsubscripted_variable_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("x + 1", [X])


def test_function_calls_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("abs(x[0])", [X])


def test_attribute_access_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("x[0].__class__", [X])


def test_import_like_tricks_rejected():
    with pytest.raises(DslNameError):
        compile_expression("__import__", [X])
    with pytest.raises(DslSyntaxError):
        compile_expression("[c for c in x]", [X])


def test_float_literals_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("x[0] + 1.5", [X])


def test_empty_expression_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("   ", [X])


def test_unparsable_expression_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("x[0] ===", [X])


def test_non_integer_offset_rejected_at_runtime():
    f = compile_expression("x['a']", [X])
    with pytest.raises(DslSyntaxError):
        f(view_for({-1: 0, 0: 0}, X))


def test_source_text_preserved():
    f = compile_expression("  x[0] + 1 ", [X])
    assert f.source_text == "x[0] + 1"


def test_power_operator_rejected():
    with pytest.raises(DslSyntaxError):
        compile_expression("x[0] ** 2", [X])
