"""Internals of the fixed-K global synthesizer."""

from repro.checker import GlobalSynthesizer
from repro.checker.synthesis import GlobalSynthesizer as GS
from repro.protocols import agreement, livelock_agreement


def test_candidates_from_illegitimate_state():
    protocol = agreement()
    synthesizer = GlobalSynthesizer(protocol, ring_size=3, seed=0)
    state = protocol.space.state_of(0, 1)
    options = synthesizer.candidates_from(state)
    assert len(options) == 1  # binary: one alternative value
    assert options[0].source == state
    assert options[0].target == protocol.space.state_of(0, 0)


def test_transitions_along_recovers_livelock_steps():
    protocol = livelock_agreement()
    instance = protocol.instantiate(4)
    cycle = [instance.state_of(*map(int, s)) for s in
             ("1000", "1100", "0100", "0110",
              "0111", "0011", "1011", "1001")]
    used = GS._transitions_along(instance, cycle)
    # δ_r has exactly two local transitions and the livelock uses both
    assert len(used) == 2
    sources = {t.source for t in used}
    assert sources == {protocol.space.state_of(1, 0),
                       protocol.space.state_of(0, 1)}


def test_expansion_budget_limits_search():
    synthesizer = GlobalSynthesizer(agreement(), ring_size=4,
                                    max_expansions=1)
    result = synthesizer.synthesize()
    # One expansion only inspects the empty set (which deadlocks).
    assert not result.success
    assert result.expansions >= 1


def test_result_summary_lists_added_transitions():
    result = GlobalSynthesizer(agreement(), ring_size=3).synthesize()
    assert result.success
    text = result.summary()
    assert "success" in text
    assert "K=3" in text
    assert "+" in text
