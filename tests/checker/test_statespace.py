"""The explicit global state graph."""

from repro.checker import StateGraph
from repro.protocols import stabilizing_agreement, livelock_agreement


def test_state_interning_and_counts():
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance)
    assert len(graph) == 8
    assert len(graph.invariant_indices) == 2
    for state, index in graph.index.items():
        assert graph.states[index] == state


def test_successor_lists_match_instance():
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance)
    for i, state in enumerate(graph.states):
        expected = {graph.index[t] for t in instance.successors(state)}
        assert set(graph.successors[i]) == expected


def test_deadlock_indices():
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance)
    deadlocks = {graph.states[i] for i in graph.deadlock_indices()}
    assert deadlocks == {instance.uniform_state(0),
                         instance.uniform_state(1)}


def test_predecessors_map_inverts_successors():
    instance = livelock_agreement().instantiate(3)
    graph = StateGraph(instance)
    reverse = graph.predecessors_map()
    for source, targets in enumerate(graph.successors):
        for target in targets:
            assert source in reverse[target]


def test_restricted_digraph_drops_outside_edges():
    instance = livelock_agreement().instantiate(3)
    graph = StateGraph(instance)
    outside = [i for i, inside in enumerate(graph.in_invariant)
               if not inside]
    sub = graph.restricted_digraph(outside)
    assert set(sub.nodes) == set(outside)
    for u, v, _k in sub.edges():
        assert u in outside and v in outside


def test_distances_to_invariant():
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance)
    distances = graph.distances_to_invariant()
    for i, distance in enumerate(distances):
        if graph.in_invariant[i]:
            assert distance == 0
        else:
            assert distance is not None and distance >= 1
    # (1 1 0): one copy by process 2 reaches all-ones.
    assert distances[graph.index[instance.state_of(1, 1, 0)]] == 1
    # (1 0 0): two copies are needed.
    assert distances[graph.index[instance.state_of(1, 0, 0)]] == 2
