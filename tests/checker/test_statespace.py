"""The explicit global state graph (both backends)."""

import pytest

from repro.checker import StateGraph
from repro.protocols import stabilizing_agreement, livelock_agreement

pytestmark = pytest.mark.parametrize("backend", ["kernel", "naive"])


def test_state_interning_and_counts(backend):
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    assert graph.backend == backend
    assert len(graph) == 8
    assert len(graph.invariant_indices) == 2
    for state, index in graph.index.items():
        assert graph.states[index] == state


def test_successor_lists_match_instance(backend):
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    for i, state in enumerate(graph.states):
        expected = {graph.index[t] for t in instance.successors(state)}
        assert set(graph.successors[i]) == expected


def test_deadlock_indices(backend):
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    deadlocks = {graph.states[i] for i in graph.deadlock_indices()}
    assert deadlocks == {instance.uniform_state(0),
                         instance.uniform_state(1)}


def test_predecessors_map_inverts_successors(backend):
    instance = livelock_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    reverse = graph.predecessors_map()
    for source, targets in enumerate(graph.successors):
        for target in targets:
            assert source in reverse[target]
    # The reverse adjacency is computed once and cached.
    assert graph.predecessors_map() is reverse


def test_restricted_digraph_drops_outside_edges(backend):
    instance = livelock_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    outside = [i for i, inside in enumerate(graph.in_invariant)
               if not inside]
    sub = graph.restricted_digraph(outside)
    assert set(sub.nodes) == set(outside)
    for u, v, _k in sub.edges():
        assert u in outside and v in outside


def test_distances_to_invariant(backend):
    instance = stabilizing_agreement().instantiate(3)
    graph = StateGraph(instance, backend=backend)
    distances = graph.distances_to_invariant()
    for i, distance in enumerate(distances):
        if graph.in_invariant[i]:
            assert distance == 0
        else:
            assert distance is not None and distance >= 1
    # (1 1 0): one copy by process 2 reaches all-ones.
    assert distances[graph.index[instance.state_of(1, 1, 0)]] == 1
    # (1 0 0): two copies are needed.
    assert distances[graph.index[instance.state_of(1, 0, 0)]] == 2
