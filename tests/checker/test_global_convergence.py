"""Global model checking of the case studies at fixed sizes."""

import pytest

from repro.checker import StateGraph, check_instance, is_closed
from repro.checker.deadlock import (
    illegitimate_deadlocks,
    legitimate_deadlocks,
)
from repro.checker.livelock import has_livelock, livelock_cycles
from repro.protocols import (
    DijkstraTokenRing,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)


class TestStabilizingProtocols:
    @pytest.mark.parametrize("factory,size", [
        (stabilizing_agreement, 4),
        (stabilizing_agreement, 7),
        (stabilizing_sum_not_two, 4),
        (stabilizing_sum_not_two, 6),
        (generalizable_matching, 5),
        (generalizable_matching, 7),
    ])
    def test_self_stabilizing(self, factory, size):
        report = check_instance(factory().instantiate(size))
        assert report.closed
        assert report.strongly_converging
        assert report.weakly_converging
        assert report.self_stabilizing
        assert report.worst_case_recovery_steps is not None

    def test_matching_is_silent_inside_i(self):
        """Matching fixpoints are legitimate: deadlocks inside I only."""
        graph = StateGraph(generalizable_matching().instantiate(5))
        assert illegitimate_deadlocks(graph) == []
        assert len(legitimate_deadlocks(graph)) > 0


class TestBrokenProtocols:
    def test_example43_deadlocks_at_k6(self):
        report = check_instance(nongeneralizable_matching().instantiate(6))
        assert report.deadlocks_outside
        assert not report.strongly_converging
        # every reported deadlock is genuinely stuck and illegitimate
        instance = nongeneralizable_matching().instantiate(6)
        for state in report.deadlocks_outside:
            assert instance.is_deadlock(state)
            assert not instance.invariant_holds(state)

    def test_example43_clean_at_its_design_size(self):
        report = check_instance(nongeneralizable_matching().instantiate(5))
        assert report.self_stabilizing

    def test_livelock_agreement_cycles_at_k4(self):
        """Example 5.2's livelock: an 8-state cycle entirely outside I."""
        instance = livelock_agreement().instantiate(4)
        graph = StateGraph(instance)
        assert has_livelock(graph)
        cycles = livelock_cycles(graph)
        assert cycles
        for cycle in cycles:
            assert all(not instance.invariant_holds(s) for s in cycle)
            # cycle transitions are real moves
            for i, state in enumerate(cycle):
                nxt = cycle[(i + 1) % len(cycle)]
                assert nxt in instance.successors(state)

    @pytest.mark.parametrize("size", [3, 5])
    def test_livelock_agreement_cycles_at_every_size(self, size):
        """Two-direction copying livelocks at every K >= 3: a corrupted
        boundary pair can rotate around the ring forever."""
        report = check_instance(livelock_agreement().instantiate(size))
        assert report.livelock_cycles

    def test_gouda_acharya_livelocks_at_k5(self):
        report = check_instance(gouda_acharya_matching().instantiate(5))
        assert report.livelock_cycles
        assert not report.strongly_converging

    def test_weak_but_not_strong_convergence_detectable(self):
        instance = livelock_agreement().instantiate(4)
        report = check_instance(instance)
        assert not report.strongly_converging
        assert report.weakly_converging  # a path to I always exists


class TestTokenRing:
    @pytest.mark.parametrize("size", [2, 3, 4])
    def test_dijkstra_self_stabilizes_with_enough_values(self, size):
        report = check_instance(DijkstraTokenRing(size))
        assert report.self_stabilizing

    def test_dijkstra_never_deadlocks(self):
        ring = DijkstraTokenRing(3, values=2)
        for state in ring.states():
            assert not ring.is_deadlock(state)

    def test_dijkstra_with_too_few_values_livelocks(self):
        report = check_instance(DijkstraTokenRing(4, values=2))
        assert not report.strongly_converging
        assert report.livelock_cycles

    def test_invariant_is_exactly_one_token(self):
        ring = DijkstraTokenRing(3)
        assert ring.invariant_holds((0, 0, 0))  # root privileged only
        assert not ring.invariant_holds((0, 1, 0))

    def test_closure_of_token_ring(self):
        graph = StateGraph(DijkstraTokenRing(4))
        assert is_closed(graph)
