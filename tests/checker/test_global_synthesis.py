"""The fixed-K global synthesizer baseline (STSyn stand-in)."""

import pytest

from repro.checker import GlobalSynthesizer, check_instance
from repro.core import analyze_deadlocks
from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import agreement, sum_not_two, two_coloring


class TestAgreementSynthesis:
    def test_synthesizes_at_k4(self):
        result = GlobalSynthesizer(agreement(), ring_size=4).synthesize()
        assert result.success
        report = check_instance(result.protocol.instantiate(4))
        assert report.self_stabilizing

    def test_added_transitions_fire_outside_lc_only(self):
        protocol = agreement()
        result = GlobalSynthesizer(protocol, ring_size=4).synthesize()
        for transition in result.added:
            assert not protocol.is_legitimate(transition.source)

    def test_different_seeds_may_find_different_solutions(self):
        solutions = set()
        for seed in range(4):
            result = GlobalSynthesizer(agreement(), ring_size=3,
                                       seed=seed).synthesize()
            assert result.success
            solutions.add(result.added)
        assert len(solutions) >= 1  # deterministic per seed
        # determinism: same seed twice gives the same answer
        again = GlobalSynthesizer(agreement(), ring_size=3,
                                  seed=0).synthesize()
        first = GlobalSynthesizer(agreement(), ring_size=3,
                                  seed=0).synthesize()
        assert again.added == first.added


class TestSumNotTwoSynthesis:
    def test_synthesizes_at_k4(self):
        result = GlobalSynthesizer(sum_not_two(), ring_size=4,
                                   max_expansions=5000).synthesize()
        assert result.success
        report = check_instance(result.protocol.instantiate(4))
        assert report.self_stabilizing


class TestNonGeneralizability:
    """The phenomenon behind Example 4.3: a fixed-K solution may fail at
    other sizes — and the local analysis flags it instantly."""

    def test_fixed_k_matching_solutions_fail_at_k6(self):
        """Like STSyn's Example 4.3: synthesize matching at K=5, observe
        deadlocks at K=6 — and Theorem 4.2 flags it locally."""
        from repro.protocols import matching_base

        found_non_generalizable = False
        for seed in range(3):
            result = GlobalSynthesizer(matching_base(), ring_size=5,
                                       seed=seed,
                                       max_expansions=3000).synthesize()
            assert result.success
            assert check_instance(
                result.protocol.instantiate(5)).self_stabilizing
            report = check_instance(result.protocol.instantiate(6))
            if report.deadlocks_outside:
                found_non_generalizable = True
                local = analyze_deadlocks(result.protocol)
                assert not local.deadlock_free
                analyzer = DeadlockAnalyzer(result.protocol)
                assert 6 in analyzer.deadlocked_ring_sizes(6)
        assert found_non_generalizable

    def test_failure_reported_not_raised(self):
        # An impossible instance: 2-coloring on an odd ring.
        result = GlobalSynthesizer(two_coloring(), ring_size=3,
                                   max_expansions=300).synthesize()
        assert not result.success
        assert result.protocol is None
        assert "failure" in result.summary()
