"""The cutoff-style sweep baseline."""

import pytest

from repro.checker.sweep import sweep_verify
from repro.protocols import (
    nongeneralizable_matching,
    stabilizing_agreement,
)


def test_sweep_of_stabilizing_protocol():
    result = sweep_verify(stabilizing_agreement(), up_to=6)
    assert result.sizes == (2, 3, 4, 5, 6)
    assert result.all_self_stabilizing
    assert result.failing_sizes == ()
    assert result.total_states_explored == 4 + 8 + 16 + 32 + 64
    assert "self-stabilizing throughout" in result.summary()


def test_sweep_finds_example43_failures():
    result = sweep_verify(nongeneralizable_matching(), up_to=7)
    assert result.failing_sizes == (4, 6, 7)
    assert not result.all_self_stabilizing
    assert "fails at K = [4, 6, 7]" in result.summary()


def test_stop_on_failure_truncates():
    result = sweep_verify(nongeneralizable_matching(), up_to=8,
                          stop_on_failure=True)
    assert result.sizes == (3, 4)  # window width .. first failure
    assert result.failing_sizes == (4,)


def test_custom_start():
    result = sweep_verify(stabilizing_agreement(), up_to=4, start=3)
    assert result.sizes == (3, 4)


def test_empty_range_rejected():
    with pytest.raises(ValueError):
        sweep_verify(stabilizing_agreement(), up_to=1)


def test_timings_recorded():
    result = sweep_verify(stabilizing_agreement(), up_to=4)
    assert len(result.elapsed_seconds) == len(result.reports)
    assert all(t >= 0 for t in result.elapsed_seconds)
