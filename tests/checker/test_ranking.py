"""Ranking-function extraction and certificate checking."""

import pytest

from repro.checker import StateGraph
from repro.checker.ranking import (
    RankingCertificate,
    compute_ranking,
    verify_ranking,
)
from repro.protocols import (
    DijkstraTokenRing,
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)
from repro.simulation import AdversarialScheduler, run


@pytest.mark.parametrize("factory,size", [
    (stabilizing_agreement, 5),
    (stabilizing_sum_not_two, 4),
    (lambda: DijkstraTokenRing(3), None),
])
def test_convergent_instances_have_valid_rankings(factory, size):
    protocol = factory()
    instance = protocol.instantiate(size) if size else protocol
    graph = StateGraph(instance)
    certificate = compute_ranking(graph)
    assert certificate is not None
    assert verify_ranking(graph, certificate.ranks)
    assert certificate.max_rank >= 1


def test_livelocking_instance_has_no_ranking():
    graph = StateGraph(livelock_agreement().instantiate(4))
    assert compute_ranking(graph) is None


def test_deadlocking_instance_has_no_ranking():
    graph = StateGraph(nongeneralizable_matching().instantiate(4))
    assert compute_ranking(graph) is None


def test_max_rank_bounds_adversarial_recovery():
    """ρ's maximum is the worst-daemon recovery time: no adversarial run
    may take longer."""
    protocol = stabilizing_agreement()
    instance = protocol.instantiate(6)
    graph = StateGraph(instance)
    certificate = compute_ranking(graph)
    for seed in range(20):
        start = graph.states[(seed * 7) % len(graph)]
        trace = run(instance, start,
                    AdversarialScheduler(instance, seed=seed),
                    max_steps=certificate.max_rank + 1)
        assert trace.converged
        assert trace.recovery_steps <= certificate.max_rank


def test_rank_decreases_along_every_move():
    protocol = stabilizing_sum_not_two()
    instance = protocol.instantiate(4)
    graph = StateGraph(instance)
    certificate = compute_ranking(graph)
    for state in graph.states:
        if instance.invariant_holds(state):
            assert certificate.rank_of(state) == 0
            continue
        for successor in instance.successors(state):
            if not instance.invariant_holds(successor):
                assert certificate.rank_of(successor) < \
                    certificate.rank_of(state)


def test_layers_histogram():
    graph = StateGraph(stabilizing_agreement().instantiate(3))
    certificate = compute_ranking(graph)
    layers = certificate.layers()
    assert layers[0] == 2  # the two uniform states
    assert sum(layers.values()) == len(graph)
    assert list(layers) == sorted(layers)


class TestVerifyRanking:
    def test_rejects_wrong_length(self):
        graph = StateGraph(stabilizing_agreement().instantiate(3))
        assert not verify_ranking(graph, (0,))

    def test_rejects_nonzero_invariant_rank(self):
        graph = StateGraph(stabilizing_agreement().instantiate(3))
        certificate = compute_ranking(graph)
        tampered = list(certificate.ranks)
        tampered[graph.invariant_indices[0]] = 5
        assert not verify_ranking(graph, tampered)

    def test_rejects_non_decreasing_step(self):
        graph = StateGraph(stabilizing_agreement().instantiate(3))
        certificate = compute_ranking(graph)
        tampered = [r if r == 0 else certificate.max_rank + 1
                    for r in certificate.ranks]
        # constant positive rank outside I cannot strictly decrease
        assert not verify_ranking(graph, tampered)

    def test_accepts_any_valid_alternative(self):
        """Doubling a valid ranking keeps strict decrease."""
        graph = StateGraph(stabilizing_agreement().instantiate(3))
        certificate = compute_ranking(graph)
        doubled = [2 * r for r in certificate.ranks]
        assert verify_ranking(graph, doubled)
