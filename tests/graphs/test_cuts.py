"""Bad-path detection and minimal path cuts."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph
from repro.graphs.cuts import has_bad_path, minimal_path_cuts

edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    max_size=15,
)


def build(edges) -> Digraph:
    g = Digraph(nodes=range(6))
    for u, v in edges:
        g.add_edge(u, v)
    return g


class TestHasBadPath:
    def test_direct_path(self):
        g = build([(0, 1), (1, 2)])
        assert has_bad_path(g, [0], [2], [1])

    def test_bad_vertex_off_path(self):
        g = build([(0, 1), (1, 2)])
        assert not has_bad_path(g, [0], [2], [3])

    def test_bad_vertex_as_source_and_target(self):
        g = build([])
        assert has_bad_path(g, [0], [0], [0])  # zero-length path

    def test_removed_vertex_blocks(self):
        g = build([(0, 1), (1, 2)])
        assert not has_bad_path(g, [0], [2], [1], removed=[1])
        assert not has_bad_path(g, [0], [2], [1], removed=[0])

    def test_alternative_route_survives(self):
        g = build([(0, 1), (1, 2), (0, 3), (3, 2)])
        assert has_bad_path(g, [0], [2], [1, 3], removed=[1])

    def test_bad_before_or_after(self):
        # bad vertex must be reachable from a source AND reach a target
        g = build([(0, 1), (2, 3)])
        assert not has_bad_path(g, [0], [3], [1])  # 1 can't reach 3
        assert not has_bad_path(g, [0], [3], [2])  # 2 unreachable from 0


class TestMinimalPathCuts:
    def test_single_chokepoint(self):
        g = build([(0, 1), (1, 2)])
        cuts = list(minimal_path_cuts(g, [0], [2], [1]))
        assert frozenset({1}) in cuts
        assert all(len(c) == 1 for c in cuts)

    def test_no_bad_path_gives_empty_cut(self):
        g = build([(0, 1)])
        assert list(minimal_path_cuts(g, [0], [1], [5])) == [frozenset()]

    def test_allowed_restriction(self):
        g = build([(0, 1), (1, 2)])
        cuts = list(minimal_path_cuts(g, [0], [2], [1], allowed=[1]))
        assert cuts == [frozenset({1})]
        # cutting is impossible when the only chokepoints are forbidden
        none = list(minimal_path_cuts(g, [0], [2], [0, 1, 2],
                                      allowed=[4]))
        assert none == []

    @given(edge_lists, st.sets(st.integers(0, 5)))
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, edges, bad):
        g = build(edges)
        sources, targets = {0}, {5}
        pool = sorted(bad)
        valid = [
            frozenset(c)
            for size in range(len(pool) + 1)
            for c in combinations(pool, size)
            if not has_bad_path(g, sources, targets, bad, removed=c)
        ]
        expected = {c for c in valid if not any(o < c for o in valid)}
        mine = set(minimal_path_cuts(g, sources, targets, bad,
                                     allowed=bad))
        assert mine == expected

    @given(edge_lists)
    @settings(max_examples=40, deadline=None)
    def test_cuts_are_minimal(self, edges):
        g = build(edges)
        bad = set(g.nodes)
        for cut in minimal_path_cuts(g, [0], [5], bad):
            assert not has_bad_path(g, [0], [5], bad, removed=cut)
            for member in cut:
                assert has_bad_path(g, [0], [5], bad,
                                    removed=cut - {member})
