"""Closed-walk length computation vs a numpy matrix-power oracle."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph, closed_walk_lengths, shortest_closed_walk

edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    max_size=18,
)


def build(edges) -> Digraph:
    g = Digraph(nodes=range(6))
    for u, v in edges:
        g.add_edge(u, v)
    return g


def oracle(edges, anchors, upto) -> set[int]:
    adjacency = np.zeros((6, 6), dtype=bool)
    for u, v in edges:
        adjacency[u, v] = True
    power = np.eye(6, dtype=bool)
    lengths = set()
    for length in range(1, upto + 1):
        power = power @ adjacency
        if any(power[a, a] for a in anchors):
            lengths.add(length)
    return lengths


@given(edge_lists, st.sets(st.integers(0, 5), min_size=1))
@settings(max_examples=120, deadline=None)
def test_matches_matrix_power_oracle(edges, anchors):
    g = build(edges)
    assert closed_walk_lengths(g, anchors, 12) == oracle(edges, anchors, 12)


def test_single_cycle_lengths_are_multiples():
    g = build([(0, 1), (1, 2), (2, 0)])
    assert closed_walk_lengths(g, [0], 12) == {3, 6, 9, 12}


def test_two_anchored_cycles_combine():
    # Cycles of lengths 2 and 3 sharing vertex 0: walk lengths are every
    # non-negative combination 2a + 3b >= 2 -> {2,3,4,5,...}.
    g = build([(0, 1), (1, 0), (0, 2), (2, 3), (3, 0)])
    assert closed_walk_lengths(g, [0], 10) == {2, 3, 4, 5, 6, 7, 8, 9, 10}


def test_anchor_missing_from_graph():
    g = build([(0, 1)])
    assert closed_walk_lengths(g, [99], 5) == set()


def test_shortest_closed_walk_on_cycle():
    g = build([(0, 1), (1, 2), (2, 0)])
    walk = shortest_closed_walk(g, 1)
    assert walk is not None
    assert len(walk) == 3
    assert walk[0] == 1


def test_shortest_closed_walk_none_off_cycle():
    g = build([(0, 1), (1, 2)])
    assert shortest_closed_walk(g, 0) is None
