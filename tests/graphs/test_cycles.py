"""Cycle enumeration vs the networkx oracle."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph, find_cycle_through, has_cycle, simple_cycles
from repro.graphs.cycles import simple_edge_cycles

edge_lists = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 7)),
    max_size=25,
)


def canon(cycle) -> tuple:
    """Rotate a node cycle so its smallest element comes first."""
    pivot = min(range(len(cycle)), key=lambda i: repr(cycle[i]))
    return tuple(cycle[pivot:] + cycle[:pivot])


def build(edges):
    ours = Digraph(nodes=range(8))
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(8))
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    return ours, theirs


@given(edge_lists)
@settings(max_examples=150, deadline=None)
def test_simple_cycles_match_networkx(edges):
    ours, theirs = build(edges)
    mine = {canon(c) for c in simple_cycles(ours)}
    ref = {canon(c) for c in nx.simple_cycles(theirs)}
    assert mine == ref


@given(edge_lists)
@settings(max_examples=150, deadline=None)
def test_bounded_enumeration_is_a_length_filter(edges):
    ours, _ = build(edges)
    unbounded = {canon(c) for c in simple_cycles(ours)}
    bounded = {canon(c) for c in simple_cycles(ours, max_length=3)}
    assert bounded == {c for c in unbounded if len(c) <= 3}


@given(edge_lists)
@settings(max_examples=100)
def test_has_cycle_agrees_with_enumeration(edges):
    ours, _ = build(edges)
    assert has_cycle(ours) == (next(iter(simple_cycles(ours)), None)
                               is not None)


@given(edge_lists)
@settings(max_examples=100)
def test_find_cycle_through_is_valid_and_minimal(edges):
    ours, _ = build(edges)
    for node in ours.nodes:
        cycle = find_cycle_through(ours, node)
        on_any = any(node in c for c in simple_cycles(ours))
        if cycle is None:
            assert not on_any
            continue
        assert node in cycle
        # Valid cycle: consecutive edges exist, including the closing one.
        for i, current in enumerate(cycle):
            assert ours.has_edge(current, cycle[(i + 1) % len(cycle)])
        # Minimal: no strictly shorter simple cycle through the node.
        shortest = min(len(c) for c in simple_cycles(ours) if node in c)
        assert len(cycle) == shortest


def test_find_cycle_through_missing_node():
    assert find_cycle_through(Digraph(), "ghost") is None


def test_find_cycle_through_respects_max_length():
    g = Digraph(edges=[(i, (i + 1) % 5) for i in range(5)])
    assert find_cycle_through(g, 0, max_length=4) is None
    assert find_cycle_through(g, 0, max_length=5) == [0, 1, 2, 3, 4]


def test_edge_cycles_expand_parallel_edges():
    g = Digraph()
    g.add_edge("a", "b", key="t1")
    g.add_edge("a", "b", key="t2")
    g.add_edge("b", "a", key="t3")
    cycles = list(simple_edge_cycles(g))
    keys = {frozenset(key for _s, _t, key in cycle) for cycle in cycles}
    assert keys == {frozenset({"t1", "t3"}), frozenset({"t2", "t3"})}


def test_edge_cycles_include_self_loops():
    g = Digraph()
    g.add_edge("a", "a", key="loop")
    cycles = list(simple_edge_cycles(g))
    assert cycles == [[("a", "a", "loop")]]
