"""Minimal feedback vertex sets: correctness, minimality, constraints."""

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Digraph,
    FvsStats,
    is_feedback_vertex_set,
    minimal_feedback_vertex_sets,
    minimal_feedback_vertex_sets_exhaustive,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    max_size=15,
)


def build(edges) -> Digraph:
    g = Digraph(nodes=range(6))
    for u, v in edges:
        g.add_edge(u, v)
    return g


def brute_force_minimal(graph, allowed, bad):
    """Oracle: all minimal feedback sets by exhaustive subset search."""
    pool = sorted(allowed)
    valid = [frozenset(c)
             for size in range(len(pool) + 1)
             for c in combinations(pool, size)
             if is_feedback_vertex_set(graph, c, bad=bad)]
    return {s for s in valid
            if not any(o < s for o in valid)}


def test_simple_cycle_needs_one_vertex():
    g = build([(0, 1), (1, 2), (2, 0)])
    sets = list(minimal_feedback_vertex_sets(g))
    assert all(len(s) == 1 for s in sets)
    assert {next(iter(s)) for s in sets} == {0, 1, 2}


def test_self_loop_forces_its_own_vertex():
    g = build([(3, 3)])
    sets = list(minimal_feedback_vertex_sets(g))
    assert sets == [frozenset({3})]


def test_acyclic_graph_has_empty_fvs():
    g = build([(0, 1), (1, 2)])
    assert list(minimal_feedback_vertex_sets(g)) == [frozenset()]


def test_allowed_restriction_can_make_problem_unsolvable():
    g = build([(0, 0)])
    # Only vertex 1 allowed, but the cycle is at 0.
    assert list(minimal_feedback_vertex_sets(g, allowed=[1])) == []


def test_bad_restriction_ignores_good_cycles():
    g = build([(0, 1), (1, 0), (2, 3), (3, 2)])
    # Only cycles through vertex 0 matter: the 2-3 cycle is harmless.
    sets = list(minimal_feedback_vertex_sets(g, bad=[0]))
    assert frozenset() not in sets
    assert all(s <= {0, 1} for s in sets)


def test_sets_yielded_smallest_first():
    g = build([(0, 1), (1, 0), (2, 2)])
    sizes = [len(s) for s in minimal_feedback_vertex_sets(g)]
    assert sizes == sorted(sizes)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_enumeration_matches_brute_force(edges):
    g = build(edges)
    allowed = set(g.nodes)
    bad = set(g.nodes)
    mine = set(minimal_feedback_vertex_sets(g))
    assert mine == brute_force_minimal(g, allowed, bad)


@given(edge_lists, st.sets(st.integers(0, 5)))
@settings(max_examples=60, deadline=None)
def test_enumeration_with_constraints_matches_brute_force(edges, bad):
    g = build(edges)
    allowed = bad  # the synthesis use-case: Resolve ⊆ ¬LC_r
    mine = set(minimal_feedback_vertex_sets(g, allowed=allowed, bad=bad))
    assert mine == brute_force_minimal(g, allowed, bad)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_every_yielded_set_is_feedback_and_minimal(edges):
    g = build(edges)
    for s in minimal_feedback_vertex_sets(g):
        assert is_feedback_vertex_set(g, s)
        for member in s:
            assert not is_feedback_vertex_set(g, s - {member})


@given(edge_lists, st.sets(st.integers(0, 5)))
@settings(max_examples=60, deadline=None)
def test_branch_and_bound_matches_exhaustive_order(edges, bad):
    """The B&B search replays the exhaustive enumerator exactly —
    same sets, same (size-then-``combinations``) order."""
    g = build(edges)
    mine = list(minimal_feedback_vertex_sets(g, allowed=bad, bad=bad))
    oracle = list(minimal_feedback_vertex_sets_exhaustive(
        g, allowed=bad, bad=bad))
    assert mine == oracle


@given(edge_lists, st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_max_sets_truncates_to_a_prefix(edges, max_sets):
    g = build(edges)
    full = list(minimal_feedback_vertex_sets(g))
    truncated = list(minimal_feedback_vertex_sets(g, max_sets=max_sets))
    assert truncated == full[:max_sets]


def test_stats_count_search_effort():
    g = build([(0, 1), (1, 2), (2, 0), (3, 4), (4, 3), (5, 5)])
    stats = FvsStats()
    sets = list(minimal_feedback_vertex_sets(g, stats=stats))
    assert sets  # 3-cycle × 2-cycle × self-loop: 6 minimal sets
    assert stats.nodes_explored > 0
    assert stats.cycle_checks > 0
    # A second run accumulates into the same counters.
    explored = stats.nodes_explored
    list(minimal_feedback_vertex_sets(g, stats=stats))
    assert stats.nodes_explored > explored
