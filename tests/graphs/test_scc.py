"""Tarjan SCC vs the networkx oracle, plus condensation properties."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import Digraph, condensation, strongly_connected_components
from repro.graphs.scc import cyclic_components

edge_lists = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    max_size=40,
)


def build(edges) -> tuple[Digraph, nx.DiGraph]:
    ours = Digraph(nodes=range(10))
    theirs = nx.DiGraph()
    theirs.add_nodes_from(range(10))
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    return ours, theirs


@given(edge_lists)
@settings(max_examples=200)
def test_scc_matches_networkx(edges):
    ours, theirs = build(edges)
    mine = {frozenset(c) for c in strongly_connected_components(ours)}
    ref = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
    assert mine == ref


@given(edge_lists)
@settings(max_examples=100)
def test_components_partition_nodes(edges):
    ours, _ = build(edges)
    components = strongly_connected_components(ours)
    flat = [n for c in components for n in c]
    assert sorted(flat) == sorted(ours.nodes)


@given(edge_lists)
@settings(max_examples=100)
def test_tarjan_order_is_reverse_topological(edges):
    ours, _ = build(edges)
    components = strongly_connected_components(ours)
    position = {n: i for i, c in enumerate(components) for n in c}
    # Every inter-component edge must point to an earlier-emitted component.
    for u, v, _key in ours.edges():
        if position[u] != position[v]:
            assert position[v] < position[u]


@given(edge_lists)
@settings(max_examples=100)
def test_condensation_is_acyclic(edges):
    ours, _ = build(edges)
    dag, membership = condensation(ours)
    assert set(membership) == set(ours.nodes)
    # No cycles in the condensation: every SCC of it is a singleton
    # without self-loop.
    for component in strongly_connected_components(dag):
        assert len(component) == 1
        assert not dag.has_edge(component[0], component[0])


def test_cyclic_components_identifies_self_loops():
    g = Digraph(edges=[("a", "a"), ("b", "c"), ("c", "b"), ("d", "e")])
    cyclic = {frozenset(c) for c in cyclic_components(g)}
    assert cyclic == {frozenset({"a"}), frozenset({"b", "c"})}


def test_single_node_no_loop_not_cyclic():
    g = Digraph(nodes=["solo"])
    assert cyclic_components(g) == []


def test_long_chain_does_not_recurse():
    # 5000-node chain: the iterative Tarjan must not hit recursion limits.
    g = Digraph()
    for i in range(5000):
        g.add_edge(i, i + 1)
    components = strongly_connected_components(g)
    assert len(components) == 5001
