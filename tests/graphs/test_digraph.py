"""Unit tests for the Digraph container."""

import pytest

from repro.graphs import Digraph


def test_empty_graph():
    g = Digraph()
    assert len(g) == 0
    assert g.nodes == []
    assert list(g.edges()) == []
    assert g.edge_count() == 0


def test_add_node_idempotent():
    g = Digraph()
    g.add_node("a")
    g.add_node("a")
    assert g.nodes == ["a"]


def test_add_edge_creates_nodes():
    g = Digraph()
    g.add_edge(1, 2)
    assert 1 in g
    assert 2 in g
    assert g.has_edge(1, 2)
    assert not g.has_edge(2, 1)


def test_parallel_edges_distinguished_by_key():
    g = Digraph()
    g.add_edge("a", "b", key="t1")
    g.add_edge("a", "b", key="t2")
    assert g.edge_count() == 2
    assert g.edge_keys("a", "b") == {"t1", "t2"}
    assert g.has_edge("a", "b", key="t1")
    assert not g.has_edge("a", "b", key="t3")


def test_duplicate_edge_same_key_not_doubled():
    g = Digraph()
    g.add_edge("a", "b", key="t")
    g.add_edge("a", "b", key="t")
    assert g.edge_count() == 1


def test_successors_and_predecessors():
    g = Digraph(edges=[("a", "b"), ("a", "c"), ("b", "c")])
    assert sorted(g.successors("a")) == ["b", "c"]
    assert sorted(g.predecessors("c")) == ["a", "b"]
    assert list(g.successors("c")) == []


def test_degrees_count_parallel_edges():
    g = Digraph()
    g.add_edge("a", "b", key=1)
    g.add_edge("a", "b", key=2)
    g.add_edge("a", "c")
    assert g.out_degree("a") == 3
    assert g.in_degree("b") == 2


def test_remove_node_drops_incident_edges():
    g = Digraph(edges=[("a", "b"), ("b", "c"), ("c", "a")])
    g.remove_node("b")
    assert "b" not in g
    assert not g.has_edge("a", "b")
    assert g.has_edge("c", "a")
    assert list(g.edges()) == [("c", "a", None)]


def test_remove_missing_node_raises():
    with pytest.raises(KeyError):
        Digraph().remove_node("ghost")


def test_remove_node_with_self_loop():
    g = Digraph(edges=[("a", "a"), ("a", "b")])
    g.remove_node("a")
    assert g.nodes == ["b"]
    assert g.edge_count() == 0


def test_induced_subgraph_is_maximal_edge_subset():
    g = Digraph(edges=[("a", "b"), ("b", "c"), ("c", "a"), ("a", "a")])
    sub = g.induced_subgraph({"a", "b"})
    assert set(sub.nodes) == {"a", "b"}
    assert sub.has_edge("a", "b")
    assert sub.has_edge("a", "a")
    assert not sub.has_edge("b", "c")
    assert sub.edge_count() == 2


def test_induced_subgraph_keeps_isolated_nodes():
    g = Digraph(nodes=["x", "y"], edges=[("x", "x")])
    sub = g.induced_subgraph({"y"})
    assert sub.nodes == ["y"]
    assert sub.edge_count() == 0


def test_reversed_flips_every_edge():
    g = Digraph(edges=[("a", "b", "k"), ("b", "c", None)])
    rev = g.reversed()
    assert rev.has_edge("b", "a", key="k")
    assert rev.has_edge("c", "b")
    assert rev.edge_count() == g.edge_count()
    assert set(rev.nodes) == set(g.nodes)


def test_copy_is_independent():
    g = Digraph(edges=[("a", "b")])
    dup = g.copy()
    dup.add_edge("b", "a")
    assert not g.has_edge("b", "a")
    assert dup.has_edge("b", "a")


def test_iteration_and_contains():
    g = Digraph(nodes=[3, 1, 2])
    assert list(g) == [3, 1, 2]  # insertion order
    assert 3 in g
    assert 7 not in g
