"""Rendering of trails, ranking stairs and livelock cycles."""

from repro.checker import StateGraph, compute_ranking
from repro.checker.livelock import livelock_cycles
from repro.core import certify_livelock_freedom
from repro.protocols import livelock_agreement, stabilizing_agreement
from repro.viz import (
    render_livelock_cycle,
    render_ranking_stairs,
    render_trail_witness,
)


def test_render_trail_witness():
    report = certify_livelock_freedom(livelock_agreement())
    text = render_trail_witness(report.trail_witnesses[0])
    assert "contiguous trail candidate" in text
    assert "|E|=2" in text
    assert "pseudo-livelock" in text
    assert "illegitimate" in text


def test_render_ranking_stairs():
    graph = StateGraph(stabilizing_agreement().instantiate(4))
    certificate = compute_ranking(graph)
    text = render_ranking_stairs(certificate)
    assert "convergence stairs" in text
    assert "rank   0" in text
    assert "(I)" in text
    # one line per layer plus the header
    assert len(text.splitlines()) == len(certificate.layers()) + 1


def test_render_livelock_cycle():
    instance = livelock_agreement().instantiate(4)
    cycle = livelock_cycles(StateGraph(instance), max_cycles=1)[0]
    text = render_livelock_cycle(instance, cycle)
    assert f"livelock cycle of {len(cycle)} states" in text
    assert "*" in text  # enabled markers
    assert text.count("(") == len(cycle)
