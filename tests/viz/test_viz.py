"""DOT / ASCII rendering."""

from repro.core import build_ltg, build_rcg
from repro.protocols import matching_base, stabilizing_agreement
from repro.viz import (
    adjacency_listing,
    ltg_to_dot,
    rcg_to_dot,
    render_table,
    state_label,
)


class TestStateLabel:
    def test_string_values_abbreviate(self):
        space = matching_base().space
        assert state_label(space.state_of("left", "left", "self")) == "lls"

    def test_numeric_values_verbatim(self):
        space = stabilizing_agreement().space
        assert state_label(space.state_of(0, 1)) == "01"


class TestDot:
    def test_rcg_dot_structure(self):
        protocol = matching_base()
        dot = rcg_to_dot(build_rcg(protocol.space),
                         protocol.legitimate_states(), title="Fig1")
        assert dot.startswith('digraph "Fig1"')
        assert dot.count("->") == 81
        assert '"lls"' in dot
        assert "palegreen" in dot  # legitimate states highlighted
        assert dot.rstrip().endswith("}")

    def test_ltg_dot_distinguishes_arc_kinds(self):
        protocol = stabilizing_agreement()
        dot = ltg_to_dot(build_ltg(protocol.space),
                         protocol.legitimate_states())
        assert "style=dashed" in dot   # s-arcs
        assert "style=bold" in dot     # t-arcs
        assert 'label="t01"' in dot

    def test_dot_output_is_deterministic(self):
        protocol = matching_base()
        first = rcg_to_dot(build_rcg(protocol.space))
        second = rcg_to_dot(build_rcg(protocol.space))
        assert first == second


class TestAscii:
    def test_adjacency_listing_marks_illegitimate(self):
        protocol = stabilizing_agreement()
        listing = adjacency_listing(build_ltg(protocol.space),
                                    protocol.legitimate_states())
        assert "01!" in listing
        assert "=t01=>" in listing
        assert "->" in listing

    def test_adjacency_listing_isolated_node(self):
        from repro.graphs import Digraph

        assert adjacency_listing(Digraph(nodes=["x"])) == "x: -"

    def test_render_table_alignment(self):
        table = render_table(["name", "K"], [("agreement", 4),
                                             ("matching", 12)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "agreement" in lines[2]
        # all rows align on the separator
        assert lines[1].count("-+-") == 1
