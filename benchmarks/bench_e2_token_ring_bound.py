"""E2 — extension: the empirical value bound of Dijkstra's token ring.

Section 5 cites Dijkstra's K-state protocol as the classic corrupting
yet convergent design.  A classic companion fact is that the number of
values M must grow with the ring: this experiment determines, by
exhaustive model checking, the minimal M for which the protocol
self-stabilizes at each K — reproducing the known tight bound
``M >= K - 1`` (for K >= 3).
"""

from repro.checker import check_instance
from repro.protocols import DijkstraTokenRing
from repro.viz import render_table

SIZES = (2, 3, 4, 5)


def minimal_values():
    rows = []
    for size in SIZES:
        minimal = None
        for values in range(2, size + 2):
            report = check_instance(DijkstraTokenRing(size,
                                                      values=values))
            if report.self_stabilizing:
                minimal = values
                break
        assert minimal is not None
        rows.append((size, minimal))
    return rows


def test_e2_token_ring_value_bound(benchmark, write_artifact):
    rows = benchmark.pedantic(minimal_values, rounds=1, iterations=1)
    by_size = dict(rows)
    assert by_size[2] == 2
    for size in (3, 4, 5):
        assert by_size[size] == size - 1  # the M >= K-1 bound is tight
        # one fewer value must fail:
        if size - 2 >= 2:
            broken = check_instance(
                DijkstraTokenRing(size, values=size - 2))
            assert not broken.strongly_converging
    write_artifact(
        "e2_token_ring_bound.txt",
        "minimal M for which Dijkstra's K-state ring stabilizes\n"
        + render_table(["K", "minimal M"], rows))
