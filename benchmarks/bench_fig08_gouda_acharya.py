"""F8 — Figure 8: the Gouda–Acharya matching fragment [23].

The two-action fragment livelocks at K=5 (the paper's
``lslsl -> ... -> lslsl`` cycle with a single circulating enablement);
its LTG exhibits the corresponding contiguous trail, and the global
checker confirms both the livelock and its |E| = 1 structure.
"""

from repro.checker import StateGraph
from repro.checker.livelock import livelock_cycles
from repro.core import build_ltg, certify_livelock_freedom
from repro.protocols import gouda_acharya_matching
from repro.viz import adjacency_listing, ltg_to_dot


def test_fig08_gouda_acharya_livelock(benchmark, write_artifact):
    protocol = gouda_acharya_matching()
    instance = protocol.instantiate(5)

    def analyze():
        graph = StateGraph(instance)
        cycles = livelock_cycles(graph)
        certificate = certify_livelock_freedom(protocol,
                                               max_ring_size=6)
        return cycles, certificate

    cycles, certificate = benchmark.pedantic(analyze, rounds=1,
                                             iterations=1)

    # Global: a real livelock at K=5...
    assert cycles
    cycle = cycles[0]
    assert all(not instance.invariant_holds(s) for s in cycle)
    # ... with exactly one enabled process throughout (|E| = 1).
    assert all(len(instance.enabled_processes(s)) == 1 for s in cycle)

    # Local: Theorem 5.14 (contiguous case on a bidirectional ring)
    # cannot certify — a contiguous trail exists.
    assert certificate.trail_witnesses
    assert certificate.contiguous_only

    ltg = build_ltg(protocol.space)
    legitimate = protocol.legitimate_states()
    write_artifact("fig08_ltg_gouda_acharya.dot",
                   ltg_to_dot(ltg, legitimate, title="Figure 8"))
    rendered = " -> ".join(instance.format_state(s) for s in cycle)
    write_artifact(
        "fig08_livelock.txt",
        f"K=5 livelock ({len(cycle)} states, |E|=1):\n{rendered}\n\n"
        f"LTG trail witnesses:\n"
        + "\n".join(str(w) for w in certificate.trail_witnesses)
        + "\n\nLTG adjacency:\n"
        + adjacency_listing(ltg, legitimate))
