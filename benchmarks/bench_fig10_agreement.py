"""F10 — Figure 10 / §6.2: agreement synthesis.

Resolve is either {01} or {10}; a single copy transition yields a
protocol with no pseudo-livelock at all (accepted at the NPL stage),
while including both candidate transitions forms the alternating trail
of the paper and is rejected.
"""

from repro.checker import check_instance
from repro.core import (
    build_ltg,
    certify_livelock_freedom,
    synthesize_convergence,
    verify_convergence,
)
from repro.core.selfdisabling import action_for_transition
from repro.core.synthesis import SynthesisOutcome
from repro.protocol.actions import LocalTransition
from repro.protocols import agreement
from repro.viz import ltg_to_dot, state_label


def test_fig10_agreement_synthesis(benchmark, write_artifact):
    protocol = agreement()

    result = benchmark(synthesize_convergence, protocol)

    assert result.outcome is SynthesisOutcome.SUCCESS_NPL
    assert len(result.chosen) == 1
    assert {state_label(s) for s in result.resolve} <= {"01", "10"}

    # The synthesized protocol converges for every K (local certificates)
    report = verify_convergence(result.protocol)
    assert report.verdict.value == "converges"
    # ... and for concrete sizes (global checking).
    for size in (3, 5, 7):
        assert check_instance(
            result.protocol.instantiate(size)).self_stabilizing

    # The paper's counterpoint: both transitions together are rejected.
    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    both = [t(1, 0, 1), t(0, 1, 0)]
    doubled = protocol.extended_with(
        [action_for_transition(x, x.label) for x in both])
    certificate = certify_livelock_freedom(doubled)
    assert certificate.trail_witnesses

    write_artifact(
        "fig10_agreement.txt",
        result.summary() + "\n\nboth-transitions variant:\n"
        + "\n".join(str(w) for w in certificate.trail_witnesses))
    write_artifact(
        "fig10_ltg_agreement.dot",
        ltg_to_dot(build_ltg(doubled.space),
                   doubled.legitimate_states(), title="Figure 10"))
