"""F5 — Figure 5: the precedence relation of the Example 5.2 livelock.

For the K=4 binary-agreement livelock the paper reports that exactly
2³ = 8 precedence-preserving permutations of the schedule exist.  The
benchmark recovers the schedule from the paper's global state cycle,
computes ≺, and enumerates (replay-validated) the permutation class.
"""

from repro.core.precedence import (
    precedence_preserving_schedules,
    precedence_relation,
)
from repro.protocols import livelock_agreement
from repro.viz import render_table

PAPER_CYCLE = ("1000", "1100", "0100", "0110",
               "0111", "0011", "1011", "1001")


def test_fig05_precedence_relation(benchmark, write_artifact):
    protocol = livelock_agreement()
    instance = protocol.instantiate(4)
    cycle = [instance.state_of(*map(int, s)) for s in PAPER_CYCLE]

    def analyze():
        relation = precedence_relation(instance, cycle)
        schedules = list(precedence_preserving_schedules(relation))
        return relation, schedules

    relation, schedules = benchmark(analyze)

    assert [e.process for e in relation.schedule] == [1, 0, 2, 3,
                                                      1, 0, 2, 3]
    assert len(schedules) == 8  # the paper's 2^3 permutations
    assert tuple(range(8)) in schedules

    rows = [(i, j, str(relation.schedule[i]), str(relation.schedule[j]))
            for (i, j) in sorted(relation.order)]
    write_artifact(
        "fig05_precedence.txt",
        "schedule: "
        + ", ".join(str(e) for e in relation.schedule) + "\n"
        + f"precedence-preserving permutations: {len(schedules)}\n\n"
        + render_table(["i", "j", "t_i", "t_j  (t_i ≺ t_j)"], rows))
