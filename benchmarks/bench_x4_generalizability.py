"""X4 — the Example 4.3 phenomenon, regenerated with the STSyn stand-in.

Synthesize maximal matching in the **global** state space of K=5 (as the
authors did with STSyn), then audit the solutions:

* each is self-stabilizing at its design size;
* the solutions found here all deadlock at K=6 — non-generalizable,
  exactly like Example 4.3;
* Theorem 4.2 flags every such solution locally, without touching any
  global state space.
"""

from repro.checker import GlobalSynthesizer, check_instance
from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import matching_base
from repro.viz import render_table

SEEDS = (0, 1, 2)
AUDIT_SIZES = (6, 7, 8)


def synthesize_and_audit():
    rows = []
    non_generalizable = 0
    for seed in SEEDS:
        result = GlobalSynthesizer(matching_base(), ring_size=5,
                                   seed=seed,
                                   max_expansions=3000).synthesize()
        assert result.success
        assert check_instance(
            result.protocol.instantiate(5)).self_stabilizing
        analyzer = DeadlockAnalyzer(result.protocol)
        local = analyzer.analyze()
        predicted = analyzer.deadlocked_ring_sizes(max(AUDIT_SIZES))
        failures = []
        for size in AUDIT_SIZES:
            report = check_instance(result.protocol.instantiate(size))
            deadlocked = bool(report.deadlocks_outside)
            assert deadlocked == (size in predicted), (seed, size)
            if deadlocked:
                failures.append(size)
        if failures:
            non_generalizable += 1
            assert not local.deadlock_free  # flagged locally
        rows.append((seed, len(result.added),
                     "yes" if local.deadlock_free else "no",
                     ",".join(map(str, failures)) or "-"))
    return rows, non_generalizable


def test_x4_global_synthesis_is_not_generalizable(benchmark,
                                                  write_artifact):
    (rows, non_generalizable) = benchmark.pedantic(
        synthesize_and_audit, rounds=1, iterations=1)
    # The phenomenon reproduces: at least one fixed-K solution (in our
    # runs: all of them) fails at larger rings.
    assert non_generalizable >= 1
    write_artifact(
        "x4_generalizability.txt",
        "global synthesis of matching at K=5 (STSyn stand-in)\n"
        + render_table(["seed", "added t-arcs",
                        "deadlock-free all K (Thm 4.2)",
                        "deadlocks at K"], rows))
