"""Kernel perf smoke: naive vs compiled vs rotation quotient.

Times the three state-space engines on the paper's flagship protocol
(Example 4.2 maximal matching) across ring sizes, asserts the compiled
kernel is never slower than the naive interpreter (the CI perf-smoke
gate), and emits ``BENCH_kernel.json`` at the repository root with the
per-K timings so regressions are diffable.

``REPRO_BENCH_MAX_K`` caps the largest ring size (CI uses 6 to stay
fast); the ≥5× speedup acceptance bound is only asserted on full runs
(largest K ≥ 8), where the gap is far from timing noise.
"""

import json
import os
import time
from pathlib import Path

from repro.checker import check_instance
from repro.checker.statespace import StateGraph
from repro.protocols import generalizable_matching
from repro.viz import render_table

MAX_K = int(os.environ.get("REPRO_BENCH_MAX_K", "8"))
SIZES = tuple(range(4, MAX_K + 1))
REPO_ROOT = Path(__file__).resolve().parent.parent
ROUNDS = 2  # best-of-N to damp scheduler noise


def _timed_build(instance, **kwargs) -> tuple[StateGraph, float]:
    """Build a graph and materialize every surface an analysis touches."""
    best = None
    for _ in range(ROUNDS):
        began = time.perf_counter()
        graph = StateGraph(instance, **kwargs)
        graph.successors
        graph.in_invariant
        elapsed = time.perf_counter() - began
        best = elapsed if best is None else min(best, elapsed)
    return graph, best


def collect():
    protocol = generalizable_matching()
    results = []
    for size in SIZES:
        instance = protocol.instantiate(size)
        naive, naive_s = _timed_build(instance, backend="naive")
        kernel, kernel_s = _timed_build(instance, backend="kernel")
        quotient, quotient_s = _timed_build(
            instance, backend="kernel", symmetry=True)
        assert kernel.successors == naive.successors
        assert kernel.in_invariant == naive.in_invariant
        results.append({
            "K": size,
            "states": len(naive),
            "naive_s": round(naive_s, 6),
            "kernel_s": round(kernel_s, 6),
            "speedup": round(naive_s / kernel_s, 2),
            "quotient_s": round(quotient_s, 6),
            "quotient_states": len(quotient),
            "quotient_ratio": round(
                kernel.kernel_stats.states_encoded / len(quotient), 2),
        })
    return results


def test_kernel_perf_smoke(benchmark, write_artifact):
    results = benchmark.pedantic(collect, rounds=1, iterations=1)
    largest = results[-1]

    # The gate: the compiled backend must beat the interpreter at the
    # largest measured K (states dominate; compile time is amortized).
    assert largest["kernel_s"] < largest["naive_s"], largest
    # Acceptance bound on full runs, where the margin is enormous
    # (measured ~40x at K=8 on the development machine).
    if largest["K"] >= 8:
        assert largest["speedup"] >= 5.0, largest
    # The quotient keeps ~K-fold fewer states.
    assert largest["quotient_ratio"] > largest["K"] / 2

    # Identical verdicts at the largest K, all three engines.
    instance = generalizable_matching().instantiate(largest["K"])
    naive_report = check_instance(instance, backend="naive")
    kernel_report = check_instance(instance, backend="kernel")
    quotient_report = check_instance(instance, symmetry=True)
    assert kernel_report == naive_report
    assert quotient_report.self_stabilizing == naive_report.self_stabilizing
    assert (quotient_report.worst_case_recovery_steps
            == naive_report.worst_case_recovery_steps)

    payload = {
        "protocol": "matching-ex4.2",
        "sizes": list(SIZES),
        "largest_k_speedup": largest["speedup"],
        "results": results,
    }
    (REPO_ROOT / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "kernel_backends.txt",
        render_table(
            ["K", "states", "naive", "kernel", "speedup",
             "quotient", "orbit states"],
            [(r["K"], r["states"],
              f"{r['naive_s'] * 1e3:.1f} ms",
              f"{r['kernel_s'] * 1e3:.1f} ms",
              f"{r['speedup']:.1f}x",
              f"{r['quotient_s'] * 1e3:.1f} ms",
              r["quotient_states"]) for r in results]))
