"""F3 — Figure 3: illegitimate deadlock cycles of Example 4.3.

The non-generalizable matching protocol's deadlock-induced RCG has
directed cycles of lengths 4 and 6 through ⟨left,left,self⟩; the exact
deadlocked ring sizes follow from closed-walk lengths (a refinement of
the paper's "multiples of 4 or 6": combinations such as K=7 and K=10
also deadlock, which the global checker confirms in the test suite).
Resolving ⟨l,l,s⟩ repairs the protocol for every K.
"""

from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import nongeneralizable_matching
from repro.viz import adjacency_listing, rcg_to_dot, render_table, \
    state_label

HORIZON = 16


def test_fig03_example43_cycles_and_sizes(benchmark, write_artifact):
    protocol = nongeneralizable_matching()

    def analyze():
        analyzer = DeadlockAnalyzer(protocol)
        return analyzer, analyzer.analyze(), \
            analyzer.deadlocked_ring_sizes(HORIZON)

    analyzer, report, sizes = benchmark(analyze)

    assert not report.deadlock_free
    lengths = sorted({len(c) for c in report.witness_cycles})
    assert 4 in lengths and 6 in lengths
    lls = protocol.space.state_of("left", "left", "self")
    assert all(lls in c for c in report.witness_cycles
               if len(c) in (4, 6))

    # Exact per-size verdicts; 5 clean (the synthesis size), 4/6/7 bad.
    assert {4, 6, 7} <= sizes
    assert 5 not in sizes

    # Resolving ⟨l,l,s⟩ alone suffices (the paper's repair note).
    assert frozenset({lls}) in analyzer.resolve_candidates()

    legitimate = protocol.legitimate_states()
    write_artifact("fig03_ex43_deadlock_rcg.dot",
                   rcg_to_dot(report.induced_rcg, legitimate,
                              title="Figure 3"))
    rows = [(size, "deadlocks" if size in sizes else "clean")
            for size in range(3, HORIZON + 1)]
    cycles_text = "\n".join(
        " -> ".join(state_label(s) for s in cycle)
        for cycle in report.witness_cycles)
    write_artifact(
        "fig03_ex43_summary.txt",
        "illegitimate RCG cycles:\n" + cycles_text + "\n\n"
        + render_table(["K", "verdict (Thm 4.2 closed walks)"], rows))
