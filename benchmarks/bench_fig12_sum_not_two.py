"""F12 — Figure 12 / §6.2: sum-not-two — sufficiency without necessity.

Three claims:

1. ``Resolve = {20, 11, 02}`` and the methodology succeeds at the PL
   stage (pseudo-livelocks exist, none forms a trail);
2. the candidate set {t21, t10, t02} is rejected because its
   pseudo-livelock participates in a (K=3, |E|=2) trail — which is
   **spurious**: the global instance has no livelock, demonstrating that
   Theorem 5.14's condition is sufficient but unnecessary;
3. the paper's accepted set {t21, t12, t01} — packaged as the two
   guarded commands of §6.2 — self-stabilizes at every checked size.
"""

from repro.checker import check_instance
from repro.core import synthesize_convergence, verify_convergence
from repro.core.selfdisabling import action_for_transition
from repro.core.synthesis import SynthesisOutcome
from repro.core.trail import ContiguousTrailSearcher
from repro.protocol.actions import LocalTransition
from repro.protocols import stabilizing_sum_not_two, sum_not_two
from repro.viz import state_label


def test_fig12_sum_not_two(benchmark, write_artifact):
    protocol = sum_not_two()

    result = benchmark(synthesize_convergence, protocol)

    assert result.outcome is SynthesisOutcome.SUCCESS_PL
    assert {state_label(s) for s in result.resolve} == {"20", "11", "02"}

    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    # 2. the rejected combination and its spurious trail
    rejected = [t(0, 2, 1), t(1, 1, 0), t(2, 0, 2)]  # {t21, t10, t02}
    candidate = protocol.extended_with(
        [action_for_transition(x, x.label) for x in rejected])
    witness = ContiguousTrailSearcher(candidate).find_trail(rejected)
    assert witness is not None
    assert (witness.ring_size, witness.enablements) == (3, 2)
    spurious_check = check_instance(candidate.instantiate(3))
    assert spurious_check.livelock_cycles == ()  # no real livelock!

    # 3. the paper's packaged solution
    packaged = stabilizing_sum_not_two()
    assert verify_convergence(packaged).verdict.value == "converges"
    for size in (3, 5, 7):
        assert check_instance(packaged.instantiate(size)).self_stabilizing

    # 4. exhaustive audit of all 2^3 combinations: the paper's blanket
    # "none of the remaining forms a trail" is refuted — two remaining
    # combinations livelock for real and are (correctly) rejected.
    from repro.core.synthesis import Synthesizer

    rows = []
    accepted_count = 0
    for combo, reason in Synthesizer(protocol) \
            .evaluate_all_combinations():
        candidate2 = protocol.extended_with(
            [action_for_transition(x, x.label) for x in combo])
        global_ok = all(
            check_instance(candidate2.instantiate(size)).self_stabilizing
            for size in (3, 4, 5))
        local = "accept" if reason is None else "reject"
        if reason is None:
            accepted_count += 1
            assert global_ok  # soundness over the whole lattice
        if not global_ok:
            assert reason is not None  # real livelocks never accepted
        rows.append(("+".join(t.label for t in combo), local,
                     "stabilizes" if global_ok else "REAL LIVELOCK"))
    assert accepted_count == 4

    from repro.viz import render_table

    write_artifact(
        "fig12_sum_not_two.txt",
        result.summary()
        + f"\n\nrejected {{t21, t10, t02}} trail: {witness}"
        + "\nglobal check at the trail's K=3: no livelock (spurious)"
        + "\n\npackaged solution:\n" + packaged.pretty()
        + "\n\nexhaustive combination audit (refines the paper's "
          "'none of the remaining' claim):\n"
        + render_table(["combination", "Thm 5.14 verdict",
                        "global K=3..5"], rows))
