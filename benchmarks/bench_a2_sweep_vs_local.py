"""A2 — ablation/baseline: cutoff-style sweeping vs. local reasoning.

Section 7 contrasts the approach with cutoff methods, which verify every
size up to a bound.  This benchmark runs both on Example 4.2 and on
Example 4.3:

* the sweep needs to *pick a bound*; for Example 4.3 a bound of 5 (its
  synthesis size) wrongly reports success, while the local analysis
  refutes generalizability instantly;
* for Example 4.2 the sweep only ever yields bounded evidence at
  exponential cost, while the local verdict covers all K.
"""

import time

from repro.checker.sweep import sweep_verify
from repro.core.convergence import verify_convergence
from repro.core.deadlock import DeadlockAnalyzer
from repro.engine import ResultCache
from repro.protocols import (
    generalizable_matching,
    nongeneralizable_matching,
)
from repro.viz import render_table


def run_comparison():
    rows = []
    # Example 4.3: a sweep up to 5 misses the K=4 failure? No: 4 < 5 is
    # inside the range — the interesting bound is a sweep over the
    # *design* sizes only, e.g. K = 5 alone, which is what fixed-K
    # synthesis validated.  Show both.
    bad = nongeneralizable_matching()
    design_only = sweep_verify(bad, up_to=5, start=5)
    assert design_only.all_self_stabilizing  # the fixed-K illusion
    wider = sweep_verify(bad, up_to=7, start=3)
    assert wider.failing_sizes == (4, 6, 7)
    local_bad = DeadlockAnalyzer(bad).analyze()
    assert not local_bad.deadlock_free
    rows.append(("matching-ex4.3", "K=5 only: ok (illusion)",
                 f"K=3..7: fails at {list(wider.failing_sizes)}",
                 "diverges (exact, all K)"))

    good = generalizable_matching()
    sweep_good = sweep_verify(good, up_to=7, start=3)
    assert sweep_good.all_self_stabilizing
    local_good = DeadlockAnalyzer(good).analyze()
    assert local_good.deadlock_free
    rows.append(("matching-ex4.2",
                 f"{sweep_good.total_states_explored} states explored",
                 "evidence bounded at K<=7",
                 "deadlock-free (exact, all K)"))
    # The local analysis' own engine counters (trail searches run on the
    # bitmask localkernel) for the artifact's bottom line.
    local_report = verify_convergence(good)
    assert local_report.stats is not None
    local_line = ("local verification (matching-ex4.2): "
                  + local_report.stats.summary())
    return rows, local_line


def engine_comparison(tmp_dir):
    """Serial vs parallel vs cached timings of the same wide sweep."""
    protocol = generalizable_matching()

    def timed(**kwargs):
        began = time.perf_counter()
        result = sweep_verify(protocol, up_to=7, start=3, **kwargs)
        return result, time.perf_counter() - began

    naive, naive_s = timed(jobs=1, backend="naive")
    serial, serial_s = timed(jobs=1)
    assert naive.reports == serial.reports  # backends report identically
    parallel, parallel_s = timed(jobs=2)
    assert parallel.reports == serial.reports
    cache = ResultCache(tmp_dir)
    warm, _ = timed(cache=cache)
    cached, cached_s = timed(cache=cache)
    assert cached.reports == serial.reports
    assert cached.stats.cache_hits == len(serial.reports)
    assert warm.reports == serial.reports
    # The kernel counters ride the sweep stats into the artifact.
    assert serial.stats.states_encoded == serial.total_states_explored
    rows = [("serial, naive backend", f"{naive_s * 1e3:.1f} ms"),
            ("serial (jobs=1)", f"{serial_s * 1e3:.1f} ms"),
            ("parallel (jobs=2)", f"{parallel_s * 1e3:.1f} ms"),
            ("cached re-run", f"{cached_s * 1e3:.1f} ms")]
    return rows, serial.stats.summary()


def test_a2_sweep_vs_local(benchmark, write_artifact, tmp_path):
    rows, local_line = benchmark.pedantic(run_comparison, rounds=1,
                                          iterations=1)
    engine_rows, kernel_line = engine_comparison(tmp_path / "cache")
    write_artifact(
        "a2_sweep_vs_local.txt",
        render_table(["protocol", "sweep (fixed-K view)",
                      "sweep (wider)", "local verdict"], rows)
        + "\n\nsweep engine modes (matching-ex4.2, K=3..7):\n"
        + render_table(["mode", "wall time"], engine_rows)
        + f"\n{kernel_line}"
        + f"\n{local_line}")
