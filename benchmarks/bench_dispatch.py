"""Dispatch-overhead smoke: batch scheduling vs fork-per-attempt.

The compiled kernels made per-task cost tiny (sub-millisecond model
checks at small K), which turned the PR 5 supervisor's fork-per-attempt
dispatch into the dominant cost of supervised micro-task sweeps.  This
benchmark runs the same supervised sweep of N micro model-checking
tasks twice — ``schedule="task"`` (one forked child per task) and
``schedule="batch"`` (persistent workers, adaptive batches) — asserts
the verdicts are byte-identical, gates on the speedup, and emits
``BENCH_dispatch.json`` at the repository root.

``REPRO_BENCH_DISPATCH_ITEMS`` sets N (CI uses 200 with a ≥3× gate to
stay fast and noise-tolerant; the full default of 500 carries the ≥5×
acceptance bound).
"""

import json
import os
import tempfile
import time
from pathlib import Path

from repro.engine import EngineStats, SupervisorPolicy, \
    supervise_work_items
from repro.obs import live
from repro.protocols import generalizable_matching
from repro.serialization import global_report_to_dict

ITEMS = int(os.environ.get("REPRO_BENCH_DISPATCH_ITEMS", "500"))
JOBS = 4
#: Ring sizes the micro tasks cycle over — small enough that one check
#: costs well under a millisecond, so dispatch overhead dominates.
MICRO_SIZES = (3, 4)
REPO_ROOT = Path(__file__).resolve().parent.parent
#: ≥5× is the acceptance bound on full runs; CI's 200-item run gates at
#: ≥3× (same effect, more headroom against shared-runner noise).
MIN_SPEEDUP = 5.0 if ITEMS >= 500 else 3.0
#: Publishing live status snapshots must stay within 2% of the batch
#: run's wall clock.  Only gated on the full 500-item configuration —
#: shorter CI runs are too noisy for a 2% bound to mean anything.
MAX_LIVE_OVERHEAD = 1.02


def _micro_worker(context, size: int):
    from repro.checker import check_instance

    protocol = context
    return check_instance(protocol.instantiate(size), backend="kernel")


def _verdict_bytes(reports) -> bytes:
    """The schedule-invariant content of a result list, serialized.

    Run-local ``stats`` are timing-dependent by design and excluded;
    everything the analysis concluded must match byte for byte.
    """
    rows = []
    for report in reports:
        row = global_report_to_dict(report)
        row.pop("stats", None)
        rows.append(row)
    return json.dumps(rows, sort_keys=True).encode("ascii")


def _run(schedule: str, live_dir=None):
    protocol = generalizable_matching()
    sizes = [MICRO_SIZES[i % len(MICRO_SIZES)] for i in range(ITEMS)]
    stats = EngineStats(jobs=JOBS)
    live_run = None
    if live_dir is not None:
        live_run = live.LiveRun(live_dir, "bench-dispatch-live",
                                command="bench")
        live.activate(live_run)
    began = time.perf_counter()
    try:
        results = supervise_work_items(
            _micro_worker, sizes, jobs=JOBS, context=protocol,
            stats=stats, policy=SupervisorPolicy(timeout=60, retries=2),
            schedule=schedule)
    finally:
        elapsed = time.perf_counter() - began
        if live_run is not None:
            live_run.finish()
            live.deactivate(live_run)
    return results, elapsed, stats, live_run


def collect():
    task_results, task_s, _task_stats, _ = _run("task")
    batch_results, batch_s, batch_stats, _ = _run("batch")
    with tempfile.TemporaryDirectory() as scratch:
        live_results, live_s, _live_stats, live_run = _run(
            "batch", live_dir=scratch)
    return {
        "task": (task_results, task_s),
        "batch": (batch_results, batch_s),
        "live": (live_results, live_s, live_run.snapshots),
        "batch_stats": batch_stats,
    }


def test_dispatch_perf_smoke(benchmark, write_artifact):
    outcome = benchmark.pedantic(collect, rounds=1, iterations=1)
    task_results, task_s = outcome["task"]
    batch_results, batch_s = outcome["batch"]
    live_results, live_s, live_snapshots = outcome["live"]
    stats = outcome["batch_stats"]
    speedup = task_s / batch_s
    live_overhead = live_s / batch_s

    # Byte-identical verdicts across schedules — the whole point of
    # sharing one TaskLedger between the execution strategies.
    assert _verdict_bytes(batch_results) == _verdict_bytes(task_results)
    # The live telemetry plane observes but never participates: with a
    # publisher active the verdicts stay byte-identical ...
    assert _verdict_bytes(live_results) == _verdict_bytes(batch_results)
    assert live_snapshots > 0, "live plane never published a snapshot"
    # ... and (on the full configuration, where noise is amortized)
    # publishing costs under 2% of wall clock.
    if ITEMS >= 500:
        assert live_overhead <= MAX_LIVE_OVERHEAD, (
            f"live plane cost {(live_overhead - 1) * 100:.1f}% over the "
            f"plain batch run (budget "
            f"{(MAX_LIVE_OVERHEAD - 1) * 100:.0f}%)")
    # The batch scheduler actually batched (not 1 task per dispatch).
    assert stats.scheduler_batches > 0
    assert stats.scheduler_batch_items == ITEMS
    assert stats.scheduler_batches < ITEMS, (
        "adaptive batching degenerated to one item per batch")
    # The gate: dispatch overhead must be amortized away.
    assert speedup >= MIN_SPEEDUP, (
        f"batch schedule only {speedup:.2f}x faster than "
        f"fork-per-attempt over {ITEMS} items (need {MIN_SPEEDUP}x)")

    payload = {
        "protocol": "matching-ex4.2",
        "items": ITEMS,
        "jobs": JOBS,
        "micro_sizes": list(MICRO_SIZES),
        "task_s": round(task_s, 4),
        "batch_s": round(batch_s, 4),
        "speedup": round(speedup, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "live_s": round(live_s, 4),
        "live_overhead": round(live_overhead, 4),
        "live_snapshots": live_snapshots,
        "scheduler": {
            "batches": stats.scheduler_batches,
            "batch_items": stats.scheduler_batch_items,
            "mean_batch_size": round(
                stats.scheduler_batch_items
                / max(1, stats.scheduler_batches), 2),
            "steals": stats.scheduler_steals,
            "requeued": stats.scheduler_requeued,
        },
    }
    (REPO_ROOT / "BENCH_dispatch.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "dispatch_overhead.txt",
        f"{ITEMS} micro tasks @ jobs={JOBS}\n"
        f"  schedule=task  {task_s * 1e3:9.1f} ms\n"
        f"  schedule=batch {batch_s * 1e3:9.1f} ms  "
        f"({speedup:.1f}x, {payload['scheduler']['batches']} batches, "
        f"mean {payload['scheduler']['mean_batch_size']} items)\n"
        f"  batch + live   {live_s * 1e3:9.1f} ms  "
        f"({(live_overhead - 1) * 100:+.1f}%, "
        f"{live_snapshots} snapshots)")
