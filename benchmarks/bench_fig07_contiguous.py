"""F7 — Figure 7: enablement dynamics of a contiguous livelock.

Reproduces the K=6, |E|=3 scenario: the rightmost enablement of the
adjacent block propagates; after K-|E| propagations the block reappears
shifted one position against the propagation direction; K rounds rotate
it fully around the ring.
"""

from repro.core.contiguous import ContiguousLivelockModel


def test_fig07_contiguous_livelock_dynamics(benchmark, write_artifact):
    model = ContiguousLivelockModel(6, 3)

    states = benchmark(model.run, model.steps_per_rotation)

    # Lemma 5.5: |E| is conserved in every state.
    assert all(len(s.enabled) == 3 for s in states)
    # One round = K - |E| = 3 propagations, block shifted left by one.
    assert states[0].enabled == frozenset({0, 1, 2})
    assert states[3].enabled == frozenset({5, 0, 1})
    # Full rotation after K * (K - |E|) = 18 steps.
    assert model.steps_per_rotation == 18
    assert states[-1].enabled == states[0].enabled

    lines = [f"step {i:2d}: {state.render()}"
             for i, state in enumerate(states[:model.steps_per_round * 2
                                              + 1])]
    write_artifact("fig07_contiguous.txt",
                   "K=6, |E|=3 — two rounds of propagation\n"
                   + "\n".join(lines))
