"""E1 — extension: the chain-topology analyses (paper future work §8).

Regenerates the chain results: the exact boundary-walk deadlock
analysis, the termination certificate, and the ring-vs-chain 2-coloring
contrast (impossible on rings, synthesized and exactly certified on
chains).
"""

from repro.checker import check_instance
from repro.core import synthesize_convergence
from repro.core.chains import (
    ChainDeadlockAnalyzer,
    ChainVerdict,
    synthesize_chain_convergence,
    verify_chain_convergence,
)
from repro.protocols import chain_broadcast, chain_coloring, two_coloring
from repro.viz import render_table


def run_extension():
    # Ring: failure (the paper's Figure 11 walkthrough).
    ring = synthesize_convergence(two_coloring())
    assert not ring.succeeded

    # Chain: success, exact certificate, global confirmation.
    chain = synthesize_chain_convergence(chain_coloring(2))
    assert chain.succeeded
    report = verify_chain_convergence(chain.protocol)
    assert report.verdict is ChainVerdict.CONVERGES
    rows = [("2-coloring", "ring", "synthesis failure", "-")]
    for size in (2, 4, 6):
        global_report = check_instance(chain.protocol.instantiate(size))
        assert global_report.self_stabilizing
    rows.append(("2-coloring", "chain", "synthesized "
                 + "+".join(t.label for t in chain.chosen),
                 "exact: converges for every length"))

    # Broadcast: deadlock-free + terminating => exact convergence.
    broadcast = chain_broadcast()
    analyzer = ChainDeadlockAnalyzer(broadcast)
    assert analyzer.analyze().deadlock_free
    assert analyzer.deadlocked_chain_sizes(6) == set()
    verdict = verify_chain_convergence(broadcast)
    assert verdict.verdict is ChainVerdict.CONVERGES
    rows.append(("broadcast", "chain", "as given",
                 "exact: converges, bound K(K+1)/2"))

    # Per-size prediction matches global enumeration.
    empty = chain_coloring(2)
    predicted = ChainDeadlockAnalyzer(empty).deadlocked_chain_sizes(5)
    for size in range(1, 6):
        instance = empty.instantiate(size)
        has_deadlock = any(
            instance.is_deadlock(s) and not instance.invariant_holds(s)
            for s in instance.states())
        assert (size in predicted) == has_deadlock
    rows.append(("2-coloring (empty)", "chain",
                 f"deadlocked sizes {sorted(predicted)}",
                 "matches global enumeration K=1..5"))
    return rows


def test_e1_chain_extension(benchmark, write_artifact):
    rows = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    write_artifact(
        "e1_chain_extension.txt",
        render_table(["workload", "topology", "outcome", "guarantee"],
                     rows))
