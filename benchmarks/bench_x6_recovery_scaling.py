"""X6 — recovery-time scaling of the synthesized protocols.

The classic empirical companion of a stabilization proof: how fast is
recovery, and how does it scale with the ring size?  For the two
synthesized solutions we measure, per size, the mean/max recovery steps
over random starts under the random daemon, the asynchronous-rounds
count, and the certified worst-daemon bound (from the ranking
certificate, where the state space allows).

Shape assertions: recovery steps grow with K but stay linear-ish (well
under the state-space bound), and measured rounds never exceed the step
counts.
"""

from repro.checker import StateGraph, compute_ranking
from repro.engine import EngineStats
from repro.protocols import stabilizing_agreement, stabilizing_sum_not_two
from repro.simulation import (
    RandomScheduler,
    convergence_study,
    random_state,
    run,
    rounds_to_convergence,
)
from repro.viz import render_table

SIZES = (4, 6, 8, 10)
SAMPLES = 120


def study():
    import random as random_module

    rows = []
    kernel = EngineStats()
    for factory in (stabilizing_agreement, stabilizing_sum_not_two):
        protocol = factory()
        for size in SIZES:
            instance = protocol.instantiate(size)
            stats = convergence_study(instance, samples=SAMPLES, seed=7)
            assert stats.converged == SAMPLES  # certified: must recover
            rng = random_module.Random(size)
            rounds = []
            for seed in range(30):
                trace = run(instance, random_state(instance, rng),
                            RandomScheduler(seed=seed), max_steps=2000)
                measured = rounds_to_convergence(instance, trace)
                if measured is not None:
                    rounds.append(measured)
            if size <= 6:  # ranking needs the full state graph
                graph = StateGraph(instance)
                kernel.absorb_kernel(graph.kernel_stats)
                certificate = compute_ranking(graph)
                worst = certificate.max_rank
                assert stats.max_steps <= worst
            else:
                worst = "-"
            mean_rounds = sum(rounds) / len(rounds)
            assert max(rounds) <= stats.max_steps or not rounds
            rows.append((protocol.name, size,
                         f"{stats.mean_steps:.1f}", stats.max_steps,
                         f"{mean_rounds:.1f}", worst))
    return rows, kernel


def test_x6_recovery_scaling(benchmark, write_artifact):
    rows, kernel = benchmark.pedantic(study, rounds=1, iterations=1)
    # growth shape: mean steps increase with K for each protocol
    for name in {r[0] for r in rows}:
        means = [float(r[2]) for r in rows if r[0] == name]
        assert means[-1] > means[0]
    # Ranking certificates ran on kernel-built state graphs.
    assert kernel.states_encoded > 0
    write_artifact(
        "x6_recovery_scaling.txt",
        render_table(["protocol", "K", "mean steps", "max steps",
                      "mean rounds", "worst-daemon bound"], rows)
        + f"\nranking state graphs: {kernel.states_encoded} states "
        f"kernel-encoded @ {kernel.encode_rate / 1e3:.0f}k states/s")
