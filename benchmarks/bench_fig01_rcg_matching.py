"""F1 — Figure 1: the Right Continuation Graph of maximal matching.

Regenerates the continuation relation over all 27 local states of the
bidirectional matching process (Example 4.1) and emits it as DOT and as
an adjacency listing.
"""

from repro.core import build_rcg
from repro.protocols import matching_base
from repro.viz import adjacency_listing, rcg_to_dot


def test_fig01_rcg_of_maximal_matching(benchmark, write_artifact):
    protocol = matching_base()

    rcg = benchmark(build_rcg, protocol.space)

    # Figure 1's shape: 27 vertices, 3 right continuations each.
    assert len(rcg) == 27
    assert rcg.edge_count() == 81
    for node in rcg.nodes:
        assert len(list(rcg.successors(node))) == 3

    legitimate = protocol.legitimate_states()
    assert len(legitimate) == 7  # the LC_r disjuncts of Example 4.1
    write_artifact("fig01_rcg_matching.dot",
                   rcg_to_dot(rcg, legitimate, title="Figure 1"))
    write_artifact("fig01_rcg_matching.txt",
                   adjacency_listing(rcg, legitimate))
