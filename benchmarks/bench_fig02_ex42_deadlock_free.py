"""F2 — Figure 2: the deadlock-induced RCG of Example 4.2.

The induced subgraph over the local deadlocks of the generalizable
matching protocol contains no directed cycle through an illegitimate
local deadlock — hence deadlock-freedom for every ring size
(Theorem 4.2).
"""

from repro.core.deadlock import DeadlockAnalyzer
from repro.protocols import generalizable_matching
from repro.viz import adjacency_listing, rcg_to_dot


def test_fig02_example42_is_deadlock_free_for_all_k(benchmark,
                                                    write_artifact):
    protocol = generalizable_matching()

    def analyze():
        return DeadlockAnalyzer(protocol).analyze()

    report = benchmark(analyze)

    assert report.deadlock_free
    assert report.witness_cycles == ()
    assert len(report.local_deadlocks) == 11
    assert len(report.illegitimate_deadlocks) == 4

    legitimate = protocol.legitimate_states()
    write_artifact("fig02_ex42_deadlock_rcg.dot",
                   rcg_to_dot(report.induced_rcg, legitimate,
                              title="Figure 2"))
    write_artifact("fig02_ex42_deadlock_rcg.txt",
                   adjacency_listing(report.induced_rcg, legitimate))
