"""Artifact-plane smoke: warm starts and spawn-dispatch parity.

PR 7 added the zero-copy artifact plane: compiled kernels, localkernel
skeletons and per-K packed state spaces are serialized once into
``.art`` files and mmap-attached by every later process instead of
being recompiled.  This benchmark runs the X2 matching sweep twice
against one cache directory — cold (empty store, everything compiled
and published) and warm (result cache + artifacts attached) — gates on
the warm speedup, then replays a warm batch sweep under both ``fork``
and ``spawn`` start methods to gate the spawn dispatch overhead, and
emits ``BENCH_artifacts.json`` at the repository root.

``REPRO_BENCH_MAX_K`` sizes the warm/cold sweep (default 8).
``REPRO_BENCH_PARITY_K`` sizes the spawn-parity sweep (default 10 — at
that size per-K compute dominates and the ≤1.5× acceptance bound
applies; smaller CI runs gate at ≤4× because interpreter start-up is
then a fixed cost the sweep cannot amortize).
"""

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

import repro.engine.artifacts as artifact_plane
from repro.checker.sweep import sweep_verify
from repro.engine import ResultCache
from repro.engine.pool import START_METHOD_ENV
from repro.protocols import generalizable_matching
from repro.serialization import global_report_to_dict

MAX_K = int(os.environ.get("REPRO_BENCH_MAX_K", "8"))
PARITY_K = int(os.environ.get("REPRO_BENCH_PARITY_K", "10"))
JOBS = 2
REPO_ROOT = Path(__file__).resolve().parent.parent
MIN_WARM_SPEEDUP = 3.0
#: ≤1.5× is the acceptance bound when compute dominates (K ≥ 10); a
#: shrunken CI parity sweep pays the same absolute interpreter start-up
#: against far less work, so it gates at ≤4× (still catches a broken
#: attach path, which recompiles everything and lands far above that).
MAX_SPAWN_RATIO = 1.5 if PARITY_K >= 10 else 4.0


def _verdict_bytes(result) -> bytes:
    """The cache-invariant content of a sweep, serialized.

    Run-local ``stats`` are timing-dependent by design and excluded;
    every verdict the analysis produced must match byte for byte.
    """
    rows = []
    for report in result.reports:
        row = global_report_to_dict(report)
        row.pop("stats", None)
        rows.append(row)
    return json.dumps(rows, sort_keys=True).encode("ascii")


def _timed_sweep(up_to, *, root=None, cache=None, method=None,
                 schedule="auto", jobs=JOBS):
    """One sweep of the matching protocol, optionally against a store."""
    previous = os.environ.get(START_METHOD_ENV)
    if method is not None:
        os.environ[START_METHOD_ENV] = method
    store = (artifact_plane.ArtifactStore(Path(root) / "artifacts")
             if root is not None else None)
    try:
        began = time.perf_counter()
        with artifact_plane.plane(store):
            result = sweep_verify(generalizable_matching(), up_to=up_to,
                                  jobs=jobs, cache=cache, schedule=schedule)
        elapsed = time.perf_counter() - began
    finally:
        if store is not None:
            store.close()
        if method is not None:
            if previous is None:
                os.environ.pop(START_METHOD_ENV, None)
            else:
                os.environ[START_METHOD_ENV] = previous
    return result, elapsed


def collect(tmp_path):
    reference, _ = _timed_sweep(MAX_K)  # no store, no cache

    warm_root = tmp_path / "warmcold"
    cold, cold_s = _timed_sweep(MAX_K, root=warm_root,
                                cache=ResultCache(warm_root))
    warm, warm_s = _timed_sweep(MAX_K, root=warm_root,
                                cache=ResultCache(warm_root))

    parity_root = tmp_path / "parity"
    _timed_sweep(PARITY_K, root=parity_root, method="fork",
                 schedule="batch")  # publish everything once
    fork, fork_s = _timed_sweep(PARITY_K, root=parity_root, method="fork",
                                schedule="batch")
    spawn, spawn_s = _timed_sweep(PARITY_K, root=parity_root,
                                  method="spawn", schedule="batch")
    return {
        "reference": reference,
        "cold": (cold, cold_s),
        "warm": (warm, warm_s),
        "fork": (fork, fork_s),
        "spawn": (spawn, spawn_s),
    }


@pytest.mark.skipif(
    "spawn" not in multiprocessing.get_all_start_methods(),
    reason="spawn start method unavailable")
def test_artifacts_perf_smoke(benchmark, write_artifact, tmp_path):
    outcome = benchmark.pedantic(lambda: collect(tmp_path),
                                 rounds=1, iterations=1)
    cold, cold_s = outcome["cold"]
    warm, warm_s = outcome["warm"]
    fork, fork_s = outcome["fork"]
    spawn, spawn_s = outcome["spawn"]
    warm_speedup = cold_s / warm_s
    spawn_ratio = spawn_s / fork_s

    # Caching layers must never change a verdict.
    baseline = _verdict_bytes(outcome["reference"])
    assert _verdict_bytes(cold) == baseline
    assert _verdict_bytes(warm) == baseline
    assert _verdict_bytes(spawn) == _verdict_bytes(fork)

    # The cold run compiled and published; the warm run only attached.
    assert cold.stats.artifact_stores > 0
    assert cold.stats.artifact_misses > 0
    assert warm.stats.artifact_misses == 0
    # Spawned workers mapped the published artifacts instead of
    # recompiling — the whole point of the artifact plane.
    assert spawn.stats.parallel and spawn.stats.pool_fallbacks == 0
    assert spawn.stats.artifact_hits > 0
    assert spawn.stats.artifact_misses == 0
    assert spawn.stats.compile_seconds == 0.0

    # The gates.
    assert warm_speedup >= MIN_WARM_SPEEDUP, (
        f"warm sweep only {warm_speedup:.2f}x faster than cold "
        f"(need {MIN_WARM_SPEEDUP}x)")
    assert spawn_ratio <= MAX_SPAWN_RATIO, (
        f"spawn batch dispatch {spawn_ratio:.2f}x of fork "
        f"(allowed {MAX_SPAWN_RATIO}x)")

    payload = {
        "protocol": "matching-ex4.2",
        "jobs": JOBS,
        "max_k": MAX_K,
        "parity_k": PARITY_K,
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "warm_speedup": round(warm_speedup, 2),
        "min_warm_speedup_gate": MIN_WARM_SPEEDUP,
        "fork_s": round(fork_s, 4),
        "spawn_s": round(spawn_s, 4),
        "spawn_ratio": round(spawn_ratio, 2),
        "max_spawn_ratio_gate": MAX_SPAWN_RATIO,
        "artifacts": {
            "cold_misses": cold.stats.artifact_misses,
            "cold_stores": cold.stats.artifact_stores,
            "warm_hits": warm.stats.artifact_hits,
            "spawn_hits": spawn.stats.artifact_hits,
        },
    }
    (REPO_ROOT / "BENCH_artifacts.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "artifact_plane.txt",
        f"matching sweep to K={MAX_K} @ jobs={JOBS}\n"
        f"  cold (compile+publish) {cold_s * 1e3:9.1f} ms\n"
        f"  warm (attach+cache)    {warm_s * 1e3:9.1f} ms  "
        f"({warm_speedup:.1f}x)\n"
        f"batch sweep to K={PARITY_K}, warm store\n"
        f"  fork  {fork_s * 1e3:9.1f} ms\n"
        f"  spawn {spawn_s * 1e3:9.1f} ms  "
        f"({spawn_ratio:.2f}x of fork, "
        f"{spawn.stats.artifact_hits} attaches, 0 compiles)")
