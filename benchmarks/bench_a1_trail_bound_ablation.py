"""A1 — ablation: the contiguous-trail search bound ``max_ring_size``.

The trail search sweeps round patterns for ``(K, |E|)`` up to a bound.
Because a trail found at parameters (K, |E|) recurs at multiples, small
bounds already capture the witnesses of every paper example; this
ablation measures how the bound affects (a) verdicts and (b) cost, and
asserts verdict stability from the smallest bound that finds each
witness.
"""

from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.protocols import (
    livelock_agreement,
    stabilizing_agreement,
    stabilizing_sum_not_two,
)
from repro.viz import render_table

BOUNDS = (3, 5, 7, 9, 11)
CASES = (
    (stabilizing_agreement, LivelockVerdict.CERTIFIED_FREE),
    (stabilizing_sum_not_two, LivelockVerdict.CERTIFIED_FREE),
    (livelock_agreement, LivelockVerdict.UNKNOWN),
)


def run_ablation():
    rows = []
    for factory, expected in CASES:
        protocol = factory()
        verdicts = []
        for bound in BOUNDS:
            report = LivelockCertifier(
                protocol, max_ring_size=bound).analyze()
            verdicts.append(report.verdict)
        # Verdicts are monotone in the bound (a larger sweep can only
        # find more witnesses) and stable across this range.
        assert all(v is expected for v in verdicts), protocol.name
        rows.append((protocol.name,
                     *[v.value.split("-")[0] for v in verdicts]))
    return rows


def test_a1_trail_bound_ablation(benchmark, write_artifact):
    rows = benchmark(run_ablation)
    write_artifact(
        "a1_trail_bound_ablation.txt",
        render_table(["protocol"] + [f"bound={b}" for b in BOUNDS],
                     rows))


def test_a1_cost_grows_with_bound(benchmark, write_artifact):
    import time

    protocol = stabilizing_sum_not_two()

    def certify_with(bound):
        return LivelockCertifier(protocol, max_ring_size=bound).analyze()

    benchmark(certify_with, 9)

    timings = []
    for bound in BOUNDS:
        start = time.perf_counter()
        certify_with(bound)
        timings.append((bound, f"{(time.perf_counter()-start)*1e3:.1f}"))
    write_artifact("a1_trail_bound_cost.txt",
                   render_table(["max_ring_size", "certify time (ms)"],
                                timings))
