"""Synthesis search perf smoke: flat combo enumeration vs lattice walk.

Times the Section 6 candidate sweep on enlarged coloring candidate
pools (the n-coloring pool grows as ``(n-1)^n`` combinations) with both
``--search`` modes over the same compiled localkernel backend, asserts
byte-identical verdict tables, gates on the lattice walk being at least
``REPRO_BENCH_SYNTHSEARCH_MIN_SPEEDUP`` (default 5) times faster in
aggregate, and emits ``BENCH_synthsearch.json`` at the repository root
so regressions are diffable.

Each timing round constructs a fresh protocol object and synthesizer,
so both modes pay state indexing, skeleton compilation and support
closure from scratch inside the measurement — the comparison is
cold-vs-cold, and the flat side keeps the same per-synthesizer trail
memo it always had.

``REPRO_BENCH_SYNTHSEARCH_SMALL=1`` drops the largest pool (CI smoke
uses this with a relaxed 3x gate; the full workload keeps the 5x gate).
"""

import json
import os
import time
from pathlib import Path

from repro.core.synthesis import Synthesizer
from repro.protocols.coloring import coloring
from repro.viz import render_table

REPO_ROOT = Path(__file__).resolve().parent.parent
ROUNDS = 3  # best-of-N to damp scheduler noise
MIN_SPEEDUP = float(
    os.environ.get("REPRO_BENCH_SYNTHSEARCH_MIN_SPEEDUP", "5"))
SMALL = os.environ.get("REPRO_BENCH_SYNTHSEARCH_SMALL") == "1"
COLORS = (4, 5) if SMALL else (4, 5, 6)


def _timed_sweep(colors, search):
    """Best-of-ROUNDS full candidate sweep, cold synthesizer each round."""
    best_s, verdicts, stats = None, None, None
    for _ in range(ROUNDS):
        synthesizer = Synthesizer(coloring(colors), search=search)
        began = time.perf_counter()
        rows = synthesizer.evaluate_all_combinations()
        elapsed = time.perf_counter() - began
        if best_s is None or elapsed < best_s:
            best_s, verdicts = elapsed, rows
            stats = synthesizer.stats
    return verdicts, best_s, stats


def _comparable(result):
    """The search-independent surface of a SynthesisResult."""
    return (
        result.outcome,
        result.resolve,
        result.chosen,
        tuple((r.transitions, r.reason) for r in result.rejected),
        result.resolve_sets_tried,
        None if result.protocol is None else result.protocol.name,
    )


def collect():
    rows = []
    for colors in COLORS:
        flat, flat_s, _ = _timed_sweep(colors, "flat")
        lattice, lattice_s, stats = _timed_sweep(colors, "lattice")
        assert lattice == flat, f"{colors}-coloring sweep diverged"
        end_flat = Synthesizer(coloring(colors), search="flat").synthesize()
        end_lattice = Synthesizer(coloring(colors),
                                  search="lattice").synthesize()
        assert _comparable(end_lattice) == _comparable(end_flat), \
            f"{colors}-coloring synthesize() diverged"
        rows.append({
            "protocol": f"{colors}-coloring",
            "combinations": len(lattice),
            "flat_s": round(flat_s, 6),
            "lattice_s": round(lattice_s, 6),
            "speedup": round(flat_s / lattice_s, 2),
            "combos_pruned": stats.combos_pruned,
            "full_evaluations": stats.full_evaluations,
            "delta_reuses": stats.delta_reuses,
            "checkpoint_bytes": stats.checkpoint_bytes,
        })
    return rows


def test_synthsearch_perf_smoke(benchmark, write_artifact):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    # The gate: never slower per pool (10% noise allowance on the
    # small ones), >= MIN_SPEEDUP in aggregate.  The aggregate is
    # dominated by the largest pool, which is exactly where the
    # monotone pruning and witness inheritance earn their keep.
    for row in rows:
        assert row["lattice_s"] <= row["flat_s"] * 1.10, row
        assert (row["combos_pruned"] + row["full_evaluations"]
                == row["combinations"]), row
    total_flat = sum(r["flat_s"] for r in rows)
    total_lattice = sum(r["lattice_s"] for r in rows)
    aggregate = total_flat / total_lattice
    assert aggregate >= MIN_SPEEDUP, (aggregate, rows)

    payload = {
        "protocols": [r["protocol"] for r in rows],
        "aggregate_speedup": round(aggregate, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "small_variant": SMALL,
        "results": rows,
    }
    (REPO_ROOT / "BENCH_synthsearch.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "synthsearch_modes.txt",
        render_table(
            ["pool", "combos", "flat", "lattice", "speedup", "pruned",
             "evaluated", "delta reuses"],
            [(r["protocol"],
              r["combinations"],
              f"{r['flat_s'] * 1e3:.1f} ms",
              f"{r['lattice_s'] * 1e3:.1f} ms",
              f"{r['speedup']:.1f}x",
              r["combos_pruned"],
              r["full_evaluations"],
              r["delta_reuses"]) for r in rows]))
