"""F4 — Figure 4: the Local Transition Graph of Example 4.2.

The LTG augments the 27-vertex RCG with the t-arcs induced by actions
A1–A5 (left s-arcs omitted, as in the paper's rendering).
"""

from repro.core import build_ltg
from repro.core.ltg import t_arcs
from repro.protocols import generalizable_matching
from repro.viz import adjacency_listing, ltg_to_dot


def test_fig04_ltg_of_example42(benchmark, write_artifact):
    protocol = generalizable_matching()

    ltg = benchmark(build_ltg, protocol.space)

    assert len(ltg) == 27
    s_count = sum(1 for _u, _v, key in ltg.edges() if key == "s")
    assert s_count == 81
    arcs = t_arcs(ltg)
    assert len(arcs) == len(protocol.space.transitions)
    # every t-arc leaves an enabled (non-deadlock) state
    deadlocks = set(protocol.space.deadlocks())
    assert all(t.source not in deadlocks for t in arcs)
    # A2's nondeterminism: ⟨s,s,s⟩ has two outgoing t-arcs
    sss = protocol.space.state_of("self", "self", "self")
    assert sum(1 for t in arcs if t.source == sss) == 2

    legitimate = protocol.legitimate_states()
    write_artifact("fig04_ltg_ex42.dot",
                   ltg_to_dot(ltg, legitimate, title="Figure 4"))
    write_artifact("fig04_ltg_ex42.txt",
                   adjacency_listing(ltg, legitimate))
