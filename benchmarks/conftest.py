"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates the *content* of one paper figure (or an
in-text claim), asserts its shape, times the underlying computation via
pytest-benchmark, and writes a textual artifact under
``benchmarks/out/`` so the figures can be inspected or diffed.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.obs import export, runtime as obs

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture(autouse=True)
def obs_run_report(request, artifact_dir):
    """Benchmarks emit the same structured run reports the CLI does.

    Each benchmark runs under an ambient observability run; the JSONL
    run log (spans, metrics, events — identical schema to the CLI's
    ``--log-json``) lands next to the figure artifacts in
    ``benchmarks/out/`` as ``<test>.runlog.jsonl``, and the run's final
    counters and timings are folded into ``benchmarks/out/ledger.jsonl``
    so ``repro runs diff`` can compare benchmark runs across commits
    the same way it compares CLI runs.
    """
    if obs.active() is not None:  # pragma: no cover - nested runs
        yield
        return
    with obs.run(request.node.name,
                 benchmark=request.node.nodeid) as run_ctx:
        yield
    safe = re.sub(r"[^A-Za-z0-9._-]+", "_", request.node.name)
    export.write_run_log(artifact_dir / f"{safe}.runlog.jsonl", run_ctx)
    from repro.engine.journal import new_run_id
    from repro.obs import ledger

    record = export.ledger_record_from_run(
        run_ctx, new_run_id(), command=f"bench:{safe}",
        flags={"benchmark": request.node.nodeid})
    ledger.append(artifact_dir / "ledger.jsonl", record)


@pytest.fixture
def write_artifact(artifact_dir):
    def _write(name: str, content: str) -> Path:
        path = artifact_dir / name
        path.write_text(content if content.endswith("\n")
                        else content + "\n")
        return path

    return _write
