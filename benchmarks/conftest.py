"""Shared infrastructure for the figure-reproduction benchmarks.

Every benchmark regenerates the *content* of one paper figure (or an
in-text claim), asserts its shape, times the underlying computation via
pytest-benchmark, and writes a textual artifact under
``benchmarks/out/`` so the figures can be inspected or diffed.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


@pytest.fixture
def write_artifact(artifact_dir):
    def _write(name: str, content: str) -> Path:
        path = artifact_dir / name
        path.write_text(content if content.endswith("\n")
                        else content + "\n")
        return path

    return _write
