"""F11 — Figure 11 / §6.2: 2-coloring cannot be concluded.

Both illegitimate local deadlocks carry continuation self-loops, so both
must be resolved; the only candidate pair {t01, t10} forms the trail
``00 -t01-> 01 -s-> 11 -t10-> 10 -s-> 00`` and is rejected.  The paper
notes this is consistent with the impossibility of self-stabilizing
2-coloring on unidirectional rings [25]; the benchmark additionally
confirms with the global checker that the candidate pair really
livelocks at even sizes.
"""

from repro.checker import check_instance
from repro.core import build_ltg, synthesize_convergence
from repro.core.selfdisabling import action_for_transition
from repro.core.synthesis import SynthesisOutcome
from repro.protocol.actions import LocalTransition
from repro.protocols import two_coloring
from repro.viz import ltg_to_dot, state_label


def test_fig11_two_coloring_failure(benchmark, write_artifact):
    protocol = two_coloring()

    result = benchmark(synthesize_convergence, protocol)

    assert result.outcome is SynthesisOutcome.FAILURE
    assert {state_label(s) for s in result.resolve} == {"00", "11"}
    assert len(result.rejected) == 1
    rejection = result.rejected[0]
    assert len(rejection.transitions) == 2

    # The rejected pair genuinely livelocks on even rings.
    space = protocol.space

    def t(a, b, new):
        source = space.state_of(a, b)
        return LocalTransition(source, source.replace_own((new,)),
                               f"t{b}{new}")

    pair = [t(0, 0, 1), t(1, 1, 0)]
    candidate = protocol.extended_with(
        [action_for_transition(x, x.label) for x in pair])
    report = check_instance(candidate.instantiate(4))
    assert report.livelock_cycles  # the trail is real here, not spurious

    write_artifact("fig11_two_coloring.txt",
                   result.summary()
                   + "\n\nK=4 livelock cycles found globally: "
                   + str(len(report.livelock_cycles)))
    write_artifact(
        "fig11_ltg_two_coloring.dot",
        ltg_to_dot(build_ltg(candidate.space),
                   candidate.legitimate_states(), title="Figure 11"))
