"""E4 — the complete landscape of binary agreement protocols.

The binary unidirectional ring with ``LC_r = (x_r = x_{r-1})`` admits
exactly four possible local transitions (one own-cell rewrite per local
state).  This study enumerates **every** self-disabling subset,
classifies each with the local analyses, and cross-checks every verdict
against global model checking at K = 2..5 — a small but *complete*
census of a protocol space, something only the local (all-K) analyses
make meaningful.

Expected landscape: the empty set deadlocks; {t01}, {t10} are the two
§6.2 solutions (converge for every K); subsets resolving only one
illegitimate deadlock... do not exist beyond those (self-disabling
filtering removes mixed sets touching legitimate states' partners), and
every certified set must stabilize globally.
"""

from itertools import combinations

from repro.core import verify_convergence
from repro.core.deadlock import DeadlockAnalyzer
from repro.checker import check_instance
from repro.core.selfdisabling import action_for_transition
from repro.protocol.actions import LocalTransition
from repro.protocols import agreement
from repro.viz import render_table, state_label


def all_transitions(space):
    result = []
    for state in space.states:
        for cell in space.cells:
            if cell != state.own:
                result.append(LocalTransition(
                    state, state.replace_own(cell),
                    f"t{state_label(state)}"))
    return result


def landscape():
    base = agreement()
    transitions = all_transitions(base.space)
    assert len(transitions) == 4
    rows = []
    verdict_counts: dict[str, int] = {}
    for size in range(len(transitions) + 1):
        for combo in combinations(transitions, size):
            sources = {t.source for t in combo}
            if any(t.target in sources for t in combo):
                continue  # not self-disabling
            protocol = base.with_actions(
                tuple(action_for_transition(t, t.label) for t in combo))
            report = verify_convergence(protocol)
            verdict = report.verdict.value
            # cross-check against brute force
            for ring_size in (2, 3, 4, 5):
                global_report = check_instance(
                    protocol.instantiate(ring_size))
                if verdict == "converges":
                    assert global_report.self_stabilizing, (combo,
                                                            ring_size)
                if verdict == "diverges":
                    pass  # witness may live at another size
            if verdict == "diverges":
                sizes = DeadlockAnalyzer(protocol) \
                    .deadlocked_ring_sizes(5)
                assert sizes, combo
                witnessed = check_instance(
                    protocol.instantiate(min(sizes)))
                assert witnessed.deadlocks_outside
            verdict_counts[verdict] = verdict_counts.get(verdict, 0) + 1
            rows.append((" ".join(t.label for t in combo) or "(empty)",
                         verdict,
                         report.closure_ok))
    return rows, verdict_counts


def test_e4_binary_landscape(benchmark, write_artifact):
    rows, counts = benchmark.pedantic(landscape, rounds=1, iterations=1)
    # The census: self-disabling subsets of 4 transitions.
    assert len(rows) >= 8
    assert counts.get("converges", 0) >= 2  # {t01}-like and {t10}-like
    assert counts.get("diverges", 0) >= 1   # the empty protocol
    write_artifact(
        "e4_binary_landscape.txt",
        f"verdict census: {counts}\n\n"
        + render_table(["transition set", "verdict (all K)",
                        "closure"], rows))
