"""X3 — the reproduction's summary table.

The paper has no numbered tables; this benchmark materializes the
implicit one — a row per case study with the verdict of each analysis
and the synthesis outcome — and asserts every cell against the paper's
narrative.
"""

from repro.core import verify_convergence
from repro.core.synthesis import SynthesisOutcome, synthesize_convergence
from repro.protocols import (
    agreement,
    generalizable_matching,
    gouda_acharya_matching,
    livelock_agreement,
    nongeneralizable_matching,
    stabilizing_agreement,
    stabilizing_sum_not_two,
    sum_not_two,
    three_coloring,
    two_coloring,
)
from repro.viz import render_table

EXPECTED = [
    # (factory, expected convergence verdict, expected synthesis outcome)
    (generalizable_matching, "unknown", None),   # bidirectional: Thm 5.14
    (nongeneralizable_matching, "diverges", None),   # contiguous-only
    (gouda_acharya_matching, "diverges", None),
    (agreement, "diverges", SynthesisOutcome.SUCCESS_NPL),
    (livelock_agreement, "unknown", None),
    (stabilizing_agreement, "converges", None),
    (two_coloring, "diverges", SynthesisOutcome.FAILURE),
    (three_coloring, "diverges", SynthesisOutcome.FAILURE),
    (sum_not_two, "diverges", SynthesisOutcome.SUCCESS_PL),
    (stabilizing_sum_not_two, "converges", None),
]


def build_table():
    rows = []
    for factory, expected_verdict, expected_synthesis in EXPECTED:
        protocol = factory()
        report = verify_convergence(protocol)
        assert report.verdict.value == expected_verdict, protocol.name
        if expected_synthesis is None:
            synthesis = "-"
        else:
            result = synthesize_convergence(protocol)
            assert result.outcome is expected_synthesis, protocol.name
            synthesis = result.outcome.value
        rows.append((
            protocol.name,
            "uni" if protocol.unidirectional else "bi",
            f"{len(protocol.space)} states",
            report.verdict.value,
            "yes" if report.deadlock.deadlock_free else "no",
            report.livelock.verdict.value if report.livelock else "skip",
            synthesis,
        ))
    return rows


def test_x3_summary_table(benchmark, write_artifact):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    assert len(rows) == len(EXPECTED)
    write_artifact(
        "x3_summary.txt",
        render_table(["protocol", "ring", "local space",
                      "verdict (all K)", "deadlock-free",
                      "livelock verdict", "synthesis"], rows))
