"""X5 — synthesis cost: local methodology vs fixed-K global search.

Section 6 claims local-state-space synthesis "enables a significant
improvement in the time/space complexity of automated design".  This
benchmark times both synthesizers on the same problems:

* the local methodology runs once, touches only the representative
  process's states, and its output is certified for **every** K;
* the STSyn-like global baseline must pick a K, explore ``|D|^K``
  global states per search node, be re-run per K — and its output
  carries no guarantee beyond that K.
"""

import time

from repro.checker import GlobalSynthesizer, check_instance
from repro.core.synthesis import synthesize_convergence
from repro.protocols import agreement, sum_not_two
from repro.viz import render_table

SIZES = (4, 5, 6)


def compare():
    rows = []
    stat_lines = []
    for factory in (agreement, sum_not_two):
        protocol = factory()
        start = time.perf_counter()
        local = synthesize_convergence(protocol)
        local_ms = (time.perf_counter() - start) * 1e3
        assert local.succeeded
        assert local.stats is not None
        stat_lines.append(f"{protocol.name}: {local.stats.summary()}")
        rows.append((protocol.name, "local (all K)", f"{local_ms:.1f}",
                     "certified for every ring size"))
        for size in SIZES:
            start = time.perf_counter()
            result = GlobalSynthesizer(protocol, ring_size=size,
                                       seed=0,
                                       max_expansions=4000).synthesize()
            global_ms = (time.perf_counter() - start) * 1e3
            assert result.success
            assert check_instance(
                result.protocol.instantiate(size)).self_stabilizing
            rows.append((protocol.name, f"global K={size}",
                         f"{global_ms:.1f}",
                         f"guarantee limited to K={size}"))
    return rows, stat_lines


def test_x5_synthesis_cost(benchmark, write_artifact):
    rows, stat_lines = benchmark.pedantic(compare, rounds=1, iterations=1)
    # shape assertion: local cost does not grow with K (there is no K);
    # the global baseline's cost at the largest size exceeds its cost
    # at the smallest for at least one workload.
    by_label = {}
    for name, mode, ms, _note in rows:
        by_label[(name, mode)] = float(ms)
    grew = any(
        by_label[(name, f"global K={SIZES[-1]}")] >
        by_label[(name, f"global K={SIZES[0]}")]
        for name in {r[0] for r in rows})
    assert grew
    write_artifact(
        "x5_synthesis_cost.txt",
        render_table(["protocol", "synthesizer", "time (ms)",
                      "guarantee"], rows)
        + "\nlocal-methodology engine counters:\n  "
        + "\n  ".join(stat_lines))
