"""A3 — the fuzzing audit as a benchmark.

Random protocols, local verdicts vs brute force (Theorem 4.2 exactness,
Theorem 5.14 soundness).  The audit must come back clean; the benchmark
reports its throughput, serial and parallel (per-protocol audits are
independent work items for the ``repro.engine`` pool).
"""

import time

from repro.randomgen import audit_theorems
from repro.viz import render_table


def test_a3_fuzz_audit_clean(benchmark, write_artifact):
    report = benchmark.pedantic(
        lambda: audit_theorems(samples=40, max_ring_size=4, seed=123),
        rounds=1, iterations=1)
    assert report.clean
    assert report.samples == 40

    serial_s = report.stats.total_seconds
    began = time.perf_counter()
    parallel = audit_theorems(samples=40, max_ring_size=4, seed=123,
                              jobs=2)
    parallel_s = time.perf_counter() - began
    assert parallel.clean
    assert (parallel.samples, parallel.certificates_issued,
            parallel.deadlock_checks, parallel.discrepancies) == (
        report.samples, report.certificates_issued,
        report.deadlock_checks, report.discrepancies)

    # Brute force rides the compiled kernel: every explored state was
    # kernel-encoded, and the counters travel on the report stats.
    stats = report.stats
    assert stats.states_encoded == stats.states_explored > 0

    write_artifact(
        "a3_fuzzing.txt",
        report.summary() + "\n\n"
        + render_table(
            ["metric", "value"],
            [("samples", report.samples),
             ("per-size deadlock comparisons", report.deadlock_checks),
             ("livelock certificates confirmed",
              report.certificates_issued),
             ("discrepancies", len(report.discrepancies)),
             ("serial audit wall time", f"{serial_s * 1e3:.1f} ms"),
             ("parallel audit wall time (jobs=2)",
              f"{parallel_s * 1e3:.1f} ms"),
             ("kernel-encoded states", stats.states_encoded),
             ("kernel encode rate",
              f"{stats.encode_rate / 1e3:.0f}k states/s"),
             ("kernel compile time",
              f"{stats.compile_seconds * 1e3:.1f} ms")]))
