"""A3 — the fuzzing audit as a benchmark.

Random protocols, local verdicts vs brute force (Theorem 4.2 exactness,
Theorem 5.14 soundness).  The audit must come back clean; the benchmark
reports its throughput.
"""

from repro.randomgen import audit_theorems
from repro.viz import render_table


def test_a3_fuzz_audit_clean(benchmark, write_artifact):
    report = benchmark.pedantic(
        lambda: audit_theorems(samples=40, max_ring_size=4, seed=123),
        rounds=1, iterations=1)
    assert report.clean
    assert report.samples == 40
    write_artifact(
        "a3_fuzzing.txt",
        report.summary() + "\n\n"
        + render_table(
            ["metric", "value"],
            [("samples", report.samples),
             ("per-size deadlock comparisons", report.deadlock_checks),
             ("livelock certificates confirmed",
              report.certificates_issued),
             ("discrepancies", len(report.discrepancies))]))
