"""F9 — Figure 9 / §6.1: the 3-coloring synthesis walkthrough.

Every step of the methodology: Resolve = {00, 11, 22} (all self-looped
in the RCG), 2³ candidate combinations, every one of which contains a
pseudo-livelock forming a contiguous trail — synthesis declares failure.
"""

from repro.core import build_ltg, synthesize_convergence
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.synthesis import SynthesisOutcome
from repro.protocols import three_coloring
from repro.viz import ltg_to_dot, render_table, state_label


def test_fig09_three_coloring_fails(benchmark, write_artifact):
    protocol = three_coloring()

    result = benchmark(synthesize_convergence, protocol)

    assert result.outcome is SynthesisOutcome.FAILURE
    assert {state_label(s) for s in result.resolve} == {"00", "11", "22"}
    # Step 2: every illegitimate deadlock has a continuation self-loop.
    analyzer = DeadlockAnalyzer(protocol)
    induced = analyzer.analyze().induced_rcg
    for state in result.resolve:
        assert induced.has_edge(state, state)
    # Step 3: two candidate t-arcs per deadlock, eight combinations.
    assert all(len(options) == 2
               for options in result.candidates.values())
    assert len(result.rejected) == 8
    assert all("contiguous trail" in r.reason for r in result.rejected)

    rows = [(" + ".join(t.label for t in r.transitions), r.reason)
            for r in result.rejected]
    write_artifact("fig09_three_coloring.txt",
                   result.summary() + "\n\n"
                   + render_table(["combination", "rejection"], rows))
    ltg = build_ltg(protocol.space,
                    transitions=[t for opts in result.candidates.values()
                                 for t in opts])
    write_artifact("fig09_ltg_three_coloring.dot",
                   ltg_to_dot(ltg, protocol.legitimate_states(),
                              title="Figure 9"))
