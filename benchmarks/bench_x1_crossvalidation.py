"""X1 — cross-validation of local verdicts against global checking.

The paper validates Example 4.2 by model checking rings of 5–8
processes; this benchmark extends the exercise to every bundled
protocol: the Theorem 4.2 per-size deadlock prediction must agree with
explicit-state enumeration at every size, and every issued livelock
certificate must be confirmed.
"""

from repro.checker import check_instance
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.errors import AssumptionViolation
from repro.protocols.registry import REGISTRY, get_protocol
from repro.viz import render_table

SIZES = (4, 5, 6)


def crossvalidate():
    rows = []
    for name in sorted(REGISTRY):
        protocol = get_protocol(name)
        analyzer = DeadlockAnalyzer(protocol)
        predicted = analyzer.deadlocked_ring_sizes(max(SIZES))
        try:
            certificate = LivelockCertifier(protocol).analyze()
            livelock_verdict = certificate.verdict.value
            certified = (certificate.verdict is
                         LivelockVerdict.CERTIFIED_FREE
                         and not certificate.contiguous_only)
        except AssumptionViolation:
            livelock_verdict = "n/a (assumptions)"
            certified = False
        agreement = []
        for size in SIZES:
            if size < protocol.process.window_width:
                continue
            report = check_instance(protocol.instantiate(size))
            local_dead = size in predicted
            global_dead = bool(report.deadlocks_outside)
            assert local_dead == global_dead, (name, size)
            if certified:
                assert report.livelock_cycles == (), (name, size)
            agreement.append(size)
        rows.append((name,
                     "deadlocks" if predicted else "deadlock-free",
                     livelock_verdict,
                     ",".join(map(str, agreement))))
    return rows


def test_x1_local_vs_global_agreement(benchmark, write_artifact):
    rows = benchmark.pedantic(crossvalidate, rounds=1, iterations=1)
    assert len(rows) == len(REGISTRY)
    write_artifact(
        "x1_crossvalidation.txt",
        render_table(["protocol", "Thm 4.2 verdict", "Thm 5.14 verdict",
                      "globally confirmed at K"], rows))
