"""F6 — Figure 6: two precedence-preserving livelocks of Example 5.2.

Every precedence-preserving permutation replays to a distinct global
state cycle entirely outside the invariant (Lemma 5.11); the artifact
lists all eight, the first being the paper's original sequence and the
rest its equivalence class (Figure 6 depicts two of them).
"""

from repro.core.precedence import (
    precedence_preserving_schedules,
    precedence_relation,
    replay,
)
from repro.protocols import livelock_agreement

PAPER_CYCLE = ("1000", "1100", "0100", "0110",
               "0111", "0011", "1011", "1001")


def test_fig06_livelock_equivalence_class(benchmark, write_artifact):
    protocol = livelock_agreement()
    instance = protocol.instantiate(4)
    cycle = [instance.state_of(*map(int, s)) for s in PAPER_CYCLE]

    def enumerate_class():
        relation = precedence_relation(instance, cycle)
        sequences = []
        for permutation in precedence_preserving_schedules(relation):
            states = replay(instance, cycle[0], relation.schedule,
                            permutation)
            sequences.append((permutation, states))
        return sequences

    sequences = benchmark(enumerate_class)

    assert len(sequences) == 8
    rendered = set()
    lines = []
    for permutation, states in sequences:
        assert all(not instance.invariant_holds(s) for s in states)
        text = " -> ".join(
            "".join(str(c[0]) for c in s) for s in states)
        assert text not in rendered  # all eight cycles are distinct
        rendered.add(text)
        lines.append(f"perm {permutation}:\n  {text}")
    original = " -> ".join(PAPER_CYCLE)
    assert original in "\n".join(lines)
    write_artifact("fig06_livelocks.txt", "\n".join(lines))
