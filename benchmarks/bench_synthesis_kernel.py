"""Synthesis perf smoke: naive Digraph pipeline vs local-reasoning kernel.

Times the Section 6 candidate-evaluation sweep (every combination of
recovery transitions over the first Resolve set) on the bundled
reference protocols with both backends, asserts byte-identical verdicts
and byte-identical end-to-end ``synthesize()`` results, gates on the
kernel being at least ``REPRO_BENCH_SYNTH_MIN_SPEEDUP`` (default 5)
times faster in aggregate, and emits ``BENCH_synthesis.json`` at the
repository root so regressions are diffable.

Each timing round constructs a fresh protocol object and synthesizer,
so the kernel backend pays its state-indexing and skeleton-compile cost
inside the measurement — the comparison is cold-vs-cold, not warm-cache
flattery.
"""

import json
import os
import time
from pathlib import Path

from repro.core.synthesis import Synthesizer
from repro.protocols import three_coloring, two_coloring
from repro.protocols.agreement import agreement
from repro.protocols.sum_not_two import sum_not_two
from repro.viz import render_table

REPO_ROOT = Path(__file__).resolve().parent.parent
ROUNDS = 3  # best-of-N to damp scheduler noise
MIN_SPEEDUP = float(os.environ.get("REPRO_BENCH_SYNTH_MIN_SPEEDUP", "5"))
PROTOCOLS = (agreement, sum_not_two, three_coloring, two_coloring)


def _timed_sweep(factory, backend):
    """Best-of-ROUNDS full candidate sweep, cold kernel each round."""
    best_s, verdicts, stats = None, None, None
    for _ in range(ROUNDS):
        synthesizer = Synthesizer(factory(), backend=backend)
        began = time.perf_counter()
        rows = synthesizer.evaluate_all_combinations()
        elapsed = time.perf_counter() - began
        if best_s is None or elapsed < best_s:
            best_s, verdicts = elapsed, rows
            stats = synthesizer.stats
    return verdicts, best_s, stats


def _comparable(result):
    """The backend-independent surface of a SynthesisResult."""
    return (
        result.outcome,
        result.resolve,
        result.chosen,
        tuple((r.transitions, r.reason) for r in result.rejected),
        result.resolve_sets_tried,
        None if result.protocol is None else result.protocol.name,
    )


def collect():
    rows = []
    for factory in PROTOCOLS:
        naive, naive_s, _ = _timed_sweep(factory, "naive")
        kernel, kernel_s, stats = _timed_sweep(factory, "kernel")
        assert kernel == naive, factory.__name__
        end_naive = Synthesizer(factory(), backend="naive").synthesize()
        end_kernel = Synthesizer(factory(), backend="kernel").synthesize()
        assert _comparable(end_kernel) == _comparable(end_naive), \
            factory.__name__
        rows.append({
            "protocol": factory().name,
            "outcome": end_kernel.outcome.value,
            "combinations": len(kernel),
            "naive_s": round(naive_s, 6),
            "kernel_s": round(kernel_s, 6),
            "speedup": round(naive_s / kernel_s, 2),
            "skeleton_compiles": stats.skeleton_compiles,
            "mask_evaluations": stats.mask_evaluations,
        })
    return rows


def test_synthesis_kernel_perf_smoke(benchmark, write_artifact):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)

    # The gate: never slower per protocol (10% noise allowance on the
    # sub-millisecond workloads), >= MIN_SPEEDUP in aggregate.  The
    # aggregate is dominated by the trail-search-heavy workloads, which
    # is exactly where the kernel earns its keep.
    for row in rows:
        assert row["kernel_s"] <= row["naive_s"] * 1.10, row
    total_naive = sum(r["naive_s"] for r in rows)
    total_kernel = sum(r["kernel_s"] for r in rows)
    aggregate = total_naive / total_kernel
    assert aggregate >= MIN_SPEEDUP, (aggregate, rows)

    payload = {
        "protocols": [r["protocol"] for r in rows],
        "aggregate_speedup": round(aggregate, 2),
        "min_speedup_gate": MIN_SPEEDUP,
        "results": rows,
    }
    (REPO_ROOT / "BENCH_synthesis.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    write_artifact(
        "synthesis_backends.txt",
        render_table(
            ["protocol", "combos", "naive", "kernel", "speedup",
             "mask evals"],
            [(r["protocol"],
              r["combinations"],
              f"{r['naive_s'] * 1e3:.1f} ms",
              f"{r['kernel_s'] * 1e3:.1f} ms",
              f"{r['speedup']:.1f}x",
              r["mask_evaluations"]) for r in rows]))
