"""E3 — extension: rooted-tree topologies (Definition 4.1's note).

The continuation relation extends from rings to trees; for
parent-reading processes this benchmark exercises

* the any-shape question (reduces to chains: paths are trees),
* the exact per-shape DP verdict, cross-checked against brute force,
* the termination certificate (every execution on every shape ends).
"""

from repro.core.trees import TreeDeadlockAnalyzer, certify_tree_termination
from repro.protocol.tree import TreeInstance
from repro.protocols import (
    chain_broadcast,
    chain_coloring,
    stabilizing_chain_coloring,
)
from repro.simulation import RandomScheduler, run
from repro.viz import render_table

SHAPES = {
    "path-4": (None, 0, 1, 2),
    "star-4": (None, 0, 0, 0),
    "binary-5": (None, 0, 0, 1, 1),
    "caterpillar-5": (None, 0, 1, 1, 2),
}


def run_extension():
    rows = []
    for name, factory in [("2-coloring (empty)", chain_coloring),
                          ("2-coloring-ss", stabilizing_chain_coloring),
                          ("broadcast", chain_broadcast)]:
        protocol = factory()
        analyzer = TreeDeadlockAnalyzer(protocol)
        all_trees = analyzer.deadlock_free_for_all_trees()
        shape_verdicts = []
        for shape_name, parents in SHAPES.items():
            report = analyzer.analyze_shape(parents)
            tree = TreeInstance(protocol, parents)
            brute = any(
                tree.is_deadlock(s) and not tree.invariant_holds(s)
                for s in tree.states())
            assert report.deadlock_free == (not brute), (name,
                                                         shape_name)
            shape_verdicts.append(
                f"{shape_name}:{'ok' if report.deadlock_free else 'dl'}")
        rows.append((name,
                     "yes" if all_trees else "no",
                     " ".join(shape_verdicts)))

    # Termination: adversary-driven runs on a branching shape all halt.
    protocol = chain_broadcast(boundary=1)
    certify_tree_termination(protocol)
    tree = TreeInstance(protocol, SHAPES["binary-5"])
    for seed in range(10):
        start = tuple((((seed >> i) & 1),) for i in range(tree.size))
        trace = run(tree, start, RandomScheduler(seed=seed),
                    max_steps=100, stop_on_convergence=False)
        assert trace.steps < 100  # halted well before the budget
    return rows


def test_e3_tree_extension(benchmark, write_artifact):
    rows = benchmark.pedantic(run_extension, rounds=1, iterations=1)
    write_artifact(
        "e3_tree_extension.txt",
        "per-shape tree deadlock verdicts (DP == brute force)\n"
        + render_table(["protocol", "deadlock-free on all trees",
                        "per-shape"], rows))
