"""X2 — the paper's efficiency claim: local reasoning is K-independent.

The motivation for the whole approach (§1, §6, §7): verifying
convergence by model checking must be repeated per ring size and its
cost grows exponentially with K, while the local analyses run once on
the representative process's state space, whose size does not depend on
K at all.

The benchmark times the full local analysis of Example 4.2 (what
pytest-benchmark reports) and records a sweep of global model-checking
times for K = 4..8 in the artifact; the assertions pin the shape —
global cost grows by more than the domain factor per added process,
local cost is constant by construction.
"""

import time

from repro.checker import check_instance
from repro.checker.sweep import sweep_verify
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier
from repro.engine import ResultCache
from repro.protocols import generalizable_matching
from repro.viz import render_table

SIZES = (4, 5, 6, 7, 8)


def local_analysis():
    protocol = generalizable_matching()
    deadlock = DeadlockAnalyzer(protocol).analyze()
    livelock = LivelockCertifier(protocol).analyze()
    return deadlock, livelock


def test_x2_local_reasoning_vs_global_checking(benchmark,
                                               write_artifact):
    deadlock, _livelock = benchmark(local_analysis)
    assert deadlock.deadlock_free

    protocol = generalizable_matching()
    rows = []
    times = {}
    for size in SIZES:
        start = time.perf_counter()
        report = check_instance(protocol.instantiate(size))
        elapsed = time.perf_counter() - start
        times[size] = elapsed
        assert report.self_stabilizing
        rows.append((size, report.state_count, f"{elapsed * 1e3:.1f} ms"))

    # Shape: the global cost explodes with K (3^K states)...
    assert times[8] > 10 * times[4]
    # ...while the local analysis touched only 27 local states, once.
    start = time.perf_counter()
    local_analysis()
    local_elapsed = time.perf_counter() - start
    assert local_elapsed < times[8]

    write_artifact(
        "x2_scalability.txt",
        f"local analysis (all K at once): {local_elapsed * 1e3:.1f} ms\n\n"
        + render_table(["K", "global states", "model-checking time"],
                       rows))


def test_x2_sweep_engine_modes(benchmark, write_artifact, tmp_path):
    """The per-K baseline at hardware speed: serial vs parallel vs
    cached sweeps over the same range, identical verdicts throughout."""
    protocol = generalizable_matching()
    first, last = SIZES[0], SIZES[-1]

    def timed(**kwargs):
        began = time.perf_counter()
        result = sweep_verify(protocol, up_to=last, start=first, **kwargs)
        return result, time.perf_counter() - began

    serial, serial_s = benchmark.pedantic(
        lambda: timed(jobs=1), rounds=1, iterations=1)
    parallel, parallel_s = timed(jobs=2)
    assert parallel.reports == serial.reports

    cache = ResultCache(tmp_path / "cache")
    warm, warm_s = timed(cache=cache)
    assert warm.reports == serial.reports
    cached, cached_s = timed(cache=cache)
    assert cached.reports == serial.reports
    assert cached.stats.cache_hits == len(serial.reports)
    assert cached_s < serial_s  # the whole point of the cache

    write_artifact(
        "x2_sweep_engine_modes.txt",
        f"sweep K={first}..{last} of matching-ex4.2, "
        f"{serial.total_states_explored} global states:\n"
        + render_table(
            ["mode", "wall time", "cache hits"],
            [("serial (jobs=1)", f"{serial_s * 1e3:.1f} ms",
              0),
             ("parallel (jobs=2)", f"{parallel_s * 1e3:.1f} ms",
              0),
             ("cold cached run", f"{warm_s * 1e3:.1f} ms",
              warm.stats.cache_hits),
             ("warm cached run", f"{cached_s * 1e3:.1f} ms",
              cached.stats.cache_hits)]))
