"""X2 — the paper's efficiency claim: local reasoning is K-independent.

The motivation for the whole approach (§1, §6, §7): verifying
convergence by model checking must be repeated per ring size and its
cost grows exponentially with K, while the local analyses run once on
the representative process's state space, whose size does not depend on
K at all.

The benchmark times the full local analysis of Example 4.2 (what
pytest-benchmark reports) and records a sweep of global model-checking
times for K = 4..8 in the artifact; the assertions pin the shape —
global cost grows by more than the domain factor per added process,
local cost is constant by construction.
"""

import os
import time

from repro.checker import check_instance
from repro.checker.sweep import sweep_verify
from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier
from repro.engine import ResultCache
from repro.protocols import generalizable_matching
from repro.viz import render_table

# CI's perf-smoke job caps the sweep at a small K to stay fast.
MAX_K = int(os.environ.get("REPRO_BENCH_MAX_K", "8"))
SIZES = tuple(range(4, MAX_K + 1))


def local_analysis():
    protocol = generalizable_matching()
    deadlock = DeadlockAnalyzer(protocol).analyze()
    livelock = LivelockCertifier(protocol).analyze()
    return deadlock, livelock


def test_x2_local_reasoning_vs_global_checking(benchmark,
                                               write_artifact):
    deadlock, _livelock = benchmark(local_analysis)
    assert deadlock.deadlock_free

    protocol = generalizable_matching()
    rows = []
    times = {}
    naive_times = {}
    kernel_stats = None
    for size in SIZES:
        instance = protocol.instantiate(size)
        start = time.perf_counter()
        report = check_instance(instance)  # auto = compiled kernel
        elapsed = time.perf_counter() - start
        start = time.perf_counter()
        naive_report = check_instance(instance, backend="naive")
        naive_elapsed = time.perf_counter() - start
        assert naive_report == report  # verdict-identical backends
        times[size] = elapsed
        naive_times[size] = naive_elapsed
        kernel_stats = report.stats
        assert report.self_stabilizing
        rows.append((size, report.state_count,
                     f"{naive_elapsed * 1e3:.1f} ms",
                     f"{elapsed * 1e3:.1f} ms",
                     f"{naive_elapsed / elapsed:.1f}x"))

    first, last = SIZES[0], SIZES[-1]
    # Shape: the global cost explodes with K (3^K states), on either
    # backend; the factor scales with the swept span.
    required = 10 if last - first >= 4 else 3
    assert times[last] > required * times[first]
    assert naive_times[last] > required * naive_times[first]
    # The compiled kernel must not lose to the interpreter (CI gate).
    assert times[last] < naive_times[last]
    # ...while the local analysis touched only 27 local states, once.
    start = time.perf_counter()
    local_analysis()
    local_elapsed = time.perf_counter() - start
    assert local_elapsed < naive_times[last]

    write_artifact(
        "x2_scalability.txt",
        f"local analysis (all K at once): {local_elapsed * 1e3:.1f} ms\n"
        f"kernel at K={last}: {kernel_stats.summary()}\n\n"
        + render_table(["K", "global states", "naive checking",
                        "kernel checking", "speedup"],
                       rows))


def test_x2_sweep_engine_modes(benchmark, write_artifact, tmp_path):
    """The per-K baseline at hardware speed: serial vs parallel vs
    cached sweeps over the same range, identical verdicts throughout."""
    protocol = generalizable_matching()
    first, last = SIZES[0], SIZES[-1]

    def timed(**kwargs):
        began = time.perf_counter()
        result = sweep_verify(protocol, up_to=last, start=first, **kwargs)
        return result, time.perf_counter() - began

    serial, serial_s = benchmark.pedantic(
        lambda: timed(jobs=1), rounds=1, iterations=1)
    naive, naive_s = timed(jobs=1, backend="naive")
    assert naive.reports == serial.reports  # backends report identically
    parallel, parallel_s = timed(jobs=2)
    assert parallel.reports == serial.reports

    cache = ResultCache(tmp_path / "cache")
    warm, warm_s = timed(cache=cache)
    assert warm.reports == serial.reports
    cached, cached_s = timed(cache=cache)
    assert cached.reports == serial.reports
    assert cached.stats.cache_hits == len(serial.reports)
    assert cached_s < serial_s  # the whole point of the cache

    write_artifact(
        "x2_sweep_engine_modes.txt",
        f"sweep K={first}..{last} of matching-ex4.2, "
        f"{serial.total_states_explored} global states:\n"
        + render_table(
            ["mode", "wall time", "cache hits"],
            [("serial, naive backend", f"{naive_s * 1e3:.1f} ms",
              0),
             ("serial (jobs=1)", f"{serial_s * 1e3:.1f} ms",
              0),
             ("parallel (jobs=2)", f"{parallel_s * 1e3:.1f} ms",
              0),
             ("cold cached run", f"{warm_s * 1e3:.1f} ms",
              warm.stats.cache_hits),
             ("warm cached run", f"{cached_s * 1e3:.1f} ms",
              cached.stats.cache_hits)]))
