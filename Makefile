# Convenience targets; everything also works as plain pytest invocations.

.PHONY: install test bench figures fuzz examples clean

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

figures:
	repro figures --out figures/

fuzz:
	repro fuzz --samples 200 --max-ring-size 5

examples:
	for script in examples/*.py; do echo "== $$script =="; python $$script; done

clean:
	rm -rf benchmarks/out figures .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
