"""Named metrics: counters, gauges and histogram summaries.

One :class:`MetricsRegistry` holds every metric of a run (or of one
:class:`repro.engine.EngineStats`).  All three metric kinds merge
pairwise with an associative operation, so per-worker registries
serialized back from a fork pool, per-K report registries and the
enclosing run's registry combine through a single code path —
:meth:`MetricsRegistry.merge` — regardless of grouping.

Everything here is picklable and depends only on the standard library:
registries travel across the fork-pool pipe and into cached analysis
reports.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

#: Geometric bucket grid shared by every :class:`Histogram`: upper
#: bounds ``_BUCKET_BASE * 2**i`` from 1 µs up to ~134 s, one overflow
#: bucket above.  Fixed boundaries keep bucket counts associative under
#: :meth:`Histogram.merge`, which is what lets quantile estimates
#: survive the fork-pool registry folding unchanged.
_BUCKET_BASE = 1e-6
_BUCKET_COUNT = 28


def _bucket_index(value: float) -> int:
    if value <= _BUCKET_BASE:
        return 0
    return min(int(math.ceil(math.log2(value / _BUCKET_BASE))),
               _BUCKET_COUNT)


def _bucket_bound(index: int) -> float:
    return _BUCKET_BASE * (2.0 ** index)


class Counter:
    """A monotonically accumulated number (int or float)."""

    kind = "counter"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0) -> None:
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def export(self) -> float:
        return self.value

    def copy(self) -> "Counter":
        return Counter(self.name, self.value)

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state):
        self.name, self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value!r})"


class Gauge:
    """A last-write-wins sample (e.g. a configuration value)."""

    kind = "gauge"
    __slots__ = ("name", "value")

    def __init__(self, name: str, value: Any = None) -> None:
        self.name = name
        self.value = value

    def set(self, value: Any) -> None:
        self.value = value

    def merge(self, other: "Gauge") -> None:
        if other.value is not None:
            self.value = other.value

    def export(self) -> Any:
        return self.value

    def copy(self) -> "Gauge":
        return Gauge(self.name, self.value)

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state):
        self.name, self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name!r}, {self.value!r})"


class Histogram:
    """A summary of observed samples: count / total / min / max.

    The summary fields (count / total / min / max) merge exactly.  On
    top of them a sparse bucket map over the fixed geometric grid
    (:data:`_BUCKET_BASE`, factor 2) supports :meth:`quantile`
    estimates — fixed boundaries keep the merge associative, and the
    live telemetry plane's stall detection needs a p95, not an exact
    distribution.
    """

    kind = "histogram"
    __slots__ = ("name", "count", "total", "minimum", "maximum",
                 "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        index = _bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """An upper-bound estimate of the *q*-quantile (0 < q <= 1).

        Walks the cumulative bucket counts and returns the matched
        bucket's upper bound, clamped to the observed [min, max] — at
        most one grid factor (2x) above the true value.  ``None``
        before any sample; samples merged in from a pre-bucket
        histogram (a legacy pickle) fall back to the observed maximum.
        """
        if not self.count or self.minimum is None or self.maximum is None:
            return None
        bucketed = sum(self.buckets.values())
        target = max(1, math.ceil(q * bucketed))
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= target:
                return min(max(_bucket_bound(index), self.minimum),
                           self.maximum)
        return self.maximum

    def export(self) -> dict[str, Any]:
        return {"count": self.count, "total": self.total,
                "min": self.minimum, "max": self.maximum,
                "mean": self.mean}

    def copy(self) -> "Histogram":
        fresh = Histogram(self.name)
        fresh.merge(self)
        return fresh

    def __getstate__(self):
        return (self.name, self.count, self.total, self.minimum,
                self.maximum, self.buckets)

    def __setstate__(self, state):
        # Pre-bucket pickles (old cache entries / journals) carry five
        # fields; their samples simply have no bucket attribution.
        (self.name, self.count, self.total, self.minimum,
         self.maximum) = state[:5]
        self.buckets = state[5] if len(state) > 5 else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name!r}, {self.export()!r})"


class MetricsRegistry:
    """A name-indexed collection of counters, gauges and histograms.

    Metrics are created on first access (``registry.counter("x")``);
    asking for an existing name with a different kind raises.  Names
    use dotted paths (``kernel.compile_seconds``, ``stage.sweep``);
    iteration preserves creation order, which keeps e.g. stage listings
    in execution order.
    """

    __slots__ = ("_metrics",)

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- access --------------------------------------------------------
    def _get(self, name: str, factory):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
        elif not isinstance(metric, factory):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a "
                f"{factory.kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def value(self, name: str, default: Any = 0) -> Any:
        """The exported value of *name*, or *default* when unset."""
        metric = self._metrics.get(name)
        return default if metric is None else metric.export()

    def discard(self, name: str) -> None:
        self._metrics.pop(name, None)

    # -- aggregation ---------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other* into this registry (the one merge path).

        Counters and histograms accumulate; gauges take the other
        side's value.  Merging is associative for every kind, so any
        tree of worker / per-item / run registries folds to the same
        totals.
        """
        for name, metric in other._metrics.items():
            self._get(name, type(metric)).merge(metric)

    def merge_named(self, other: "MetricsRegistry", names) -> None:
        """Merge only the metrics selected by *names* — an iterable of
        exact names and/or ``prefix.`` strings (trailing dot = subtree)."""
        exact = {n for n in names if not n.endswith(".")}
        prefixes = tuple(n for n in names if n.endswith("."))
        for name, metric in other._metrics.items():
            if name in exact or name.startswith(prefixes):
                self._get(name, type(metric)).merge(metric)

    def copy(self) -> "MetricsRegistry":
        duplicate = MetricsRegistry()
        for name, metric in self._metrics.items():
            duplicate._metrics[name] = metric.copy()
        return duplicate

    # -- export --------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """A JSON-ready ``{name: exported value}`` mapping."""
        return {name: metric.export()
                for name, metric in self._metrics.items()}

    def items(self):
        return self._metrics.items()

    def names(self) -> Iterator[str]:
        return iter(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getstate__(self):
        return self._metrics

    def __setstate__(self, state):
        self._metrics = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({self.as_dict()!r})"
