"""Exporters: Chrome trace files, JSONL run logs, human tree reports.

Three renderings of one :class:`repro.obs.runtime.ObsRun`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by ``chrome://tracing`` and Perfetto: one complete
  (``"ph": "X"``) event per span, timestamps in microseconds relative
  to the run start, worker spans under their own ``pid`` rows.
* :func:`run_log_records` / :func:`write_run_log` — a JSONL event log:
  a ``run`` header, every span in pre-order with its depth and path,
  every structured event, one ``metrics`` record, and an ``end``
  footer with the wall time.  This is the machine-readable run report
  the CLI's ``--log-json`` writes and ``repro report`` renders.
* :func:`render_report` — the human tree view (span hierarchy with
  durations and attributes, then events and metrics).
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from repro.obs.runtime import ObsRun
from repro.obs.trace import Span

RUN_LOG_VERSION = 1


def _jsonify(value: Any) -> Any:
    """A JSON-safe rendering of one attribute value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    return str(value)


# ----------------------------------------------------------------------
# Chrome trace format
# ----------------------------------------------------------------------
def chrome_trace(run: ObsRun) -> dict[str, Any]:
    """The run as a Trace Event Format document (JSON-ready dict)."""
    events: list[dict[str, Any]] = []
    base = min((span.start for _depth, span in run.walk()),
               default=run.started)
    pids: set[int] = set()
    for _depth, span in run.walk():
        pids.add(span.pid)
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": round((span.start - base) * 1e6, 3),
            "dur": round((span.duration or 0.0) * 1e6, 3),
            "pid": span.pid,
            "tid": 1,
            "args": _jsonify(span.attrs),
        })
    for pid in sorted(pids):
        events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 1,
            "args": {"name": f"{run.name} [pid {pid}]"},
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "run": run.name,
            "attrs": _jsonify(run.attrs),
            "metrics": _jsonify(run.metrics.as_dict()),
        },
    }


def write_chrome_trace(path, run: ObsRun) -> None:
    with open(path, "w") as handle:
        json.dump(chrome_trace(run), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# JSONL run log
# ----------------------------------------------------------------------
def run_log_records(run: ObsRun) -> Iterator[dict[str, Any]]:
    """The run as a flat record stream (one JSON object per line)."""
    yield {"type": "run", "version": RUN_LOG_VERSION, "name": run.name,
           "started": run.started, "attrs": _jsonify(run.attrs)}
    for depth, span in run.walk():
        yield {"type": "span", "name": span.name, "depth": depth,
               "start": span.start, "duration": span.duration,
               "pid": span.pid, "attrs": _jsonify(span.attrs)}
    for event in run.events:
        yield {"type": "event", **_jsonify(event)}
    yield {"type": "metrics", "values": _jsonify(run.metrics.as_dict())}
    yield {"type": "end", "wall_seconds": run.wall_seconds}


def write_run_log(path, run: ObsRun) -> None:
    with open(path, "w") as handle:
        for record in run_log_records(run):
            handle.write(json.dumps(record) + "\n")


def load_run_log(path) -> list[dict[str, Any]]:
    """Parse a JSONL run log back into its records."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Cross-run ledger records
# ----------------------------------------------------------------------
def ledger_record_from_run(run: ObsRun, run_id: str, *,
                           command: str,
                           verdict: dict[str, Any] | None = None,
                           **extra: Any) -> dict[str, Any]:
    """Fold a finished :class:`ObsRun` into one cross-run ledger record.

    The benchmark harness uses this to feed ``benchmarks/out/``'s
    ledger the same way the CLI feeds ``.repro-cache/ledger.jsonl``.
    Counter names are the registry's dotted metric names; ``stage.*``
    counters become the record's ``stage_seconds``.
    """
    from repro.obs import ledger

    counters: dict[str, Any] = {}
    stage_seconds: dict[str, float] = {}
    for name, value in run.metrics.as_dict().items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        if name.startswith("stage."):
            stage_seconds[name[len("stage."):]] = round(value, 6)
        else:
            counters[name] = value
    return ledger.make_record(
        run_id, command,
        protocol=run.attrs.get("protocol"),
        fingerprint=run.attrs.get("fingerprint"),
        verdict=verdict,
        wall_seconds=run.wall_seconds,
        started=run.started,
        counters=counters,
        stage_seconds=stage_seconds,
        **extra)


# ----------------------------------------------------------------------
# Human tree report
# ----------------------------------------------------------------------
def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    inner = ", ".join(f"{key}={value}" for key, value in attrs.items())
    return f"  [{inner}]"


def _span_line(name: str, duration: float | None, depth: int,
               attrs: dict[str, Any]) -> str:
    ms = "?" if duration is None else f"{duration * 1e3:9.1f} ms"
    return f"{ms}  {'  ' * depth}{name}{_format_attrs(attrs)}"


def _cache_effectiveness_lines(metrics: dict[str, Any]) -> list[str]:
    """Hit/miss summaries of the two warm-start layers, from their
    dotted counters (empty when neither layer saw any traffic)."""
    lines: list[str] = []
    for label, prefix, hit_word, store_word in (
            ("results", "cache.", "hits", "stores"),
            ("artifacts", "artifacts.", "attached", "stored")):
        hits = metrics.get(f"{prefix}hits", 0)
        misses = metrics.get(f"{prefix}misses", 0)
        if not hits and not misses:
            continue
        rate = hits / (hits + misses)
        line = (f"  {label}: {hits} {hit_word} / {misses} misses "
                f"({rate:.0%} hit rate), "
                f"{metrics.get(f'{prefix}stores', 0)} {store_word}")
        corrupt = (metrics.get(f"{prefix}corrupt", 0)
                   or metrics.get(f"{prefix}corrupt_entries", 0))
        if corrupt:
            line += f", {corrupt} corrupt discarded"
        evictions = metrics.get(f"{prefix}evictions", 0)
        if evictions:
            line += f", {evictions} evicted"
        lines.append(line)
    if lines:
        lines.insert(0, "cache effectiveness:")
    return lines


def render_report(records: list[dict[str, Any]]) -> str:
    """Render run-log *records* (see :func:`run_log_records`) as text."""
    lines: list[str] = []
    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    wall = None
    for record in records:
        kind = record.get("type")
        if kind == "run":
            lines.append(f"== run: {record['name']} ==")
            for key, value in (record.get("attrs") or {}).items():
                lines.append(f"   {key}: {value}")
        elif kind == "span":
            lines.append(_span_line(record["name"], record.get("duration"),
                                    record.get("depth", 0),
                                    record.get("attrs") or {}))
        elif kind == "event":
            events.append(record)
        elif kind == "metrics":
            metrics = record.get("values") or {}
        elif kind == "end":
            wall = record.get("wall_seconds")
    if events:
        lines.append("events:")
        for record in events:
            detail = {k: v for k, v in record.items()
                      if k not in ("type", "ts", "kind", "level", "pid")}
            lines.append(f"  [{record.get('level', 'info')}] "
                         f"{record.get('kind')}"
                         + (f" {detail}" if detail else ""))
    lines.extend(_cache_effectiveness_lines(metrics))
    if metrics:
        lines.append("metrics:")
        for name in sorted(metrics):
            lines.append(f"  {name} = {metrics[name]}")
    if wall is not None:
        lines.append(f"wall time: {wall * 1e3:.1f} ms")
    return "\n".join(lines)


def render_run(run: ObsRun) -> str:
    """Render a live :class:`ObsRun` (finishing its wall clock)."""
    run.finish()
    return render_report(list(run_log_records(run)))
