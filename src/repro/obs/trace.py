"""Hierarchical span tracing.

A :class:`Span` is one timed region of a run — a sweep, a per-K check,
a kernel compile, a trail search — with a name, free-form attributes
(K, backend, protocol fingerprint, ...) and child spans.  A
:class:`Tracer` maintains the open-span stack and records finished
trees.

Design constraints, in order:

* **Picklable spans.**  Spans recorded inside forked pool workers are
  serialized back with each work-item result and re-parented under the
  dispatching span (:meth:`Tracer.adopt`), so one ``--jobs 8`` sweep
  still yields a single coherent trace.  Spans therefore carry plain
  data only.
* **Two clocks.**  ``start`` is wall-clock epoch seconds
  (``time.time()`` — meaningful across processes, which fork pools
  require); ``duration`` is a monotonic ``time.perf_counter()`` delta
  (immune to clock steps).  Exporters combine both.
* **Cheap.**  Opening a span is one object construction and two list
  operations; instrumented call sites are coarse (stages, per-K
  checks, per-support searches), never per-state.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Iterator


class Span:
    """One finished (or still-open) timed region."""

    __slots__ = ("name", "attrs", "start", "duration", "pid", "children")

    def __init__(self, name: str, attrs: dict[str, Any] | None = None,
                 start: float | None = None,
                 duration: float | None = None,
                 pid: int | None = None) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.start = time.time() if start is None else start
        self.duration = duration
        self.pid = os.getpid() if pid is None else pid
        self.children: list[Span] = []

    @property
    def end(self) -> float:
        return self.start + (self.duration or 0.0)

    def walk(self, depth: int = 0) -> Iterator[tuple[int, "Span"]]:
        """Pre-order ``(depth, span)`` traversal of this subtree."""
        yield depth, self
        for child in self.children:
            yield from child.walk(depth + 1)

    def __getstate__(self):
        return (self.name, self.attrs, self.start, self.duration,
                self.pid, self.children)

    def __setstate__(self, state):
        (self.name, self.attrs, self.start, self.duration,
         self.pid, self.children) = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ms = None if self.duration is None else f"{self.duration * 1e3:.1f}ms"
        return f"Span({self.name!r}, {ms}, {len(self.children)} children)"


class Tracer:
    """Records a forest of spans with an open-span stack."""

    __slots__ = ("roots", "_stack")

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attrs: Any):
        """Open a child span of the current span for the ``with`` body."""
        span = Span(name, attrs)
        parent = self.current
        if parent is None:
            self.roots.append(span)
        else:
            parent.children.append(span)
        self._stack.append(span)
        began = time.perf_counter()
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - began
            self._stack.pop()

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the current span (no-op outside spans)."""
        current = self.current
        if current is not None:
            current.attrs.update(attrs)

    def adopt(self, spans: list[Span]) -> None:
        """Re-parent already-finished *spans* under the current span.

        Used to graft span trees serialized back from forked pool
        workers into the dispatching process's trace.
        """
        parent = self.current
        target = self.roots if parent is None else parent.children
        target.extend(spans)

    def walk(self) -> Iterator[tuple[int, Span]]:
        for root in self.roots:
            yield from root.walk()

    @property
    def total_seconds(self) -> float:
        """Summed duration of the root spans (closed ones only)."""
        return sum(root.duration or 0.0 for root in self.roots)

    def __getstate__(self):
        return (self.roots, self._stack)

    def __setstate__(self, state):
        self.roots, self._stack = state
