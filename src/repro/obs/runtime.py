"""The ambient observability run: one tracer + metrics + event log.

Instrumented code throughout the engine calls the module-level helpers
(:func:`span`, :func:`event`, :func:`metric`, :func:`annotate`).  When
no run is active every helper is a near-free no-op — one global check —
so library users pay nothing; the CLI's ``--trace`` / ``--log-json``
flags (and the benchmark harness) activate a run around each command.

Fork-pool protocol: :func:`repro.engine.run_work_items` calls
:func:`fork_capture_begin` / :func:`fork_capture_end` around each work
item executed in a forked child.  The child inherited the parent's
active run at fork time; the pair swaps in a fresh capture run, lets
the worker record spans / metrics / events into it, and returns the
picklable :class:`ChildCapture` with the item's result.  The parent
then grafts it back with :func:`adopt_child`, re-parenting the worker
spans under the dispatching span and folding the worker metrics into
the run registry, so a ``--jobs 8`` sweep yields one coherent trace.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class ObsRun:
    """Everything one observed run records."""

    __slots__ = ("name", "attrs", "tracer", "metrics", "events",
                 "started", "wall_seconds", "_began", "_root")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = dict(attrs)
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.events: list[dict[str, Any]] = []
        self.started = time.time()
        self.wall_seconds: float | None = None
        self._began = time.perf_counter()
        self._root: Span | None = None

    def event(self, kind: str, level: str = "info",
              **fields: Any) -> None:
        self.events.append({"ts": time.time(), "kind": kind,
                            "level": level, "pid": os.getpid(),
                            **fields})

    def finish(self) -> None:
        if self.wall_seconds is None:
            self.wall_seconds = time.perf_counter() - self._began

    @property
    def spans(self) -> list[Span]:
        return self.tracer.roots

    def walk(self) -> Iterator[tuple[int, Span]]:
        return self.tracer.walk()


class ChildCapture:
    """Picklable observability payload of one forked work item."""

    __slots__ = ("spans", "metrics", "events", "pid")

    def __init__(self, spans: list[Span], metrics: MetricsRegistry,
                 events: list[dict[str, Any]], pid: int) -> None:
        self.spans = spans
        self.metrics = metrics
        self.events = events
        self.pid = pid

    def __getstate__(self):
        return (self.spans, self.metrics, self.events, self.pid)

    def __setstate__(self, state):
        self.spans, self.metrics, self.events, self.pid = state


_ACTIVE: ObsRun | None = None
_NULL_SPAN = nullcontext(None)

#: Out-of-band event subscribers (token -> callable).  The live
#: telemetry plane registers here so warning-level events reach the
#: ``status.json`` snapshot even when no ``--trace``/``--log-json`` run
#: is active; :func:`event` stays a single-check no-op when both the
#: ambient run and the sink table are empty.
_EVENT_SINKS: dict[int, Any] = {}
_NEXT_SINK_TOKEN = 0


def add_event_sink(sink) -> int:
    """Subscribe *sink* (``callable(record_dict)``) to every event."""
    global _NEXT_SINK_TOKEN
    _NEXT_SINK_TOKEN += 1
    _EVENT_SINKS[_NEXT_SINK_TOKEN] = sink
    return _NEXT_SINK_TOKEN


def remove_event_sink(token: int) -> None:
    _EVENT_SINKS.pop(token, None)


def active() -> ObsRun | None:
    """The ambient run, or ``None`` when observability is off."""
    return _ACTIVE


def start(name: str, **attrs: Any) -> ObsRun:
    """Activate a run (nested activation raises; one run per process)."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            f"an observability run ({_ACTIVE.name!r}) is already active")
    _ACTIVE = ObsRun(name, **attrs)
    return _ACTIVE


def finish(run: ObsRun) -> None:
    """Deactivate *run* and stamp its wall time."""
    global _ACTIVE
    run.finish()
    if _ACTIVE is run:
        _ACTIVE = None


@contextmanager
def run(name: str, **attrs: Any):
    """``with obs.run("repro sweep", protocol=...) as run_ctx:``"""
    run_ctx = start(name, **attrs)
    try:
        with run_ctx.tracer.span(name, **attrs):
            yield run_ctx
    finally:
        finish(run_ctx)


def span(name: str, **attrs: Any):
    """A traced region under the ambient run (no-op when inactive).

    Yields the open :class:`Span` (or ``None``), so call sites can
    attach attributes discovered mid-flight::

        with obs.span("kernel.encode", K=k) as sp:
            ...
            if sp is not None:
                sp.attrs["states"] = count
    """
    if _ACTIVE is None:
        return _NULL_SPAN
    return _ACTIVE.tracer.span(name, **attrs)


def annotate(**attrs: Any) -> None:
    """Attributes for the current span (no-op when inactive)."""
    if _ACTIVE is not None:
        _ACTIVE.tracer.annotate(**attrs)


def event(kind: str, level: str = "info", **fields: Any) -> None:
    """A structured event on the ambient run (no-op when inactive)."""
    if _ACTIVE is None and not _EVENT_SINKS:
        return
    record = {"ts": time.time(), "kind": kind, "level": level,
              "pid": os.getpid(), **fields}
    if _ACTIVE is not None:
        _ACTIVE.events.append(record)
    for sink in _EVENT_SINKS.values():
        sink(record)


def metric(name: str, amount: float = 1) -> None:
    """Increment an ambient run counter (no-op when inactive)."""
    if _ACTIVE is not None:
        _ACTIVE.metrics.counter(name).inc(amount)


def gauge(name: str, value: Any) -> None:
    """Set an ambient run gauge (no-op when inactive)."""
    if _ACTIVE is not None:
        _ACTIVE.metrics.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record a sample in an ambient histogram (no-op when inactive)."""
    if _ACTIVE is not None:
        _ACTIVE.metrics.histogram(name).observe(value)


# ----------------------------------------------------------------------
# Fork-pool capture protocol
# ----------------------------------------------------------------------
def fork_capture_begin() -> ObsRun | None:
    """In a forked worker: swap in a fresh capture run.

    Returns the run that was active (inherited from the parent at fork
    time) so :func:`fork_capture_end` can restore it, or ``None`` when
    observability is off — in which case nothing is captured.
    """
    global _ACTIVE
    if _ACTIVE is None:
        return None
    inherited, _ACTIVE = _ACTIVE, ObsRun("fork-capture")
    return inherited


def fork_capture_end(inherited: ObsRun | None) -> ChildCapture | None:
    """Close the capture begun by :func:`fork_capture_begin`."""
    global _ACTIVE
    if inherited is None:
        return None
    captured, _ACTIVE = _ACTIVE, inherited
    if captured is None:  # pragma: no cover - begin/end always paired
        return None
    return ChildCapture(spans=captured.tracer.roots,
                        metrics=captured.metrics,
                        events=captured.events,
                        pid=os.getpid())


def adopt_child(capture: ChildCapture | None,
                name: str | None = None, **attrs: Any) -> None:
    """Graft a worker's capture into the ambient run.

    The worker's spans are re-parented under the current span — inside
    a wrapper span *name* (attrs: worker pid plus **attrs**) when given,
    so each work item shows up as one subtree.  Worker metrics fold
    into the run registry; worker events append in item order.
    """
    if capture is None or _ACTIVE is None:
        return
    spans = capture.spans
    if name is not None:
        wrapper = Span(name, {"pid": capture.pid, **attrs},
                       start=min((s.start for s in spans),
                                 default=time.time()),
                       pid=capture.pid)
        wrapper.children = list(spans)
        wrapper.duration = max(
            (s.start + (s.duration or 0.0) for s in spans),
            default=wrapper.start) - wrapper.start
        spans = [wrapper]
    _ACTIVE.tracer.adopt(spans)
    _ACTIVE.metrics.merge(capture.metrics)
    _ACTIVE.events.extend(capture.events)
