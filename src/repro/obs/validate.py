"""Schema validation for exported observability artifacts.

Used by the test suite and the CI smoke job (as
``python -m repro.obs.validate trace.json run.jsonl``) to check that a
``--trace`` file is valid Chrome Trace Event Format and a
``--log-json`` file is a well-formed JSONL run log, without pulling in
a JSON-schema dependency.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.obs.export import RUN_LOG_VERSION, load_run_log


class ValidationError(ValueError):
    """An artifact does not match the expected schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


# ----------------------------------------------------------------------
# Chrome trace files
# ----------------------------------------------------------------------
def validate_chrome_trace_data(data: Any) -> dict[str, int]:
    """Validate a parsed Chrome trace document; returns event counts."""
    _require(isinstance(data, dict), "trace root must be a JSON object")
    events = data.get("traceEvents")
    _require(isinstance(events, list), "traceEvents must be a list")
    counts = {"X": 0, "M": 0}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(event, dict), f"{where} must be an object")
        phase = event.get("ph")
        _require(phase in ("X", "M"), f"{where}.ph must be 'X' or 'M'")
        _require(isinstance(event.get("name"), str),
                 f"{where}.name must be a string")
        _require(isinstance(event.get("pid"), int),
                 f"{where}.pid must be an int")
        _require(isinstance(event.get("tid"), int),
                 f"{where}.tid must be an int")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                _require(isinstance(value, (int, float)) and value >= 0,
                         f"{where}.{key} must be a non-negative number")
            args = event.get("args")
            _require(isinstance(args, dict), f"{where}.args must be an object")
        counts[phase] += 1
    _require(counts["X"] > 0, "trace contains no complete ('X') span events")
    return counts


def validate_chrome_trace(path) -> dict[str, int]:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    return validate_chrome_trace_data(data)


# ----------------------------------------------------------------------
# JSONL run logs
# ----------------------------------------------------------------------
_SPAN_KEYS = ("name", "depth", "start", "pid", "attrs")


def validate_run_log_records(records: list[dict[str, Any]]) -> dict[str, int]:
    """Validate parsed run-log records; returns per-type counts."""
    _require(bool(records), "run log is empty")
    head, tail = records[0], records[-1]
    _require(head.get("type") == "run", "first record must have type 'run'")
    _require(head.get("version") == RUN_LOG_VERSION,
             f"run log version must be {RUN_LOG_VERSION}")
    _require(isinstance(head.get("name"), str), "run name must be a string")
    _require(tail.get("type") == "end", "last record must have type 'end'")
    counts: dict[str, int] = {}
    previous_depth = -1
    for i, record in enumerate(records):
        kind = record.get("type")
        _require(isinstance(kind, str), f"record {i} lacks a 'type'")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "span":
            for key in _SPAN_KEYS:
                _require(key in record, f"span record {i} lacks {key!r}")
            depth = record["depth"]
            _require(isinstance(depth, int) and depth >= 0,
                     f"span record {i} depth must be a non-negative int")
            _require(depth <= previous_depth + 1,
                     f"span record {i} depth {depth} breaks pre-order "
                     f"(previous depth {previous_depth})")
            previous_depth = depth
        elif kind == "metrics":
            _require(isinstance(record.get("values"), dict),
                     f"metrics record {i} lacks a 'values' object")
    _require(counts.get("run", 0) == 1, "expected exactly one 'run' record")
    _require(counts.get("end", 0) == 1, "expected exactly one 'end' record")
    _require(counts.get("metrics", 0) == 1,
             "expected exactly one 'metrics' record")
    _require(counts.get("span", 0) > 0, "run log contains no span records")
    return counts


def validate_run_log(path) -> dict[str, int]:
    try:
        records = load_run_log(path)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSONL: {exc}") from exc
    return validate_run_log_records(records)


def main(argv: list[str] | None = None) -> int:
    """Validate each path by suffix: ``.jsonl`` = run log, else trace."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate ARTIFACT...",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            if str(path).endswith(".jsonl"):
                counts = validate_run_log(path)
            else:
                counts = validate_chrome_trace(path)
        except (OSError, ValidationError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
        else:
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"ok {path}: {summary}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
