"""Schema validation for exported observability artifacts.

Used by the test suite and the CI smoke job (as
``python -m repro.obs.validate trace.json run.jsonl``) to check that a
``--trace`` file is valid Chrome Trace Event Format, a ``--log-json``
file is a well-formed JSONL run log, a live-plane ``status.json`` is a
well-formed snapshot and ``ledger.jsonl`` holds well-formed run
records, without pulling in a JSON-schema dependency.
"""

from __future__ import annotations

import json
import sys
from typing import Any

from repro.obs.export import RUN_LOG_VERSION, load_run_log
from repro.obs.ledger import LEDGER_VERSION
from repro.obs.live import STATUS_VERSION


class ValidationError(ValueError):
    """An artifact does not match the expected schema."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


# ----------------------------------------------------------------------
# Chrome trace files
# ----------------------------------------------------------------------
def validate_chrome_trace_data(data: Any) -> dict[str, int]:
    """Validate a parsed Chrome trace document; returns event counts."""
    _require(isinstance(data, dict), "trace root must be a JSON object")
    events = data.get("traceEvents")
    _require(isinstance(events, list), "traceEvents must be a list")
    counts = {"X": 0, "M": 0}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        _require(isinstance(event, dict), f"{where} must be an object")
        phase = event.get("ph")
        _require(phase in ("X", "M"), f"{where}.ph must be 'X' or 'M'")
        _require(isinstance(event.get("name"), str),
                 f"{where}.name must be a string")
        _require(isinstance(event.get("pid"), int),
                 f"{where}.pid must be an int")
        _require(isinstance(event.get("tid"), int),
                 f"{where}.tid must be an int")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                _require(isinstance(value, (int, float)) and value >= 0,
                         f"{where}.{key} must be a non-negative number")
            args = event.get("args")
            _require(isinstance(args, dict), f"{where}.args must be an object")
        counts[phase] += 1
    _require(counts["X"] > 0, "trace contains no complete ('X') span events")
    return counts


def validate_chrome_trace(path) -> dict[str, int]:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    return validate_chrome_trace_data(data)


# ----------------------------------------------------------------------
# JSONL run logs
# ----------------------------------------------------------------------
_SPAN_KEYS = ("name", "depth", "start", "pid", "attrs")

#: Required fields per known structured-event kind.  Unknown kinds are
#: allowed (forward compatibility); known kinds missing their payload
#: are a validation failure — this is what keeps ``repro report
#: --validate`` honest about the event vocabulary the supervision and
#: artifact layers added after the original exporter.
_EVENT_REQUIRED_FIELDS = {
    "pool-fallback": ("reason", "items"),
    "supervisor-serial": ("reason", "items"),
    "task-timeout": ("index", "attempt", "timeout_seconds"),
    "task-retry": ("index", "attempt", "reason", "delay_seconds"),
    "task-degraded": ("index", "attempts", "reason"),
    "task-resumed": ("index", "key"),
    "checkpoint": ("run_id", "key", "seq"),
    "batch-requeued": ("worker", "items"),
    "artifact-corrupt": ("artifact", "path", "reason"),
    "prune-broadcast": ("entries", "source"),
}

_EVENT_LEVELS = ("info", "warning", "error")


def _validate_event(record: dict[str, Any], where: str) -> None:
    kind = record.get("kind")
    _require(isinstance(kind, str) and kind,
             f"{where} lacks a non-empty 'kind'")
    _require(record.get("level") in _EVENT_LEVELS,
             f"{where} level must be one of {_EVENT_LEVELS}")
    _require(isinstance(record.get("ts"), (int, float)),
             f"{where} lacks a numeric 'ts'")
    for field in _EVENT_REQUIRED_FIELDS.get(kind, ()):
        _require(field in record,
                 f"{where} ({kind!r} event) lacks {field!r}")


def validate_run_log_records(records: list[dict[str, Any]]) -> dict[str, int]:
    """Validate parsed run-log records; returns per-type counts."""
    _require(bool(records), "run log is empty")
    head, tail = records[0], records[-1]
    _require(head.get("type") == "run", "first record must have type 'run'")
    _require(head.get("version") == RUN_LOG_VERSION,
             f"run log version must be {RUN_LOG_VERSION}")
    _require(isinstance(head.get("name"), str), "run name must be a string")
    _require(tail.get("type") == "end", "last record must have type 'end'")
    counts: dict[str, int] = {}
    previous_depth = -1
    for i, record in enumerate(records):
        kind = record.get("type")
        _require(isinstance(kind, str), f"record {i} lacks a 'type'")
        counts[kind] = counts.get(kind, 0) + 1
        if kind == "span":
            for key in _SPAN_KEYS:
                _require(key in record, f"span record {i} lacks {key!r}")
            depth = record["depth"]
            _require(isinstance(depth, int) and depth >= 0,
                     f"span record {i} depth must be a non-negative int")
            _require(depth <= previous_depth + 1,
                     f"span record {i} depth {depth} breaks pre-order "
                     f"(previous depth {previous_depth})")
            previous_depth = depth
        elif kind == "metrics":
            values = record.get("values")
            _require(isinstance(values, dict),
                     f"metrics record {i} lacks a 'values' object")
            for key, value in values.items():
                if isinstance(key, str) and key.startswith("synthsearch."):
                    _require(isinstance(value, (int, float))
                             and not isinstance(value, bool),
                             f"metrics record {i} key {key!r} must be "
                             f"numeric")
        elif kind == "event":
            _validate_event(record, f"event record {i}")
    _require(counts.get("run", 0) == 1, "expected exactly one 'run' record")
    _require(counts.get("end", 0) == 1, "expected exactly one 'end' record")
    _require(counts.get("metrics", 0) == 1,
             "expected exactly one 'metrics' record")
    _require(counts.get("span", 0) > 0, "run log contains no span records")
    return counts


def validate_run_log(path) -> dict[str, int]:
    try:
        records = load_run_log(path)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path}: not valid JSONL: {exc}") from exc
    return validate_run_log_records(records)


# ----------------------------------------------------------------------
# Live-plane status snapshots
# ----------------------------------------------------------------------
def validate_status_data(data: Any) -> dict[str, int]:
    """Validate a parsed ``status.json`` snapshot; returns counts."""
    _require(isinstance(data, dict), "status must be a JSON object")
    _require(data.get("version") == STATUS_VERSION,
             f"status version must be {STATUS_VERSION}")
    _require(isinstance(data.get("run_id"), str) and data["run_id"],
             "status lacks a run_id")
    _require(isinstance(data.get("pid"), int), "status pid must be an int")
    _require(isinstance(data.get("state"), str), "status lacks a state")
    for key in ("started", "updated"):
        _require(isinstance(data.get(key), (int, float)),
                 f"status {key} must be a number")
    tasks = data.get("tasks")
    _require(isinstance(tasks, dict), "status lacks a 'tasks' object")
    for name, value in tasks.items():
        _require(isinstance(value, int) and value >= 0,
                 f"status tasks[{name!r}] must be a non-negative int")
    workers = data.get("workers", [])
    _require(isinstance(workers, list), "status workers must be a list")
    for i, worker in enumerate(workers):
        _require(isinstance(worker, dict) and "ident" in worker
                 and isinstance(worker.get("busy"), bool),
                 f"status workers[{i}] lacks ident/busy")
    events = data.get("events", [])
    _require(isinstance(events, list), "status events must be a list")
    for i, record in enumerate(events):
        _validate_event(record, f"status events[{i}]")
    return {"workers": len(workers), "events": len(events),
            "snapshots": int(data.get("snapshots", 0))}


def validate_status(path) -> dict[str, int]:
    with open(path) as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"{path}: not valid JSON: {exc}") from exc
    return validate_status_data(data)


# ----------------------------------------------------------------------
# Cross-run ledger
# ----------------------------------------------------------------------
def validate_ledger_records(
        records: list[dict[str, Any]]) -> dict[str, int]:
    """Validate parsed ledger records; returns record counts."""
    _require(bool(records), "ledger is empty")
    for i, record in enumerate(records):
        where = f"ledger record {i}"
        _require(isinstance(record, dict), f"{where} must be an object")
        _require(record.get("v") == LEDGER_VERSION,
                 f"{where} version must be {LEDGER_VERSION}")
        _require(isinstance(record.get("run_id"), str) and record["run_id"],
                 f"{where} lacks a run_id")
        _require(isinstance(record.get("command"), str),
                 f"{where} lacks a command")
        for key in ("flags", "verdict", "counters", "stage_seconds"):
            _require(isinstance(record.get(key), dict),
                     f"{where} {key!r} must be an object")
        digest = record.get("verdict_digest")
        _require(isinstance(digest, str) and len(digest) == 16,
                 f"{where} verdict_digest must be a 16-char digest")
    return {"records": len(records)}


def validate_ledger(path) -> dict[str, int]:
    from repro.obs import ledger as ledger_mod

    records, skipped = ledger_mod.load(path)
    _require(skipped == 0,
             f"{path}: {skipped} unparseable ledger line(s)")
    return validate_ledger_records(records)


def _validator_for(path: str):
    name = str(path)
    base = name.rsplit("/", 1)[-1]
    if base == "status.json" or base.endswith(".status.json"):
        return validate_status
    if base.endswith("ledger.jsonl"):
        return validate_ledger
    if name.endswith(".jsonl"):
        return validate_run_log
    return validate_chrome_trace


def main(argv: list[str] | None = None) -> int:
    """Validate each path by name: ``status.json`` = live snapshot,
    ``*ledger.jsonl`` = ledger, other ``.jsonl`` = run log, else trace."""
    paths = sys.argv[1:] if argv is None else argv
    if not paths:
        print("usage: python -m repro.obs.validate ARTIFACT...",
              file=sys.stderr)
        return 2
    status = 0
    for path in paths:
        try:
            counts = _validator_for(path)(path)
        except (OSError, ValidationError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
        else:
            summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"ok {path}: {summary}")
    return status


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
