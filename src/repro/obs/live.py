"""Live run telemetry: rate-limited status snapshots (`repro ps/top`).

While an hour-scale sweep or synthesis search executes, the only
windows into it used to be post-hoc (``--trace``, ``--log-json``,
``repro report``).  This module gives a running command a *live plane*:
a :class:`LiveRun` publishes a single ``status.json`` under
``.repro-cache/runs/<run-id>/`` — the same directory a checkpointed
run's journal lives in, or a fresh ad-hoc directory otherwise — that
``repro ps`` (list runs, liveness via pid + snapshot age) and
``repro top`` (refreshing terminal view) read from the outside.

Design constraints, in order:

* **Bounded write cost.**  Snapshots are rate-limited to one per
  :data:`DEFAULT_INTERVAL` seconds (the :meth:`LiveRun.due` check is a
  single monotonic-clock comparison, so heartbeat call sites in the
  scheduler / supervisor / pool loops pay nothing between publishes),
  and each publish is one small JSON document.
* **Atomic replacement.**  The snapshot is written to a temporary file
  in the same directory and ``os.replace``-d over ``status.json``, so
  an external reader never observes a torn document.
* **No effect on verdicts.**  The plane only *observes*: progress
  counters are bumped from the supervision bookkeeping, worker payloads
  are built by the scheduler at publish time, and nothing reads the
  snapshot back into the computation.  A sweep with the plane on is
  byte-identical to one with it off (the differential test checks).

Stall detection: a worker whose in-flight task age exceeds
``max(STALL_FACTOR * p95, STALL_MIN_SECONDS)`` — p95 taken from the
run's task-duration histogram (:meth:`repro.obs.metrics.Histogram.
quantile`) — is flagged ``stalled`` in its worker entry.  The flag is a
hint for ``repro top``, not an enforcement mechanism; enforcement is
the supervisor's ``--timeout``.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable

from repro.obs import runtime as obs

#: File name of the snapshot inside the run directory.
STATUS_NAME = "status.json"

#: Snapshot documents carry a format version for forward compatibility.
STATUS_VERSION = 1

#: Default seconds between snapshot publications (~1 Hz).
DEFAULT_INTERVAL = 1.0

#: A worker is flagged stalled when its in-flight task age exceeds
#: ``max(STALL_FACTOR * p95, STALL_MIN_SECONDS)``.
STALL_FACTOR = 4.0
STALL_MIN_SECONDS = 1.0

#: ``repro ps`` calls a "running" snapshot stale once it is older than
#: this many seconds (a live publisher refreshes at ~1 Hz, so a large
#: multiple of the interval means the writer is gone or wedged).
STALE_AFTER_SECONDS = 30.0

#: Warning-and-above events forwarded into the snapshot (ring buffer).
EVENT_BUFFER = 8

_PROGRESS_KEYS = ("total", "done", "in_flight", "retried", "degraded",
                  "resumed", "requeued")


def stall_threshold(p95: float | None) -> float:
    """Seconds of in-flight age beyond which a worker reads as stalled."""
    if p95 is None:
        return float("inf")
    return max(STALL_FACTOR * p95, STALL_MIN_SECONDS)


class LiveRun:
    """Publisher of one run's ``status.json`` snapshot.

    All state lives in the parent process; heartbeat call sites push
    cheap counter increments (:meth:`note`) and hand richer payloads
    (worker tables, cost model readouts) to :meth:`publish` only when
    :meth:`due` says a snapshot is actually owed.
    """

    def __init__(self, directory: str | Path, run_id: str,
                 command: str | None = None,
                 interval: float = DEFAULT_INTERVAL) -> None:
        self.directory = Path(directory)
        self.run_id = run_id
        self.command = command
        self.interval = interval
        self.pid = os.getpid()
        self.started = time.time()
        self.state = "running"
        self.static: dict[str, Any] = {}
        self.counts: dict[str, int] = {key: 0 for key in _PROGRESS_KEYS}
        self.stage: dict[str, Any] = {}
        self.events: deque = deque(maxlen=EVENT_BUFFER)
        self.snapshots = 0
        self._last: float | None = None
        self._sink_token: Any = None

    # -- cheap heartbeat API (called from hot loops) -------------------
    def due(self) -> bool:
        """Whether enough time has passed for the next snapshot."""
        return (self._last is None
                or time.monotonic() - self._last >= self.interval)

    def note(self, **increments: int) -> None:
        """Bump progress counters (``done=1``, ``retried=1``, ...)."""
        for key, amount in increments.items():
            self.counts[key] = self.counts.get(key, 0) + amount

    def annotate(self, **fields: Any) -> None:
        """Attach static identity fields (protocol, fingerprint, ...)."""
        self.static.update(fields)

    def begin_stage(self, name: str, total: int = 0,
                    resumed: int = 0) -> None:
        """A supervised map is starting: account its items up front."""
        self.stage = {"name": name}
        self.note(total=total, resumed=resumed, done=resumed)

    def record_event(self, record: dict[str, Any]) -> None:
        """Sink for warning-level obs events (see :func:`activate`)."""
        if record.get("level") != "info":
            self.events.append(record)

    # -- snapshot construction and publication -------------------------
    def snapshot(self, extra: dict[str, Any] | None = None) -> dict[str, Any]:
        """The full snapshot document (JSON-ready)."""
        counts = dict(self.counts)
        document: dict[str, Any] = {
            "version": STATUS_VERSION,
            "run_id": self.run_id,
            "pid": self.pid,
            "command": self.command,
            "state": self.state,
            "started": self.started,
            "updated": time.time(),
            "tasks": counts,
            "snapshots": self.snapshots,
        }
        document.update(self.static)
        if self.stage:
            document["stage"] = dict(self.stage)
        if self.events:
            document["events"] = list(self.events)
        if extra:
            for key, value in extra.items():
                if isinstance(value, dict) \
                        and isinstance(document.get(key), dict):
                    document[key].update(value)
                else:
                    document[key] = value
        return document

    def publish(self, extra: dict[str, Any] | None = None,
                force: bool = False) -> bool:
        """Atomically replace ``status.json`` (rate-limited).

        Returns whether a snapshot was written.  Any I/O failure is
        swallowed: telemetry must never take a run down.
        """
        if not force and not self.due():
            return False
        self._last = time.monotonic()
        self.snapshots += 1
        document = self.snapshot(extra)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            scratch = self.directory / f"{STATUS_NAME}.tmp.{self.pid}"
            scratch.write_text(
                json.dumps(document, default=str) + "\n")
            os.replace(scratch, self.directory / STATUS_NAME)
        except OSError:
            return False
        obs.metric("live.snapshots")
        return True

    def finish(self, state: str = "finished", **fields: Any) -> None:
        """Publish the final snapshot with a terminal *state*."""
        self.state = state
        self.static.update(fields)
        self.publish(force=True)


# ----------------------------------------------------------------------
# The ambient live plane (mirrors repro.obs.runtime's ambient run)
# ----------------------------------------------------------------------
_ACTIVE: LiveRun | None = None


def active() -> LiveRun | None:
    """The ambient live run, or ``None`` when the plane is off."""
    return _ACTIVE


def activate(live_run: LiveRun) -> LiveRun:
    """Install *live_run* as the ambient live plane (one per process)
    and subscribe it to warning-level observability events."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError(
            f"a live run ({_ACTIVE.run_id!r}) is already active")
    _ACTIVE = live_run
    live_run._sink_token = obs.add_event_sink(live_run.record_event)
    return live_run


def deactivate(live_run: LiveRun) -> None:
    global _ACTIVE
    if live_run._sink_token is not None:
        obs.remove_event_sink(live_run._sink_token)
        live_run._sink_token = None
    if _ACTIVE is live_run:
        _ACTIVE = None


def note(**increments: int) -> None:
    """Ambient-plane counter bump (no-op when the plane is off)."""
    if _ACTIVE is not None:
        _ACTIVE.note(**increments)


def begin_stage(name: str, total: int = 0, resumed: int = 0) -> None:
    """Ambient-plane stage announcement (no-op when the plane is off)."""
    if _ACTIVE is not None:
        _ACTIVE.begin_stage(name, total=total, resumed=resumed)


def cache_payload(stats) -> dict[str, Any]:
    """Hit-rate snapshot fields from an ``EngineStats`` (or ``None``)."""
    if stats is None:
        return {}

    def rates(hits: int, misses: int) -> dict[str, Any]:
        total = hits + misses
        return {"hits": hits, "misses": misses,
                "rate": hits / total if total else 0.0}

    return {"cache": {
        "results": rates(stats.cache_hits, stats.cache_misses),
        "artifacts": rates(stats.artifact_hits, stats.artifact_misses),
    }}


def tick(payload: Callable[[], dict[str, Any]] | None = None) -> bool:
    """Publish a snapshot if one is due (no-op when the plane is off).

    *payload*, when given, is a zero-argument callable producing the
    extra snapshot fields; it is invoked **only** when a snapshot is
    actually owed, so heartbeat loops never pay payload-construction
    cost between publishes.
    """
    live_run = _ACTIVE
    if live_run is None or not live_run.due():
        return False
    return live_run.publish(payload() if payload is not None else None)


# ----------------------------------------------------------------------
# Reading the plane from the outside (repro ps / repro top)
# ----------------------------------------------------------------------
def pid_alive(pid: int) -> bool:
    """Best-effort liveness probe of another process on this host."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def load_status(directory: str | Path) -> dict[str, Any] | None:
    """Parse one run directory's snapshot (``None`` if absent/torn)."""
    path = Path(directory) / STATUS_NAME
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError):
        return None


def liveness(status: dict[str, Any],
             now: float | None = None) -> str:
    """Classify a snapshot: ``live`` / ``stale`` / its terminal state.

    A ``running`` snapshot is live while the publishing pid exists and
    the snapshot is fresh; a dead pid or an old snapshot means the run
    ended without a final publish (killed) — ``stale``.
    """
    state = status.get("state", "unknown")
    if state != "running":
        return state
    now = time.time() if now is None else now
    age = now - float(status.get("updated", 0.0))
    pid = status.get("pid")
    if age <= STALE_AFTER_SECONDS and isinstance(pid, int) \
            and pid_alive(pid):
        return "live"
    return "stale"


def scan_runs(root: str | Path) -> list[dict[str, Any]]:
    """All run snapshots under *root*, newest-updated last."""
    directory = Path(root)
    if not directory.is_dir():
        return []
    statuses = []
    for child in directory.iterdir():
        status = load_status(child)
        if status is not None:
            statuses.append(status)
    statuses.sort(key=lambda s: s.get("updated", 0.0))
    return statuses


# ----------------------------------------------------------------------
# Terminal rendering (repro ps / repro top)
# ----------------------------------------------------------------------
def _age(seconds: float) -> str:
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{seconds / 60:.0f}m"
    return f"{seconds / 3600:.1f}h"


def render_ps(statuses: list[dict[str, Any]],
              now: float | None = None) -> str:
    """The ``repro ps`` table over scanned snapshots."""
    now = time.time() if now is None else now
    header = (f"{'RUN-ID':24s} {'STATE':9s} {'COMMAND':11s} "
              f"{'PROTOCOL':20s} {'PROGRESS':>9s} {'AGE':>6s}")
    lines = [header]
    for status in reversed(statuses):  # newest first
        tasks = status.get("tasks") or {}
        progress = f"{tasks.get('done', 0)}/{tasks.get('total', 0)}"
        age = _age(max(0.0, now - float(status.get("updated", now))))
        lines.append(
            f"{str(status.get('run_id', '?')):24s} "
            f"{liveness(status, now):9s} "
            f"{str(status.get('command') or '-'):11s} "
            f"{str(status.get('protocol') or '-'):20s} "
            f"{progress:>9s} {age:>6s}")
    if len(lines) == 1:
        lines.append("(no runs found)")
    return "\n".join(lines)


def _progress_bar(done: int, total: int, width: int = 24) -> str:
    if total <= 0:
        return "-" * width
    filled = int(round(width * min(done, total) / total))
    return "#" * filled + "." * (width - filled)


def render_top(status: dict[str, Any],
               now: float | None = None) -> str:
    """The ``repro top`` terminal view of one snapshot."""
    now = time.time() if now is None else now
    state = liveness(status, now)
    tasks = status.get("tasks") or {}
    done, total = tasks.get("done", 0), tasks.get("total", 0)
    lines = [
        f"run {status.get('run_id')} — repro "
        f"{status.get('command') or '?'} "
        f"{status.get('protocol') or ''} [{state}]".rstrip(),
        f"  progress  [{_progress_bar(done, total)}] {done}/{total} done"
        f", {tasks.get('in_flight', 0)} in flight"
        f", {tasks.get('retried', 0)} retried"
        f", {tasks.get('degraded', 0)} degraded"
        + (f", {tasks.get('resumed', 0)} resumed"
           if tasks.get("resumed") else ""),
    ]
    stage = status.get("stage") or {}
    if stage:
        detail = f"  stage     {stage.get('name', '?')}"
        ewma = stage.get("ewma_task_seconds")
        if ewma:
            detail += f": {ewma * 1e3:.1f} ms/task"
        p95 = stage.get("p95_task_seconds")
        if p95:
            detail += f" (p95 {p95 * 1e3:.1f} ms)"
        eta = stage.get("eta_seconds")
        if eta is not None:
            detail += f", eta ~{eta:.1f} s"
        lines.append(detail)
    cache = status.get("cache") or {}
    cache_parts = []
    for layer in ("results", "artifacts"):
        rates = cache.get(layer)
        if rates and (rates.get("hits") or rates.get("misses")):
            cache_parts.append(
                f"{layer} {rates.get('rate', 0.0):.0%} hit "
                f"({rates.get('hits', 0)}/"
                f"{rates.get('hits', 0) + rates.get('misses', 0)})")
    if cache_parts:
        lines.append("  cache     " + ", ".join(cache_parts))
    workers = status.get("workers") or []
    for i, worker in enumerate(workers):
        prefix = "  workers   " if i == 0 else "            "
        if worker.get("busy"):
            body = (f"#{worker.get('ident')} pid {worker.get('pid')}  "
                    f"busy  item {worker.get('task')}  "
                    f"{worker.get('age_seconds', 0.0):.1f}s")
            if worker.get("stalled"):
                body += "  !! stalled"
        else:
            body = f"#{worker.get('ident')} pid {worker.get('pid')}  idle"
        lines.append(prefix + body)
    for event in status.get("events") or []:
        detail = {k: v for k, v in event.items()
                  if k not in ("ts", "kind", "level", "pid")}
        lines.append(f"  event     [{event.get('level')}] "
                     f"{event.get('kind')}"
                     + (f" {detail}" if detail else ""))
    lines.append(f"  updated   {_age(max(0.0, now - float(status.get('updated', now))))} ago"
                 f" ({status.get('snapshots', 0)} snapshots)")
    return "\n".join(lines)
