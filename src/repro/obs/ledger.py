"""Cross-run ledger: append-only run records (`repro runs`).

The live plane (:mod:`repro.obs.live`) answers "how is this run doing
*now*"; the ledger answers "how does this run compare to the last one".
At run finish the CLI (and the benchmark harness) folds one JSON record
— final counters, flags, protocol fingerprint, a verdict digest, and
wall-clock — into ``.repro-cache/ledger.jsonl``.  The file is
append-only JSONL and loads corruption-tolerantly like
:class:`repro.engine.journal.RunJournal`: a torn tail or a flipped bit
costs the damaged line, never the ledger.

``repro runs list|show|diff`` read it back.  ``diff`` compares a
candidate run against an explicit baseline or the latest earlier record
with the same (fingerprint, flags) identity, and flags:

* **verdict drift** — digests differ (always a finding, never gated by
  the threshold);
* **timing regressions** — wall clock or a per-stage time grew by more
  than ``threshold`` (default 25%) over a noise floor;
* **health regressions** — fault counters (timeouts, retries,
  degradations, pool fallbacks, corrupt artifacts) strictly increased;
* **work drift** — workload counters (tasks run, states packed, trails
  searched) changed in *either* direction, which on a matched identity
  means the computation itself changed shape;
* **cache effectiveness drops** — a hit-rate fell by more than the
  threshold (as an absolute rate delta).

Records are version-stamped; unknown versions are listed but excluded
from diffs.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any

#: Ledger file name, directly under the engine cache directory.
LEDGER_NAME = "ledger.jsonl"

#: Record format version.
LEDGER_VERSION = 1

#: Relative growth beyond which a timing counts as a regression.
DEFAULT_THRESHOLD = 0.25

#: Timings below this floor are noise — never flagged.
TIME_FLOOR_SECONDS = 0.05

#: Counters whose *increase* signals degraded run health (flat
#: :class:`repro.engine.EngineStats` names, as recorded by the CLI).
HEALTH_COUNTERS = (
    "supervisor_timeouts", "supervisor_retries", "supervisor_degraded",
    "pool_fallbacks", "artifact_corrupt", "scheduler_requeued",
)

#: Counters measuring the amount of work done: any drift on a matched
#: identity means the two runs did not compute the same thing.  Only
#: timing-independent counters belong here (``scheduler_batches``, for
#: example, varies with the adaptive batch sizing and must not).
WORK_COUNTERS = (
    "work_items", "states_explored",
    # Lattice-search split: both are intrinsic to the candidate set
    # (judged against the inherited witness chain, never against the
    # scheduling-dependent blocked-mask index), so any drift on a
    # matched identity is a pruning regression, not partition noise.
    "combos_pruned", "full_evaluations",
)

#: (hits, misses) counter pairs folded into hit rates.
CACHE_RATES = {
    "results": ("cache_hits", "cache_misses"),
    "artifacts": ("artifact_hits", "artifact_misses"),
}


def ledger_path(cache_dir: str | Path) -> Path:
    return Path(cache_dir) / LEDGER_NAME


def verdict_digest(verdict: dict[str, Any]) -> str:
    """A stable digest of a small, canonical verdict dict."""
    canonical = json.dumps(verdict, sort_keys=True,
                           separators=(",", ":"), default=str)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def make_record(run_id: str, command: str, *,
                protocol: str | None = None,
                fingerprint: str | None = None,
                flags: dict[str, Any] | None = None,
                verdict: dict[str, Any] | None = None,
                exit_status: int | None = None,
                wall_seconds: float | None = None,
                started: float | None = None,
                counters: dict[str, Any] | None = None,
                stage_seconds: dict[str, float] | None = None,
                **extra: Any) -> dict[str, Any]:
    """Assemble one ledger record (JSON-ready)."""
    record: dict[str, Any] = {
        "v": LEDGER_VERSION,
        "run_id": run_id,
        "command": command,
        "protocol": protocol,
        "fingerprint": fingerprint,
        "flags": dict(flags or {}),
        "verdict": dict(verdict or {}),
        "verdict_digest": verdict_digest(verdict or {}),
        "exit_status": exit_status,
        "wall_seconds": wall_seconds,
        "started": started,
        "counters": dict(counters or {}),
        "stage_seconds": dict(stage_seconds or {}),
    }
    record.update(extra)
    return record


def append(path: str | Path, record: dict[str, Any]) -> None:
    """Append *record* as one line (O_APPEND, so concurrent writers
    from parallel benchmark processes interleave whole lines)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True, default=str) + "\n"
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line.encode())
    finally:
        os.close(fd)


def load(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """All parseable records plus the count of damaged lines skipped."""
    path = Path(path)
    records: list[dict[str, Any]] = []
    skipped = 0
    try:
        text = path.read_text()
    except OSError:
        return records, skipped
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError:
            skipped += 1
            continue
        if not isinstance(record, dict) or "run_id" not in record:
            skipped += 1
            continue
        records.append(record)
    return records, skipped


def find_run(records: list[dict[str, Any]],
             run_id: str) -> dict[str, Any] | None:
    """The last record for *run_id* (re-runs shadow earlier entries)."""
    for record in reversed(records):
        if record.get("run_id") == run_id:
            return record
    return None


def identity(record: dict[str, Any]) -> tuple:
    """The comparison identity: what must match for a fair diff."""
    flags = record.get("flags") or {}
    return (record.get("command"), record.get("fingerprint"),
            json.dumps(flags, sort_keys=True, default=str))


def latest_matching(records: list[dict[str, Any]],
                    candidate: dict[str, Any]) -> dict[str, Any] | None:
    """The newest record before *candidate* with the same identity.

    Records appended after the candidate never qualify — "compare my
    run against the previous one" must not silently pick up a run that
    happened later.
    """
    want = identity(candidate)
    cutoff = len(records)
    for i in reversed(range(len(records))):
        if records[i] is candidate or (
                cutoff == len(records)
                and records[i].get("run_id") == candidate.get("run_id")):
            cutoff = i
            break
    for record in reversed(records[:cutoff]):
        if record.get("run_id") == candidate.get("run_id"):
            continue
        if record.get("v") != LEDGER_VERSION:
            continue
        if identity(record) == want:
            return record
    return None


def _rate(counters: dict[str, Any], hits_key: str,
          misses_key: str) -> float | None:
    hits = counters.get(hits_key) or 0
    misses = counters.get(misses_key) or 0
    if hits + misses == 0:
        return None
    return hits / (hits + misses)


def diff(candidate: dict[str, Any], baseline: dict[str, Any],
         threshold: float = DEFAULT_THRESHOLD) -> dict[str, Any]:
    """Compare *candidate* against *baseline*.

    Returns ``{"baseline", "candidate", "regressions", "notes"}`` where
    ``regressions`` is a list of ``{"kind", "name", "baseline",
    "candidate", "detail"}`` findings, worst kinds first.
    """
    regressions: list[dict[str, Any]] = []
    notes: list[str] = []

    if identity(candidate) != identity(baseline):
        notes.append("identities differ (command/fingerprint/flags): "
                     "timing comparison may not be apples-to-apples")

    if candidate.get("verdict_digest") != baseline.get("verdict_digest"):
        regressions.append({
            "kind": "verdict", "name": "verdict_digest",
            "baseline": baseline.get("verdict_digest"),
            "candidate": candidate.get("verdict_digest"),
            "detail": f"verdicts differ: {baseline.get('verdict')!r} "
                      f"-> {candidate.get('verdict')!r}",
        })

    def timing(name: str, base: Any, cand: Any) -> None:
        if not isinstance(base, (int, float)) \
                or not isinstance(cand, (int, float)):
            return
        if cand <= max(base, TIME_FLOOR_SECONDS) * (1.0 + threshold):
            return
        ratio = cand / base if base > 0 else float("inf")
        regressions.append({
            "kind": "timing", "name": name,
            "baseline": base, "candidate": cand,
            "detail": f"{name}: {base:.3f}s -> {cand:.3f}s "
                      f"({ratio:.2f}x)",
        })

    timing("wall_seconds", baseline.get("wall_seconds"),
           candidate.get("wall_seconds"))
    base_stages = baseline.get("stage_seconds") or {}
    cand_stages = candidate.get("stage_seconds") or {}
    for stage in sorted(set(base_stages) & set(cand_stages)):
        timing(f"stage:{stage}", base_stages[stage], cand_stages[stage])

    base_counters = baseline.get("counters") or {}
    cand_counters = candidate.get("counters") or {}
    for name in HEALTH_COUNTERS:
        base, cand = base_counters.get(name, 0), cand_counters.get(name, 0)
        if isinstance(cand, (int, float)) \
                and isinstance(base, (int, float)) and cand > base:
            regressions.append({
                "kind": "health", "name": name,
                "baseline": base, "candidate": cand,
                "detail": f"{name}: {base} -> {cand}",
            })
    # Work drift is only meaningful when both runs reused the cache
    # equally: a run that hits the result cache legitimately computes
    # less than the run that populated it.
    comparable_work = (base_counters.get("cache_hits", 0)
                       == cand_counters.get("cache_hits", 0))
    for name in WORK_COUNTERS:
        base, cand = base_counters.get(name, 0), cand_counters.get(name, 0)
        if base != cand:
            if comparable_work:
                regressions.append({
                    "kind": "work", "name": name,
                    "baseline": base, "candidate": cand,
                    "detail": f"{name}: {base} -> {cand} "
                              "(work drift on matched identity)",
                })
            else:
                notes.append(f"{name} differs ({base} -> {cand}) but so "
                             "do cache hits — not counted as drift")
    for layer, (hits_key, misses_key) in CACHE_RATES.items():
        base = _rate(base_counters, hits_key, misses_key)
        cand = _rate(cand_counters, hits_key, misses_key)
        if base is not None and cand is not None \
                and base - cand > threshold:
            regressions.append({
                "kind": "cache", "name": layer,
                "baseline": base, "candidate": cand,
                "detail": f"{layer} hit rate: {base:.0%} -> {cand:.0%}",
            })

    order = {"verdict": 0, "timing": 1, "health": 2, "work": 3,
             "cache": 4}
    regressions.sort(key=lambda r: order.get(r["kind"], 9))
    return {
        "baseline": baseline.get("run_id"),
        "candidate": candidate.get("run_id"),
        "threshold": threshold,
        "regressions": regressions,
        "notes": notes,
    }


# ----------------------------------------------------------------------
# Terminal rendering (repro runs list / show / diff)
# ----------------------------------------------------------------------
def render_list(records: list[dict[str, Any]],
                skipped: int = 0) -> str:
    header = (f"{'RUN-ID':24s} {'COMMAND':11s} {'PROTOCOL':20s} "
              f"{'VERDICT':16s} {'WALL':>8s} {'EXIT':>4s}")
    lines = [header]
    for record in reversed(records):  # newest first
        wall = record.get("wall_seconds")
        lines.append(
            f"{str(record.get('run_id', '?')):24s} "
            f"{str(record.get('command') or '-'):11s} "
            f"{str(record.get('protocol') or '-'):20s} "
            f"{str(record.get('verdict_digest') or '-'):16s} "
            f"{(f'{wall:.2f}s' if isinstance(wall, (int, float)) else '-'):>8s} "
            f"{str(record.get('exit_status', '-')):>4s}")
    if len(lines) == 1:
        lines.append("(ledger is empty)")
    if skipped:
        lines.append(f"({skipped} damaged line(s) skipped)")
    return "\n".join(lines)


def render_diff(result: dict[str, Any]) -> str:
    lines = [f"diff {result['candidate']} vs baseline "
             f"{result['baseline']} "
             f"(threshold {result['threshold']:.0%})"]
    for note in result["notes"]:
        lines.append(f"  note: {note}")
    if not result["regressions"]:
        lines.append("  no regressions")
    for finding in result["regressions"]:
        lines.append(f"  [{finding['kind']}] {finding['detail']}")
    return "\n".join(lines)
