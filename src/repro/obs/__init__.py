"""`repro.obs` — zero-dependency observability for the repro engine.

Hierarchical span tracing, a metrics registry with one associative
merge path, structured events, and exporters (Chrome trace format,
JSONL run logs, human tree reports).  Instrumented code uses the
ambient-run helpers re-exported here (``obs.span``, ``obs.metric``,
...); they are near-free no-ops unless a run was activated, which the
CLI's ``--trace`` / ``--log-json`` flags and the benchmark harness do.

Depends only on the standard library, by design: `repro.engine` (and
through it nearly every module) imports this package, so it must sit at
the bottom of the dependency graph.
"""

from repro.obs import ledger, live
from repro.obs.export import (
    chrome_trace,
    ledger_record_from_run,
    load_run_log,
    render_report,
    render_run,
    run_log_records,
    write_chrome_trace,
    write_run_log,
)
from repro.obs.live import LiveRun
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    ChildCapture,
    ObsRun,
    active,
    adopt_child,
    annotate,
    event,
    finish,
    fork_capture_begin,
    fork_capture_end,
    gauge,
    metric,
    run,
    span,
    start,
)
from repro.obs.trace import Span, Tracer
from repro.obs.validate import (
    ValidationError,
    validate_chrome_trace,
    validate_ledger,
    validate_run_log,
    validate_status,
)

__all__ = [
    "ChildCapture",
    "Counter",
    "Gauge",
    "Histogram",
    "LiveRun",
    "MetricsRegistry",
    "ObsRun",
    "Span",
    "Tracer",
    "ValidationError",
    "active",
    "adopt_child",
    "annotate",
    "chrome_trace",
    "event",
    "finish",
    "fork_capture_begin",
    "fork_capture_end",
    "gauge",
    "ledger",
    "ledger_record_from_run",
    "live",
    "load_run_log",
    "metric",
    "render_report",
    "render_run",
    "run",
    "run_log_records",
    "span",
    "start",
    "validate_chrome_trace",
    "validate_ledger",
    "validate_run_log",
    "validate_status",
    "write_chrome_trace",
    "write_run_log",
]
