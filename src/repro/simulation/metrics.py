"""Convergence-time statistics over sampled executions."""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass

from repro.simulation.engine import run
from repro.simulation.faults import random_state
from repro.simulation.schedulers import RandomScheduler


@dataclass(frozen=True)
class ConvergenceStats:
    """Summary of a convergence study."""

    ring_size: int
    samples: int
    converged: int
    deadlocked: int
    mean_steps: float | None
    max_steps: int | None

    @property
    def convergence_rate(self) -> float:
        return self.converged / self.samples if self.samples else 0.0

    def summary(self) -> str:
        mean = (f"{self.mean_steps:.1f}"
                if self.mean_steps is not None else "n/a")
        return (f"K={self.ring_size}: {self.converged}/{self.samples} "
                f"converged (deadlocked: {self.deadlocked}), "
                f"mean {mean} steps, max {self.max_steps}")


def convergence_study(instance, samples: int = 200, seed: int = 0,
                      max_steps: int = 10_000,
                      scheduler_factory=None) -> ConvergenceStats:
    """Run *samples* executions from uniformly random states.

    A run counts as converged when it reaches ``I`` within *max_steps*;
    runs ending in a deadlock outside ``I`` are counted separately (a
    strongly convergent protocol shows ``converged == samples``).
    """
    rng = random.Random(seed)
    recovery: list[int] = []
    deadlocked = 0
    for index in range(samples):
        if scheduler_factory is None:
            scheduler = RandomScheduler(seed=rng.randrange(2 ** 31))
        else:
            scheduler = scheduler_factory(index)
        start = random_state(instance, rng)
        trace = run(instance, start, scheduler, max_steps=max_steps)
        if trace.converged:
            recovery.append(trace.recovery_steps)
        elif trace.deadlocked:
            deadlocked += 1
    return ConvergenceStats(
        ring_size=instance.size,
        samples=samples,
        converged=len(recovery),
        deadlocked=deadlocked,
        mean_steps=statistics.fmean(recovery) if recovery else None,
        max_steps=max(recovery) if recovery else None,
    )
