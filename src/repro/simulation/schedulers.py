"""Central-daemon schedulers.

Under interleaving semantics a *scheduler* (daemon) picks, at every step,
one enabled move to execute.  Self-stabilization must hold for **every**
daemon, so besides the random daemon we provide a round-robin one and an
adversarial one that greedily tries to keep the ring outside the
invariant (useful for stress-testing convergence-time claims; it cannot
defeat a strongly convergent protocol, only slow it down).
"""

from __future__ import annotations

import random
from typing import Protocol, Sequence

from repro.protocol.instance import Move


class Scheduler(Protocol):
    """Anything that picks the next move."""

    def choose(self, state, moves: Sequence[Move]) -> Move:
        """Select one of *moves* (never called with an empty sequence)."""
        ...  # pragma: no cover - protocol definition


class RandomScheduler:
    """The random central daemon."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choose(self, state, moves: Sequence[Move]) -> Move:
        return moves[self.rng.randrange(len(moves))]


class RoundRobinScheduler:
    """Cycles process priority: after process ``r`` moves, the next
    enabled process at or after ``r+1`` (ring order) moves."""

    def __init__(self, ring_size: int) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be positive")
        self.ring_size = ring_size
        self._next = 0

    def choose(self, state, moves: Sequence[Move]) -> Move:
        chosen = min(
            moves,
            key=lambda m: (m.process - self._next) % self.ring_size)
        self._next = (chosen.process + 1) % self.ring_size
        return chosen


class AdversarialScheduler:
    """Greedy adversary: prefers moves whose target stays outside ``I``.

    Requires the instance (for invariant checks); ties are broken by a
    seeded RNG so runs are reproducible.
    """

    def __init__(self, instance, seed: int = 0) -> None:
        self.instance = instance
        self.rng = random.Random(seed)

    def choose(self, state, moves: Sequence[Move]) -> Move:
        bad = [m for m in moves
               if not self.instance.invariant_holds(m.target)]
        pool = bad if bad else list(moves)
        return pool[self.rng.randrange(len(pool))]
