"""Asynchronous rounds — the standard time measure of the SS literature.

Step counts depend on the daemon; *rounds* normalize them: a round is a
minimal trace segment during which every process that was enabled at the
segment's start either executes or becomes disabled.  Convergence in
``O(f(K))`` rounds is the usual way stabilization time is reported.
"""

from __future__ import annotations

from repro.simulation.engine import Trace


def round_boundaries(instance, trace: Trace) -> list[int]:
    """Indices into ``trace.states`` where each round completes.

    The first round starts at state 0; a round completes at the first
    index by which every process enabled at the round's start has
    executed at least once or been observed disabled.  The trailing
    partial round (if any) is not reported.
    """
    states = trace.states
    boundaries: list[int] = []
    start = 0
    while start < len(states) - 1:
        pending = set(instance.enabled_processes(states[start]))
        if not pending:
            break
        index = start
        while pending and index < len(states) - 1:
            moved = _actor(instance, states[index], states[index + 1])
            index += 1
            pending.discard(moved)
            # processes observed disabled leave the round too
            pending &= set(instance.enabled_processes(states[index]))
        if pending:
            break  # trace ended mid-round
        boundaries.append(index)
        start = index
    return boundaries


def _actor(instance, state, nxt) -> int:
    """The process whose cell changed between two consecutive states."""
    for position in range(instance.size):
        if state[position] != nxt[position]:
            return position
    raise ValueError("consecutive trace states are identical")


def rounds_to_convergence(instance, trace: Trace) -> int | None:
    """Complete rounds elapsed before the trace first entered ``I``.

    0 when the trace starts converged; ``None`` when the trace never
    converged.
    """
    if not trace.converged:
        return None
    if trace.converged_at == 0:
        return 0
    boundaries = round_boundaries(instance, trace)
    completed = 0
    for boundary in boundaries:
        if boundary <= trace.converged_at:
            completed += 1
        else:
            break
    return completed
