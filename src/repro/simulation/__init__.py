"""Execution of concrete protocol instances under interleaving semantics.

Provides central-daemon schedulers (random, round-robin, adversarial),
an execution engine producing traces, transient-fault injection, and
convergence-time statistics — the runtime counterpart of the static
analyses: a protocol certified convergent by :mod:`repro.core` can be
watched actually recovering here.
"""

from repro.simulation.schedulers import (
    AdversarialScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
)
from repro.simulation.engine import Trace, run, run_until_convergence
from repro.simulation.faults import perturb, random_state
from repro.simulation.metrics import ConvergenceStats, convergence_study
from repro.simulation.rounds import (
    round_boundaries,
    rounds_to_convergence,
)

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "AdversarialScheduler",
    "Trace",
    "run",
    "run_until_convergence",
    "perturb",
    "random_state",
    "ConvergenceStats",
    "convergence_study",
    "round_boundaries",
    "rounds_to_convergence",
]
