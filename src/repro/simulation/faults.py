"""Transient-fault injection.

Self-stabilization is exactly recovery from *any* state, so fault
injection here means: take a legitimate state and corrupt the cells of a
few processes arbitrarily — the protocol must find its way back.
"""

from __future__ import annotations

import random


def _cells_of(instance):
    """Per-process value alternatives of *instance*.

    Ring instances expose them through their protocol's local space;
    stand-alone instances (e.g. the Dijkstra token ring) expose a
    ``values`` count of plain integers instead.
    """
    protocol = getattr(instance, "protocol", None)
    if protocol is not None:
        return protocol.space.cells
    return tuple(range(instance.values))


def random_state(instance, rng: random.Random):
    """A uniformly random global state of *instance*."""
    cells = _cells_of(instance)
    return tuple(cells[rng.randrange(len(cells))]
                 for _ in range(instance.size))


def perturb(instance, state, rng: random.Random, faults: int = 1):
    """Corrupt *faults* distinct processes of *state* with random cells.

    Each chosen process receives a cell different from its current one
    (a fault that changes nothing is no fault).
    """
    if not 0 <= faults <= instance.size:
        raise ValueError(f"faults must be within 0..{instance.size}")
    cells = _cells_of(instance)
    victims = rng.sample(range(instance.size), faults)
    corrupted = list(state)
    for victim in victims:
        alternatives = [c for c in cells if c != corrupted[victim]]
        corrupted[victim] = alternatives[rng.randrange(len(alternatives))]
    return tuple(corrupted)
