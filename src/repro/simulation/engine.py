"""The execution engine: drive an instance under a scheduler."""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.schedulers import Scheduler


@dataclass(frozen=True)
class Trace:
    """One execution.

    ``states`` includes the start state; ``converged_at`` is the index of
    the first state inside ``I`` (``None`` when the run never entered the
    invariant within the step budget).  ``deadlocked`` marks runs that
    ended because no move was enabled.
    """

    states: tuple
    converged_at: int | None
    deadlocked: bool

    @property
    def steps(self) -> int:
        """Transitions executed."""
        return len(self.states) - 1

    @property
    def converged(self) -> bool:
        return self.converged_at is not None

    @property
    def recovery_steps(self) -> int | None:
        """Steps taken to first re-enter the invariant."""
        return self.converged_at


def run(instance, start, scheduler: Scheduler,
        max_steps: int = 10_000,
        stop_on_convergence: bool = True) -> Trace:
    """Execute *instance* from *start* until convergence, deadlock or the
    step budget.

    With ``stop_on_convergence=False`` the run continues inside the
    invariant (useful for closure checks: a self-stabilizing protocol must
    stay legitimate once converged).
    """
    state = start
    states = [state]
    converged_at = 0 if instance.invariant_holds(state) else None
    deadlocked = False
    for _step in range(max_steps):
        if converged_at is not None and stop_on_convergence:
            break
        moves = instance.moves(state)
        if not moves:
            deadlocked = True
            break
        state = scheduler.choose(state, moves).target
        states.append(state)
        if converged_at is None and instance.invariant_holds(state):
            converged_at = len(states) - 1
    return Trace(states=tuple(states), converged_at=converged_at,
                 deadlocked=deadlocked)


def run_until_convergence(instance, start, scheduler: Scheduler,
                          max_steps: int = 10_000) -> Trace:
    """Like :func:`run` but raises when the budget is exhausted without
    convergence (handy in tests of certified-convergent protocols)."""
    trace = run(instance, start, scheduler, max_steps=max_steps)
    if not trace.converged and not trace.deadlocked:
        raise RuntimeError(
            f"no convergence within {max_steps} steps from {start}")
    return trace
