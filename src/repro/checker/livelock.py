"""Global livelock detection for a fixed ring size.

A livelock for ``I(K)`` is an infinite repetition of global states outside
``I(K)`` (Section 2.3) — equivalently, a cycle of ``Δ_p | ¬I``, found here
by SCC analysis of the transition graph induced over ``¬I``.
"""

from __future__ import annotations

from repro.checker.statespace import StateGraph
from repro.graphs.cycles import find_cycle_through
from repro.graphs.scc import cyclic_components


def livelock_cycles(graph: StateGraph,
                    max_cycles: int = 8) -> list[list]:
    """Up to *max_cycles* witness cycles of ``Δ_p | ¬I``, as state lists.

    A returned cycle ``[s0, ..., sn]`` denotes the repeating computation
    ``s0 -> s1 -> ... -> sn -> s0`` entirely outside the invariant.  Empty
    result means the instance is livelock-free.
    """
    outside = [i for i, member in enumerate(graph.in_invariant)
               if not member]
    sub = graph.restricted_digraph(outside)
    cycles = []
    for component in cyclic_components(sub):
        anchor = min(component)
        induced = sub.induced_subgraph(component)
        cycle = find_cycle_through(induced, anchor)
        if cycle is not None:
            cycles.append([graph.states[i] for i in cycle])
            if len(cycles) >= max_cycles:
                break
    return cycles


def has_livelock(graph: StateGraph) -> bool:
    """Whether any computation can cycle forever outside ``I(K)``."""
    outside = [i for i, member in enumerate(graph.in_invariant)
               if not member]
    return bool(cyclic_components(graph.restricted_digraph(outside)))
