"""Explicit-state global model checking for fixed ring sizes.

This is the substrate the paper's local method is contrasted with (and
validated against): for one concrete ``K`` it enumerates the full global
state space ``S_p(K)`` and decides closure, deadlock-freedom,
livelock-freedom and strong/weak convergence exactly (Proposition 2.1).

The cost grows exponentially in ``K`` — which is precisely the paper's
motivation for reasoning in the local state space instead.
"""

from repro.checker.statespace import StateGraph
from repro.checker.convergence import (
    GlobalReport,
    check_instance,
    is_closed,
    is_self_stabilizing,
    strongly_converges,
    weakly_converges,
)
from repro.checker.deadlock import illegitimate_deadlocks
from repro.checker.livelock import livelock_cycles
from repro.checker.synthesis import (
    GlobalSynthesisResult,
    GlobalSynthesizer,
)
from repro.checker.sweep import SweepResult, sweep_verify
from repro.checker.ranking import (
    RankingCertificate,
    compute_ranking,
    verify_ranking,
)

__all__ = [
    "StateGraph",
    "GlobalReport",
    "check_instance",
    "is_closed",
    "is_self_stabilizing",
    "strongly_converges",
    "weakly_converges",
    "illegitimate_deadlocks",
    "livelock_cycles",
    "GlobalSynthesizer",
    "GlobalSynthesisResult",
    "SweepResult",
    "sweep_verify",
    "RankingCertificate",
    "compute_ranking",
    "verify_ranking",
]
