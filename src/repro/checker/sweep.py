"""Cutoff-style sweep verification (the related-work baseline of §7).

Cutoff methods (Emerson–Kahlon, Emerson–Namjoshi) reduce parameterized
verification to model checking every size up to a cutoff.  The paper
argues local reasoning is cheaper than "verification for every K smaller
than or equal to the cutoff"; this module implements that baseline —
verify ``p(K)`` for each ``K`` in a range — so the comparison can be
made concretely (benchmark X2 and the ablation benches use it).

No general cutoff theorem applies to arbitrary convergence properties,
so a sweep result is evidence for the checked range only; contrast with
:func:`repro.core.verify_convergence`, whose verdicts quantify over all
ring sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.checker.convergence import GlobalReport, check_instance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


@dataclass(frozen=True)
class SweepResult:
    """Per-size reports plus the aggregate verdict for the range."""

    reports: tuple[GlobalReport, ...]
    elapsed_seconds: tuple[float, ...]

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(r.ring_size for r in self.reports)

    @property
    def all_self_stabilizing(self) -> bool:
        return all(r.self_stabilizing for r in self.reports)

    @property
    def failing_sizes(self) -> tuple[int, ...]:
        return tuple(r.ring_size for r in self.reports
                     if not r.self_stabilizing)

    @property
    def total_states_explored(self) -> int:
        return sum(r.state_count for r in self.reports)

    def summary(self) -> str:
        lines = [f"sweep over K = {self.sizes[0]}..{self.sizes[-1]}: "
                 + ("self-stabilizing throughout"
                    if self.all_self_stabilizing
                    else f"fails at K = {list(self.failing_sizes)}")]
        for report, elapsed in zip(self.reports, self.elapsed_seconds):
            lines.append(
                f"  K={report.ring_size}: {report.state_count} states, "
                f"{'ok' if report.self_stabilizing else 'FAIL'} "
                f"({elapsed * 1e3:.1f} ms)")
        lines.append(f"total states explored: "
                     f"{self.total_states_explored}")
        return "\n".join(lines)


def sweep_verify(protocol: "RingProtocol", up_to: int,
                 start: int | None = None,
                 stop_on_failure: bool = False) -> SweepResult:
    """Model-check every ring size from *start* (default: the read-window
    width) through *up_to*.

    With ``stop_on_failure`` the sweep aborts at the first
    non-stabilizing size — the typical bug-hunting mode.
    """
    first = protocol.process.window_width if start is None else start
    if first > up_to:
        raise ValueError(f"empty sweep range {first}..{up_to}")
    reports = []
    timings = []
    for size in range(first, up_to + 1):
        began = time.perf_counter()
        report = check_instance(protocol.instantiate(size))
        timings.append(time.perf_counter() - began)
        reports.append(report)
        if stop_on_failure and not report.self_stabilizing:
            break
    return SweepResult(reports=tuple(reports),
                       elapsed_seconds=tuple(timings))
