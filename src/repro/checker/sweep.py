"""Cutoff-style sweep verification (the related-work baseline of §7).

Cutoff methods (Emerson–Kahlon, Emerson–Namjoshi) reduce parameterized
verification to model checking every size up to a cutoff.  The paper
argues local reasoning is cheaper than "verification for every K smaller
than or equal to the cutoff"; this module implements that baseline —
verify ``p(K)`` for each ``K`` in a range — so the comparison can be
made concretely (benchmark X2 and the ablation benches use it).

Each ``p(K)`` is an independent work item, so the sweep fans out over
:func:`repro.engine.run_work_items` when ``jobs > 1`` and reuses prior
per-K reports through a :class:`repro.engine.ResultCache`; verdicts are
identical to the serial, uncached run by construction (deterministic
result ordering, whole-report caching).

No general cutoff theorem applies to arbitrary convergence properties,
so a sweep result is evidence for the checked range only; contrast with
:func:`repro.core.verify_convergence`, whose verdicts quantify over all
ring sizes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import repro.engine.artifacts as artifact_plane
from repro.checker.convergence import GlobalReport, check_instance
from repro.engine import EngineStats, ResultCache, analysis_key, \
    supervise_work_items
from repro.engine.journal import RunJournal
from repro.engine.pool import PortableContext
from repro.engine.supervisor import FaultPlan, SupervisorPolicy
from repro.obs import live

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


@dataclass(frozen=True)
class SweepResult:
    """Per-size reports plus the aggregate verdict for the range."""

    reports: tuple[GlobalReport, ...]
    elapsed_seconds: tuple[float, ...]
    stats: EngineStats | None = field(default=None, compare=False)

    @property
    def sizes(self) -> tuple[int, ...]:
        return tuple(r.ring_size for r in self.reports)

    @property
    def all_self_stabilizing(self) -> bool:
        return all(r.self_stabilizing for r in self.reports)

    @property
    def failing_sizes(self) -> tuple[int, ...]:
        return tuple(r.ring_size for r in self.reports
                     if not r.self_stabilizing)

    @property
    def total_states_explored(self) -> int:
        return sum(r.state_count for r in self.reports)

    def summary(self) -> str:
        lines = [f"sweep over K = {self.sizes[0]}..{self.sizes[-1]}: "
                 + ("self-stabilizing throughout"
                    if self.all_self_stabilizing
                    else f"fails at K = {list(self.failing_sizes)}")]
        for report, elapsed in zip(self.reports, self.elapsed_seconds):
            lines.append(
                f"  K={report.ring_size}: {report.state_count} states, "
                f"{'ok' if report.self_stabilizing else 'FAIL'} "
                f"({elapsed * 1e3:.1f} ms)")
        lines.append(f"total states explored: "
                     f"{self.total_states_explored}")
        if self.stats is not None:
            lines.append(self.stats.summary())
        return "\n".join(lines)


def _sweep_key(protocol: "RingProtocol", size: int,
               symmetry: bool = False) -> str:
    # Backend choice never perturbs the report (the kernel reproduces
    # the naive graph state for state) so it stays out of the key;
    # the quotient changes state/witness counts and gets its own keys.
    if symmetry:
        return analysis_key("check-instance", protocol, ring_size=size,
                            symmetry=True)
    return analysis_key("check-instance", protocol, ring_size=size)


def _check_size(protocol: "RingProtocol", size: int,
                backend: str = "auto",
                symmetry: bool = False) -> tuple[GlobalReport, float]:
    began = time.perf_counter()
    report = check_instance(protocol.instantiate(size),
                            backend=backend, symmetry=symmetry)
    return report, time.perf_counter() - began


def sweep_fingerprint(protocol: "RingProtocol", up_to: int,
                      start: int | None = None,
                      symmetry: bool = False) -> str:
    """The identity of one sweep for journal pinning: resuming a run
    recorded for a different protocol or range is refused."""
    first = protocol.process.window_width if start is None else start
    return analysis_key("sweep", protocol, start=first, up_to=up_to,
                        symmetry=symmetry)


def sweep_verify(protocol: "RingProtocol", up_to: int,
                 start: int | None = None,
                 stop_on_failure: bool = False,
                 jobs: int = 1,
                 cache: ResultCache | None = None,
                 backend: str = "auto",
                 symmetry: bool = False,
                 policy: SupervisorPolicy | None = None,
                 journal: RunJournal | None = None,
                 fault_plan: FaultPlan | None = None,
                 schedule: str = "auto",
                 batch_size: int | None = None) -> SweepResult:
    """Model-check every ring size from *start* (default: the read-window
    width) through *up_to*.

    With ``stop_on_failure`` the sweep aborts at the first
    non-stabilizing size — the typical bug-hunting mode.  ``jobs > 1``
    fans the per-K checks out over worker processes (a parallel
    ``stop_on_failure`` sweep still checks every size speculatively and
    truncates afterwards, so its result equals the serial one); *cache*
    reuses per-K reports across runs, keyed on the protocol fingerprint
    and the ring size.  *backend* and *symmetry* are forwarded to
    :func:`repro.checker.convergence.check_instance` — the compiled
    kernel (and, opt-in, its rotation quotient) replaces the naive
    per-state interpretation with identical verdicts.

    *policy* supervises the per-K checks (timeouts, crash retry,
    degradation to the in-parent naive backend — see
    :mod:`repro.engine.supervisor`); *journal* checkpoints each
    completed size durably and skips sizes a prior run already
    finished, merging their reports' partial :class:`EngineStats` into
    this run's counters.  A supervised or journaled ``stop_on_failure``
    sweep checks speculatively like the parallel one.  *fault_plan* is
    test-only injection.

    *schedule* / *batch_size* select the supervised execution strategy
    (``auto`` / ``batch`` / ``task`` — see
    :func:`repro.engine.supervise_work_items`); verdicts are identical
    across schedules.
    """
    first = protocol.process.window_width if start is None else start
    if first > up_to:
        raise ValueError(f"empty sweep range {first}..{up_to}")
    sizes = list(range(first, up_to + 1))
    stats = EngineStats(jobs=jobs)
    supervised = (policy is not None or journal is not None
                  or fault_plan is not None or schedule == "batch")

    if jobs <= 1 and not supervised:
        # Serial: check sizes in order so stop_on_failure exits early.
        kept_reports: list[GlobalReport] = []
        kept_timings: list[float] = []
        live.begin_stage("sweep", total=len(sizes))
        with stats.stage("sweep", start=first, up_to=up_to, jobs=jobs):
            for size in sizes:
                report, elapsed = _checked_size(protocol, size, cache,
                                                stats, backend, symmetry)
                kept_reports.append(report)
                kept_timings.append(elapsed)
                live.note(done=1)
                live.tick(lambda: live.cache_payload(stats))
                if stop_on_failure and not report.self_stabilizing:
                    break
        return SweepResult(reports=tuple(kept_reports),
                           elapsed_seconds=tuple(kept_timings),
                           stats=stats)

    # Parallel / supervised: probe the cache and journal up front, fan
    # the misses out, truncate afterwards (speculative checking keeps
    # the result equal to serial).
    reports: dict[int, GlobalReport] = {}
    timings: dict[int, float] = {}

    def prewarm() -> None:
        # Artifact traffic inside the per-K checks is attributed to the
        # per-report stats (folded in check_instance, merged below);
        # only the parent-side prewarm publishes are counted here, so
        # nothing is counted twice.
        with artifact_plane.absorb_into(stats):
            _sweep_prewarm(protocol, backend)

    with stats.stage("sweep", start=first, up_to=up_to, jobs=jobs):
        pending = []
        for size in sizes:
            if cache is not None:
                probe_began = time.perf_counter()
                cached = cache.get(_sweep_key(protocol, size, symmetry))
                if cached is not None:
                    stats.cache_hits += 1
                    reports[size] = cached
                    timings[size] = time.perf_counter() - probe_began
                    continue
                stats.cache_misses += 1
            if journal is not None:
                key = _sweep_key(protocol, size, symmetry)
                if key in journal.completed:
                    # A prior run finished this size: reuse its report
                    # and fold its partial stats into this run's.
                    report, elapsed = journal.completed[key]
                    stats.supervisor_resumed += 1
                    stats.merge_kernel_counters(
                        getattr(report, "stats", None))
                    reports[size] = report
                    timings[size] = elapsed
                    continue
            pending.append(size)

        if supervised or len(pending) > 1:
            keys = [_sweep_key(protocol, size, symmetry)
                    for size in pending] if journal is not None else None
            outcomes = supervise_work_items(
                _sweep_worker, pending, jobs=jobs,
                context=(protocol, backend, symmetry),
                stats=stats, policy=policy, journal=journal,
                keys=keys, fallback_worker=_sweep_fallback_worker,
                plan=fault_plan, schedule=schedule,
                batch_size=batch_size, prewarm=prewarm,
                portable=_sweep_portable(protocol, backend, symmetry))
        else:
            outcomes = [_check_size(protocol, size, backend, symmetry)
                        for size in pending]
        for size, (report, elapsed) in zip(pending, outcomes):
            stats.work_items += 1
            stats.states_explored += report.state_count
            stats.merge_kernel_counters(getattr(report, "stats", None))
            reports[size] = report
            timings[size] = elapsed
            if cache is not None:
                cache.put(_sweep_key(protocol, size, symmetry), report)

    kept_reports = []
    kept_timings = []
    for size in sizes:
        kept_reports.append(reports[size])
        kept_timings.append(timings[size])
        if stop_on_failure and not reports[size].self_stabilizing:
            break
    return SweepResult(reports=tuple(kept_reports),
                       elapsed_seconds=tuple(kept_timings),
                       stats=stats)


def _checked_size(protocol: "RingProtocol", size: int,
                  cache: ResultCache | None, stats: EngineStats,
                  backend: str = "auto",
                  symmetry: bool = False) -> tuple[GlobalReport, float]:
    """One serial work item: cache probe, compute on miss, store."""
    if cache is not None:
        probe_began = time.perf_counter()
        cached = cache.get(_sweep_key(protocol, size, symmetry))
        if cached is not None:
            stats.cache_hits += 1
            return cached, time.perf_counter() - probe_began
        stats.cache_misses += 1
    report, elapsed = _check_size(protocol, size, backend, symmetry)
    stats.work_items += 1
    stats.states_explored += report.state_count
    stats.merge_kernel_counters(getattr(report, "stats", None))
    if cache is not None:
        cache.put(_sweep_key(protocol, size, symmetry), report)
    return report, elapsed


def _sweep_prewarm(protocol: "RingProtocol", backend: str) -> None:
    """Compile the protocol's kernel once in the parent so forked
    workers inherit a hot compile cache instead of recompiling per K —
    and, with an artifact store active, so the compiled table is
    *published* for spawn workers and later runs to attach.

    The kernel-support probe runs on a throwaway smallest instance:
    :func:`supports_kernel` classifies instances, not protocols.
    """
    if backend not in ("auto", "kernel"):
        return
    from repro.engine.kernel import compile_protocol, supports_kernel

    try:
        probe = protocol.instantiate(protocol.process.window_width)
    except Exception:
        return
    if supports_kernel(probe):
        compile_protocol(protocol)


def _rebuild_sweep_context(payload) -> tuple:
    """Spawn-side builder: re-hydrate the sweep worker context."""
    from repro.serialization import protocol_from_dict

    data, backend, symmetry = payload
    return (protocol_from_dict(data), backend, symmetry)


def _sweep_portable(protocol: "RingProtocol", backend: str,
                    symmetry: bool) -> PortableContext | None:
    """A portable recipe for the sweep context, when one exists.

    DSL-defined protocols round-trip through their serialized form;
    protocols carrying opaque predicate callables (e.g. sampled ones)
    do not, and return ``None`` — those keep the serial no-fork
    fallback.
    """
    from repro.serialization import protocol_to_dict

    try:
        payload = protocol_to_dict(protocol)
    except Exception:
        return None
    return PortableContext(_rebuild_sweep_context,
                           (payload, backend, symmetry))


def _sweep_worker(context, size: int) -> tuple[GlobalReport, float]:
    """Module-level worker for :func:`repro.engine.run_work_items`."""
    protocol, backend, symmetry = context
    return _check_size(protocol, size, backend, symmetry)


def _sweep_fallback_worker(context, size: int,
                           ) -> tuple[GlobalReport, float]:
    """A degraded work item: re-run in-parent on the reference naive
    backend (reports are backend-identical, so the sweep result does
    not change).  The rotation quotient exists only in the kernel, so
    ``symmetry`` runs keep their requested backend."""
    protocol, backend, symmetry = context
    return _check_size(protocol, size,
                       backend if symmetry else "naive", symmetry)
