"""Explicit global state graph of a concrete protocol instance.

Works with any object exposing the :class:`~repro.protocol.instance.
RingInstance` interface (``states()``, ``successors(state)``,
``invariant_holds(state)``) — the Dijkstra token ring of
:mod:`repro.protocols.token_ring` plugs in the same way despite its
distinguished root process.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs import Digraph


class StateGraph:
    """The global transition graph of one protocol instance.

    States are interned to integer indices; the invariant membership of
    every state is precomputed.  Construction visits every global state
    once and its successors once.
    """

    def __init__(self, instance) -> None:
        self.instance = instance
        self.states: list[Hashable] = list(instance.states())
        self.index: dict[Hashable, int] = {
            state: i for i, state in enumerate(self.states)}
        self.successors: list[list[int]] = []
        self.in_invariant: list[bool] = []
        for state in self.states:
            self.successors.append(
                [self.index[t] for t in instance.successors(state)])
            self.in_invariant.append(bool(instance.invariant_holds(state)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.states)

    @property
    def invariant_indices(self) -> list[int]:
        """Indices of states inside ``I(K)``."""
        return [i for i, member in enumerate(self.in_invariant) if member]

    def deadlock_indices(self) -> list[int]:
        """Indices of states with no outgoing transition."""
        return [i for i, succ in enumerate(self.successors) if not succ]

    # ------------------------------------------------------------------
    def predecessors_map(self) -> list[list[int]]:
        """Reverse adjacency (computed on demand)."""
        reverse: list[list[int]] = [[] for _ in self.states]
        for source, targets in enumerate(self.successors):
            for target in targets:
                reverse[target].append(source)
        return reverse

    def restricted_digraph(self, keep: Iterable[int]) -> Digraph:
        """The transition :class:`Digraph` induced over state indices
        *keep* (used for livelock detection on ``Δ_p | ¬I``)."""
        keep_set = set(keep)
        graph = Digraph(nodes=keep_set)
        for source in keep_set:
            for target in self.successors[source]:
                if target in keep_set:
                    graph.add_edge(source, target)
        return graph

    def distances_to_invariant(self) -> list[int | None]:
        """BFS distance (in transitions) from each state to ``I(K)``.

        ``None`` marks states from which no path into the invariant
        exists; 0 marks invariant states themselves.
        """
        reverse = self.predecessors_map()
        distance: list[int | None] = [None] * len(self.states)
        frontier = []
        for i in self.invariant_indices:
            distance[i] = 0
            frontier.append(i)
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for predecessor in reverse[node]:
                    if distance[predecessor] is None:
                        distance[predecessor] = depth
                        next_frontier.append(predecessor)
            frontier = next_frontier
        return distance
