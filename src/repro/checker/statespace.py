"""Explicit global state graph of a concrete protocol instance.

Works with any object exposing the :class:`~repro.protocol.instance.
RingInstance` interface (``states()``, ``successors(state)``,
``invariant_holds(state)``) — the Dijkstra token ring of
:mod:`repro.protocols.token_ring` plugs in the same way despite its
distinguished root process.

Two backends build the graph:

* ``"kernel"`` — the compiled bit-packed engine of
  :mod:`repro.engine.kernel`: guards compile once into a flat local
  transition table, global states are base-``|C|`` packed integers,
  adjacency and invariant flags live in flat arrays.  Selected
  automatically for symmetric :class:`RingInstance` objects; supports
  the opt-in rotation-symmetry quotient (``symmetry=True``).
* ``"naive"`` — the original pure-Python interpreter over tuple
  states.  The reference implementation (the differential suite in
  ``tests/engine/`` asserts the kernel reproduces it state for state)
  and the only backend for duck-typed instances such as the token ring.

Both populate the same public surface: ``states``, ``index``,
``successors``, ``in_invariant``, ``invariant_indices``,
``deadlock_indices``, ``predecessors_map``, ``restricted_digraph``,
``distances_to_invariant``.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.graphs import Digraph

BACKENDS = ("auto", "kernel", "naive")


class StateGraph:
    """The global transition graph of one protocol instance.

    States are interned to integer indices; the invariant membership of
    every state is precomputed.  Construction visits every global state
    once and its successors once.

    Parameters
    ----------
    instance:
        The protocol instance to explore.
    backend:
        ``"auto"`` (kernel when the instance supports it), ``"kernel"``
        (raise if unsupported) or ``"naive"``.
    symmetry:
        Quotient the space by ring rotations (kernel only).  Rotations
        are automorphisms of symmetric rings, so deadlock existence,
        livelock existence, closure, weak convergence and distances to
        the invariant — hence every convergence verdict — are
        preserved, at a ~K-fold state reduction.  State *counts* then
        refer to rotation orbits, and a cycle of representatives
        witnesses a livelock only up to rotation.
    """

    def __init__(self, instance, backend: str = "auto",
                 symmetry: bool = False) -> None:
        from repro.engine.kernel import build_space, supports_kernel

        if backend not in BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; "
                             f"choose from {BACKENDS}")
        self.instance = instance
        compilable = supports_kernel(instance)
        if backend == "kernel" and not compilable:
            raise ValueError(
                f"backend='kernel' requires a symmetric RingInstance, "
                f"got {type(instance).__name__}")
        use_kernel = compilable and backend != "naive"
        if symmetry and not use_kernel:
            raise ValueError("the rotation-symmetry quotient requires "
                             "the kernel backend")
        self.symmetry = bool(symmetry)
        self._packed = None
        self._states: list[Hashable] | None = None
        self._index: dict[Hashable, int] | None = None
        self._successors: list[list[int]] | None = None
        self._in_invariant: list[bool] | None = None
        self._predecessors: list[list[int]] | None = None
        self.kernel_stats = None
        if use_kernel:
            self.backend = "kernel"
            self._packed = build_space(instance, symmetry=symmetry)
            self.kernel_stats = self._packed.stats
        else:
            self.backend = "naive"
            states = list(instance.states())
            index = {state: i for i, state in enumerate(states)}
            self._states = states
            self._index = index
            self._successors = [
                [index[t] for t in instance.successors(state)]
                for state in states]
            self._in_invariant = [bool(instance.invariant_holds(state))
                                  for state in states]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        if self._packed is not None:
            return len(self._packed)
        return len(self._states)

    @property
    def states(self) -> list[Hashable]:
        """All states (quotient: orbit representatives), by index.

        Kernel-backed graphs decode lazily: verdict-only analyses never
        touch tuple states at all.
        """
        if self._states is None:
            self._states = [self._packed.decode(i)
                            for i in range(len(self._packed))]
        return self._states

    @property
    def index(self) -> dict[Hashable, int]:
        """State -> index (quotient: representatives only)."""
        if self._index is None:
            self._index = {state: i
                           for i, state in enumerate(self.states)}
        return self._index

    @property
    def successors(self) -> list[list[int]]:
        """Per-state successor index lists."""
        if self._successors is None:
            self._successors = self._packed.successor_lists()
        return self._successors

    @property
    def in_invariant(self) -> list[bool]:
        """Per-state ``I(K)`` membership flags."""
        if self._in_invariant is None:
            self._in_invariant = [bool(b)
                                  for b in self._packed.invariant]
        return self._in_invariant

    @property
    def invariant_indices(self) -> list[int]:
        """Indices of states inside ``I(K)``."""
        if self._packed is not None:
            return [i for i, member in enumerate(self._packed.invariant)
                    if member]
        return [i for i, member in enumerate(self.in_invariant)
                if member]

    def deadlock_indices(self) -> list[int]:
        """Indices of states with no outgoing transition."""
        if self._packed is not None:
            off = self._packed.succ_off
            return [i for i in range(len(self._packed))
                    if off[i] == off[i + 1]]
        return [i for i, succ in enumerate(self.successors) if not succ]

    # ------------------------------------------------------------------
    def predecessors_map(self) -> list[list[int]]:
        """Reverse adjacency (computed once, then cached).

        Both :meth:`distances_to_invariant` and the ranking extractor
        call this; callers must not mutate the returned lists.
        """
        if self._predecessors is not None:
            return self._predecessors
        reverse: list[list[int]] = [[] for _ in range(len(self))]
        if self._packed is not None:
            off, flat = self._packed.succ_off, self._packed.succ_flat
            for source in range(len(self._packed)):
                for position in range(off[source], off[source + 1]):
                    reverse[flat[position]].append(source)
        else:
            for source, targets in enumerate(self.successors):
                for target in targets:
                    reverse[target].append(source)
        self._predecessors = reverse
        return reverse

    def restricted_digraph(self, keep: Iterable[int]) -> Digraph:
        """The transition :class:`Digraph` induced over state indices
        *keep* (used for livelock detection on ``Δ_p | ¬I``)."""
        keep_set = set(keep)
        graph = Digraph(nodes=keep_set)
        if self._packed is not None:
            off, flat = self._packed.succ_off, self._packed.succ_flat
            for source in keep_set:
                for position in range(off[source], off[source + 1]):
                    target = flat[position]
                    if target in keep_set:
                        graph.add_edge(source, target)
            return graph
        for source in keep_set:
            for target in self.successors[source]:
                if target in keep_set:
                    graph.add_edge(source, target)
        return graph

    def distances_to_invariant(self) -> list[int | None]:
        """BFS distance (in transitions) from each state to ``I(K)``.

        ``None`` marks states from which no path into the invariant
        exists; 0 marks invariant states themselves.  On the rotation
        quotient these equal the full-space distances (rotations are
        automorphisms preserving ``I``).
        """
        reverse = self.predecessors_map()
        distance: list[int | None] = [None] * len(self)
        frontier = []
        for i in self.invariant_indices:
            distance[i] = 0
            frontier.append(i)
        depth = 0
        while frontier:
            depth += 1
            next_frontier = []
            for node in frontier:
                for predecessor in reverse[node]:
                    if distance[predecessor] is None:
                        distance[predecessor] = depth
                        next_frontier.append(predecessor)
            frontier = next_frontier
        return distance
