"""Ranking-function certificates for strong convergence.

The classical way to *design* convergence (layering / ranking methods
the paper's introduction surveys [9–12]) is a function that every step
outside the invariant strictly decreases.  Going the other way, for any
strongly convergent instance such a function always exists, and this
module extracts a canonical one:

    ρ(s) = length of the longest transition path from ``s`` that stays
           outside ``I`` (0 for states in ``I``)

``ρ`` is finite exactly when ``Δ_p | ¬I`` is acyclic (no livelocks), and
every move from a state outside ``I`` either enters ``I`` or strictly
decreases ρ — making ρ a *strict* ranking certificate whose maximum is
the worst-case recovery time under the worst possible daemon (compare
:meth:`GlobalReport.worst_case_recovery_steps`, which is the best-daemon
distance).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.checker.statespace import StateGraph
from repro.graphs.scc import cyclic_components


@dataclass(frozen=True)
class RankingCertificate:
    """A strict ranking over one instance's state space.

    ``ranks[i]`` is ρ of state index ``i`` in the underlying
    :class:`StateGraph`'s ordering.
    """

    graph: StateGraph
    ranks: tuple[int, ...]

    @property
    def max_rank(self) -> int:
        """Worst-case recovery steps under the worst daemon."""
        return max(self.ranks)

    def rank_of(self, state) -> int:
        return self.ranks[self.graph.index[state]]

    def layers(self) -> dict[int, int]:
        """Histogram: rank value -> number of states at that rank
        (the "convergence stairs")."""
        histogram: dict[int, int] = {}
        for rank in self.ranks:
            histogram[rank] = histogram.get(rank, 0) + 1
        return dict(sorted(histogram.items()))


def compute_ranking(graph: StateGraph) -> RankingCertificate | None:
    """Extract the longest-escape ranking, or ``None`` when the instance
    is not strongly convergent (a deadlock or cycle outside ``I``)."""
    outside = [i for i, inside in enumerate(graph.in_invariant)
               if not inside]
    outside_set = set(outside)
    sub = graph.restricted_digraph(outside)
    if cyclic_components(sub):
        return None  # livelock: no finite ranking exists

    ranks = [0] * len(graph)
    # Longest path over the ¬I DAG, processed in reverse topological
    # order (Tarjan's SCC output is reverse-topological; with no cycles
    # every component is a singleton).
    from repro.graphs.scc import strongly_connected_components

    order = [c[0] for c in strongly_connected_components(sub)]
    for node in order:
        best = 0
        dead_end = True
        for succ in graph.successors[node]:
            dead_end = False
            if succ in outside_set:
                best = max(best, ranks[succ] + 1)
            else:
                best = max(best, 1)
        if dead_end:
            return None  # deadlock outside I
        ranks[node] = best
    return RankingCertificate(graph=graph, ranks=tuple(ranks))


def verify_ranking(graph: StateGraph,
                   ranks: tuple[int, ...] | list[int]) -> bool:
    """Independently check that *ranks* is a valid strict ranking:

    * states in ``I`` have rank 0;
    * every state outside ``I`` has at least one move, and **every** of
      its moves either enters ``I`` or strictly decreases the rank.

    A valid ranking witnesses strong convergence (Proposition 2.1) —
    this is the 'certificate checking' half of ranking-based design.
    """
    if len(ranks) != len(graph):
        return False
    for index in range(len(graph)):
        if graph.in_invariant[index]:
            if ranks[index] != 0:
                return False
            continue
        if ranks[index] <= 0:
            return False
        successors = graph.successors[index]
        if not successors:
            return False
        for succ in successors:
            if not graph.in_invariant[succ] and \
                    ranks[succ] >= ranks[index]:
                return False
    return True
