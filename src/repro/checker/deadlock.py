"""Global deadlock detection for a fixed ring size."""

from __future__ import annotations

from repro.checker.statespace import StateGraph


def illegitimate_deadlocks(graph: StateGraph) -> list:
    """Global deadlock states outside ``I(K)``.

    These are exactly the witnesses Theorem 4.2 predicts from local
    reasoning: a ring of local deadlocks with at least one illegitimate
    member.
    """
    return [graph.states[i] for i in graph.deadlock_indices()
            if not graph.in_invariant[i]]


def legitimate_deadlocks(graph: StateGraph) -> list:
    """Deadlocks inside ``I(K)`` (fixpoints — fine for *silent* protocols
    such as matching or coloring)."""
    return [graph.states[i] for i in graph.deadlock_indices()
            if graph.in_invariant[i]]
