"""A global-state-space synthesizer for a fixed ring size (baseline).

This plays the role of the authors' STSyn tool [17]: given a protocol and
an invariant, it adds symmetric recovery transitions until the instance
``p(K)`` strongly converges — by exploring the **global** state space of
that one K.  Solutions found this way carry no guarantee for other ring
sizes; Example 4.3 of the paper is exactly such a non-generalizable
artifact (stabilizing for K=5, deadlocked for K=6), and benchmark X4
reproduces the phenomenon with this synthesizer.

Algorithm (deadlock-driven DFS with livelock repair):

* candidates are local transitions of the representative process sourced
  at *illegitimate* local states (so ``Δ_p|I`` is untouched — Problem 3.1);
* while the instance has an illegitimate deadlock, branch on the candidate
  transitions that resolve one of its corrupted, locally-deadlocked
  processes;
* when a livelock appears instead, branch on removing one of the added
  transitions participating in it;
* memoize visited transition sets and bound the number of expansions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.checker.convergence import check_instance
from repro.core.selfdisabling import action_for_transition
from repro.obs import runtime as obs
from repro.protocol.actions import LocalTransition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


@dataclass
class GlobalSynthesisResult:
    """Outcome of the fixed-K synthesis."""

    success: bool
    protocol: "RingProtocol | None"
    ring_size: int
    added: tuple[LocalTransition, ...]
    expansions: int

    def summary(self) -> str:
        status = "success" if self.success else "failure"
        lines = [f"global synthesis at K={self.ring_size}: {status} "
                 f"({self.expansions} search nodes)"]
        for transition in self.added:
            lines.append(f"  + {transition}")
        return "\n".join(lines)


class GlobalSynthesizer:
    """Fixed-K synthesis by global state-space search."""

    def __init__(self, protocol: "RingProtocol", ring_size: int,
                 seed: int = 0, max_expansions: int = 2000,
                 backend: str = "auto") -> None:
        self.protocol = protocol
        self.ring_size = ring_size
        self.rng = random.Random(seed)
        self.max_expansions = max_expansions
        self.backend = backend
        self._expansions = 0
        self._visited: set[frozenset[LocalTransition]] = set()

    # ------------------------------------------------------------------
    def candidates_from(self, local_state) -> list[LocalTransition]:
        """Candidate recovery transitions out of one illegitimate local
        state (any rewrite of the owned cell)."""
        space = self.protocol.space
        options = []
        for cell in space.cells:
            if cell == local_state.own:
                continue
            target = local_state.replace_own(cell)
            options.append(LocalTransition(local_state, target,
                                           label="g-rec"))
        self.rng.shuffle(options)
        return options

    # ------------------------------------------------------------------
    def synthesize(self) -> GlobalSynthesisResult:
        """Search for a convergent transition set; never raises."""
        self._expansions = 0
        self._visited.clear()
        with obs.span("global-synthesis", K=self.ring_size,
                      backend=self.backend) as span:
            added = self._search(frozenset())
            if span is not None:
                span.attrs["expansions"] = self._expansions
        if added is None:
            return GlobalSynthesisResult(
                success=False, protocol=None, ring_size=self.ring_size,
                added=(), expansions=self._expansions)
        ordered = tuple(sorted(added))
        protocol = self._materialize(ordered)
        return GlobalSynthesisResult(
            success=True, protocol=protocol, ring_size=self.ring_size,
            added=ordered, expansions=self._expansions)

    # ------------------------------------------------------------------
    def _materialize(self, added) -> "RingProtocol":
        actions = tuple(action_for_transition(t, name=f"g{i}")
                        for i, t in enumerate(added))
        return self.protocol.extended_with(
            actions, name=f"{self.protocol.name}_K{self.ring_size}")

    def _search(self,
                added: frozenset[LocalTransition],
                ) -> frozenset[LocalTransition] | None:
        if added in self._visited:
            return None
        self._visited.add(added)
        self._expansions += 1
        if self._expansions > self.max_expansions:
            return None

        candidate = self._materialize(tuple(sorted(added)))
        instance = candidate.instantiate(self.ring_size)
        report = check_instance(instance, backend=self.backend)
        if report.strongly_converging:
            return added

        if report.deadlocks_outside:
            deadlock = report.deadlocks_outside[0]
            space = self.protocol.space
            branches: list[LocalTransition] = []
            for process in instance.corrupted_processes(deadlock):
                local = instance.local_state(deadlock, process)
                if not space.is_deadlock(local):
                    continue
                # only locally-deadlocked corrupted processes get new arcs
                for option in self.candidates_from(local):
                    if option not in added:
                        branches.append(option)
            for option in branches:
                result = self._search(added | {option})
                if result is not None:
                    return result
            return None

        # Livelock: try removing an added transition used along a cycle.
        cycle = report.livelock_cycles[0]
        used = self._transitions_along(instance, cycle)
        removable = [t for t in used if t in added]
        self.rng.shuffle(removable)
        for transition in removable:
            result = self._search(added - {transition})
            if result is not None:
                return result
        # As a fallback, try removing any added transition.
        for transition in sorted(added):
            if transition in removable:
                continue
            result = self._search(added - {transition})
            if result is not None:
                return result
        return None

    @staticmethod
    def _transitions_along(instance, cycle) -> list[LocalTransition]:
        """The local transitions exercised by a global state cycle."""
        used: list[LocalTransition] = []
        n = len(cycle)
        for k in range(n):
            state, nxt = cycle[k], cycle[(k + 1) % n]
            for process in range(instance.size):
                if state[process] != nxt[process]:
                    source = instance.local_state(state, process)
                    target = source.replace_own(nxt[process])
                    transition = LocalTransition(source, target)
                    if transition not in used:
                        used.append(transition)
        return used
