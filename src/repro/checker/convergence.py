"""Exact convergence checking for a fixed ring size (Proposition 2.1).

``strongly converges``: every computation from every state reaches ``I``.
``weakly converges``: from every state *some* computation reaches ``I``.
``self-stabilizing``: closed + strongly converging (Section 2.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import repro.engine.artifacts as artifact_plane
from repro.checker.deadlock import illegitimate_deadlocks
from repro.checker.livelock import has_livelock, livelock_cycles
from repro.checker.statespace import StateGraph
from repro.engine.stats import EngineStats
from repro.obs import runtime as obs


def is_closed(graph: StateGraph) -> bool:
    """Whether ``I(K)`` is closed in the protocol (no transition leaves
    the invariant)."""
    for source, targets in enumerate(graph.successors):
        if graph.in_invariant[source]:
            if any(not graph.in_invariant[t] for t in targets):
                return False
    return True


def strongly_converges(graph: StateGraph) -> bool:
    """No deadlock and no livelock outside ``I(K)`` (Proposition 2.1)."""
    if illegitimate_deadlocks(graph):
        return False
    return not has_livelock(graph)


def weakly_converges(graph: StateGraph) -> bool:
    """Every state has *some* path into ``I(K)``."""
    return all(d is not None for d in graph.distances_to_invariant())


def is_self_stabilizing(graph: StateGraph) -> bool:
    """Closure plus strong convergence."""
    return is_closed(graph) and strongly_converges(graph)


@dataclass(frozen=True)
class GlobalReport:
    """Everything the global checker determines about one instance."""

    ring_size: int
    state_count: int
    invariant_count: int
    closed: bool
    deadlocks_outside: tuple
    livelock_cycles: tuple
    strongly_converging: bool
    weakly_converging: bool
    worst_case_recovery_steps: int | None
    """Longest shortest path from any state into ``I(K)``; ``None`` when
    some state cannot reach the invariant at all."""

    stats: EngineStats | None = field(default=None, compare=False,
                                      repr=False)
    """Backend instrumentation (kernel compile/encode counters, wall
    time); excluded from equality so verdict comparisons stay exact."""

    @property
    def self_stabilizing(self) -> bool:
        return self.closed and self.strongly_converging

    def summary(self) -> str:
        lines = [
            f"K={self.ring_size}: {self.state_count} states, "
            f"{self.invariant_count} in I",
            f"  closed: {self.closed}",
            f"  deadlocks outside I: {len(self.deadlocks_outside)}",
            f"  livelocks: {len(self.livelock_cycles)}",
            f"  strong convergence: {self.strongly_converging}, "
            f"weak: {self.weakly_converging}",
            f"  worst-case recovery: "
            f"{self.worst_case_recovery_steps} steps",
        ]
        return "\n".join(lines)


def check_instance(instance, max_witnesses: int = 8,
                   backend: str = "auto",
                   symmetry: bool = False) -> GlobalReport:
    """Run the full global analysis on one protocol instance.

    *backend* selects the state-space engine (``"auto"`` picks the
    compiled kernel for symmetric ring instances); ``symmetry`` runs
    on the rotation quotient — every verdict field and
    ``worst_case_recovery_steps`` are preserved, while state/witness
    counts then refer to rotation orbits (and a livelock cycle
    witnesses repetition up to rotation).
    """
    began = time.perf_counter()
    plane = artifact_plane.ambient()
    plane_before = plane.stats.snapshot() if plane is not None else None
    with obs.span("check", K=getattr(instance, "size", -1),
                  backend=backend, symmetry=symmetry) as span:
        graph = StateGraph(instance, backend=backend, symmetry=symmetry)
        deadlocks = tuple(illegitimate_deadlocks(graph))
        cycles = tuple(tuple(c) for c in livelock_cycles(
            graph, max_cycles=max_witnesses))
        distances = graph.distances_to_invariant()
        reachable = [d for d in distances if d is not None]
        worst = (max(reachable)
                 if len(reachable) == len(distances) and reachable else None)
        if span is not None:
            span.attrs["states"] = len(graph)
    stats = EngineStats(work_items=1, states_explored=len(graph))
    stats.absorb_kernel(graph.kernel_stats)
    if plane is not None:
        stats.absorb_artifacts(plane.stats.delta_since(plane_before))
    stats.stage_seconds["check"] = time.perf_counter() - began
    return GlobalReport(
        ring_size=getattr(instance, "size", -1),
        state_count=len(graph),
        invariant_count=len(graph.invariant_indices),
        closed=is_closed(graph),
        deadlocks_outside=deadlocks,
        livelock_cycles=cycles,
        strongly_converging=not deadlocks and not cycles,
        weakly_converging=all(d is not None for d in distances),
        worst_case_recovery_steps=worst,
        stats=stats,
    )
