"""Strongly connected components via Tarjan's algorithm (iterative).

The deadlock-freedom decision procedure (Theorem 4.2) reduces to: *does any
SCC of the deadlock-induced RCG both contain an illegitimate local state and
contain a cycle?*  An SCC contains a cycle iff it has more than one node or
its single node carries a self-loop.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.digraph import Digraph


def strongly_connected_components(graph: Digraph) -> list[list[Hashable]]:
    """Return the SCCs of *graph* as lists of nodes.

    Components are returned in reverse topological order (every edge between
    components points from a later component to an earlier one), which is
    the order Tarjan's algorithm naturally emits.

    The implementation is iterative so that local state spaces with long
    chains do not overflow the Python recursion limit.
    """
    index_of: dict[Hashable, int] = {}
    lowlink: dict[Hashable, int] = {}
    on_stack: set[Hashable] = set()
    stack: list[Hashable] = []
    components: list[list[Hashable]] = []
    counter = 0

    for root in graph.nodes:
        if root in index_of:
            continue
        # Each frame is (node, iterator over successors).
        work = [(root, iter(list(graph.successors(root))))]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(list(graph.successors(succ)))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
    return components


def condensation(graph: Digraph) -> tuple[Digraph, dict[Hashable, int]]:
    """Condense *graph* by its SCCs.

    Returns ``(dag, membership)`` where ``dag`` is a :class:`Digraph` whose
    nodes are component indices and ``membership`` maps each original node
    to its component index.
    """
    components = strongly_connected_components(graph)
    membership = {node: idx
                  for idx, component in enumerate(components)
                  for node in component}
    dag = Digraph(nodes=range(len(components)))
    for source, target, _key in graph.edges():
        cs, ct = membership[source], membership[target]
        if cs != ct and not dag.has_edge(cs, ct):
            dag.add_edge(cs, ct)
    return dag, membership


def masked_cyclic_mask(succ_masks: list[int], alive: int) -> int:
    """Vertices on a directed cycle of a bit-packed induced subgraph.

    *succ_masks* gives each vertex's successor set as a bitmask over
    vertex indices; *alive* selects the induced subgraph.  Returns the
    union mask of all cyclic SCCs (more than one vertex, or a self-loop)
    — the primitive behind the Theorem 4.2 check and the
    branch-and-bound feedback-vertex-set search, replacing a
    ``Digraph.induced_subgraph`` rebuild plus Tarjan over hashed nodes
    with shift-and-mask arithmetic on Python ints.
    """
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = 0
    cyclic = 0

    todo = alive
    while todo:
        root_bit = todo & -todo
        todo &= todo - 1
        root = root_bit.bit_length() - 1
        if root in index_of:
            continue
        work = [[root, succ_masks[root] & alive]]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            frame = work[-1]
            node = frame[0]
            remaining = frame[1]
            advanced = False
            while remaining:
                bit = remaining & -remaining
                remaining &= remaining - 1
                succ = bit.bit_length() - 1
                if succ not in index_of:
                    frame[1] = remaining
                    index_of[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append([succ, succ_masks[succ] & alive])
                    advanced = True
                    break
                if succ in on_stack and index_of[succ] < lowlink[node]:
                    lowlink[node] = index_of[succ]
            if advanced:
                continue
            work.pop()
            if work and lowlink[node] < lowlink[work[-1][0]]:
                lowlink[work[-1][0]] = lowlink[node]
            if lowlink[node] != index_of[node]:
                continue
            component = 0
            size = 0
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component |= 1 << member
                size += 1
                if member == node:
                    break
            if size > 1 or (succ_masks[node] >> node) & 1:
                cyclic |= component
    return cyclic


def cyclic_components(graph: Digraph) -> list[list[Hashable]]:
    """SCCs of *graph* that contain at least one cycle.

    An SCC is *cyclic* iff it has more than one node, or its single node has
    a self-loop.  These are exactly the components through which a directed
    cycle can pass.
    """
    cyclic = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            cyclic.append(component)
        else:
            node = component[0]
            if graph.has_edge(node, node):
                cyclic.append(component)
    return cyclic
