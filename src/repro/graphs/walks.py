"""Closed-walk analyses over digraphs.

Theorem 4.2's ring construction places one local deadlock per ring position
along a *closed walk* of the deadlock-induced RCG.  Consequently, the exact
set of ring sizes that can globally deadlock outside ``I`` is::

    { K : the induced RCG has a closed walk of length K
          through an illegitimate local deadlock }

This module computes those lengths by dynamic programming over path lengths
(a boolean "is there a walk of length L from u to v" table).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graphs.digraph import Digraph


def closed_walk_lengths(graph: Digraph, through: Iterable[Hashable],
                        upto: int) -> set[int]:
    """Lengths ``1..upto`` of closed walks through any vertex of *through*.

    A closed walk of length ``L`` through vertex ``v`` is a sequence of
    ``L`` edges starting and ending at ``v``.  The result is the union over
    all ``v`` in *through*.
    """
    anchors = [v for v in through if v in graph]
    if not anchors:
        return set()
    nodes = graph.nodes
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    successors = [sorted((index[s] for s in graph.successors(node)))
                  for node in nodes]

    lengths: set[int] = set()
    for anchor in anchors:
        start = index[anchor]
        # reachable[L] = set of node indices reachable from anchor in L steps
        current = {start}
        reach_by_len = [current]
        for _ in range(upto):
            nxt = set()
            for u in current:
                nxt.update(successors[u])
            reach_by_len.append(nxt)
            current = nxt
            if not current:
                break
        # Walk of length L from anchor back to anchor closes at anchor.
        for length in range(1, min(upto, len(reach_by_len) - 1) + 1):
            if start in reach_by_len[length]:
                lengths.add(length)
    return lengths


def shortest_closed_walk(graph: Digraph,
                         vertex: Hashable) -> list[Hashable] | None:
    """A shortest closed walk through *vertex*, as a node list.

    Returns ``[vertex, v1, ..., vk]`` meaning the edge sequence
    ``vertex -> v1 -> ... -> vk -> vertex``, or ``None`` when *vertex* lies
    on no cycle.  Because the walk is shortest, it is in fact a simple
    cycle.
    """
    from repro.graphs.cycles import find_cycle_through

    return find_cycle_through(graph, vertex)
