"""Cycle detection and simple-cycle enumeration (Johnson's algorithm).

Used for:

* witness extraction in the deadlock analysis (the illegitimate cycles of
  Example 4.3, Figure 3);
* pseudo-livelock enumeration, where each simple cycle of a projection
  multigraph names one pseudo-livelock subset (Definition 5.13).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterator

from repro.graphs.digraph import Digraph
from repro.graphs.scc import strongly_connected_components


def has_cycle(graph: Digraph) -> bool:
    """Whether *graph* contains any directed cycle (self-loops count)."""
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            return True
        node = component[0]
        if graph.has_edge(node, node):
            return True
    return False


def simple_cycles(graph: Digraph,
                  max_length: int | None = None) -> Iterator[list[Hashable]]:
    """Enumerate simple cycles of *graph* as node lists.

    A cycle ``[v0, v1, ..., vk]`` denotes the edge sequence
    ``v0 -> v1 -> ... -> vk -> v0``.  Self-loops are emitted as ``[v]``.
    Parallel edges do not multiply node cycles here; callers that need
    edge-resolved cycles (the pseudo-livelock enumeration does) should use
    :func:`simple_edge_cycles`.

    Unbounded enumeration uses Johnson's algorithm restricted, at each outer
    step, to the SCC of the current root.  With a *max_length* bound a plain
    ordered DFS is used instead: Johnson's blocking bookkeeping is unsound
    under depth cut-offs (a node blocked on a too-long path would suppress a
    short cycle elsewhere).
    """
    if max_length is not None:
        yield from _bounded_simple_cycles(graph, max_length)
        return

    # Self-loops first; Johnson's core below operates on loop-free SCCs.
    for node in graph.nodes:
        if graph.has_edge(node, node):
            yield [node]

    remaining = set(graph.nodes)
    order = {node: i for i, node in enumerate(graph.nodes)}

    while remaining:
        sub = graph.induced_subgraph(remaining)
        components = [c for c in strongly_connected_components(sub)
                      if len(c) > 1]
        if not components:
            break
        component = min(components, key=lambda c: min(order[n] for n in c))
        root = min(component, key=lambda n: order[n])
        scc_graph = graph.induced_subgraph(component)

        blocked: set[Hashable] = set()
        block_map: dict[Hashable, set[Hashable]] = {n: set() for n in component}
        path: list[Hashable] = []

        def unblock(node: Hashable) -> None:
            stack = [node]
            while stack:
                current = stack.pop()
                if current in blocked:
                    blocked.discard(current)
                    stack.extend(block_map[current])
                    block_map[current].clear()

        def circuit(node: Hashable) -> Iterator[list[Hashable]]:
            found = False
            path.append(node)
            blocked.add(node)
            for succ in scc_graph.successors(node):
                if succ == node:
                    continue  # self-loops already reported
                if succ == root:
                    yield list(path)
                    found = True
                elif succ not in blocked:
                    if max_length is not None and len(path) >= max_length:
                        continue
                    sub_found = False
                    for cycle in circuit(succ):
                        yield cycle
                        sub_found = True
                    found = found or sub_found
            if found:
                unblock(node)
            else:
                for succ in scc_graph.successors(node):
                    if succ != node:
                        block_map[succ].add(node)
            path.pop()
            return

        yield from circuit(root)
        remaining.discard(root)


def _bounded_simple_cycles(graph: Digraph,
                           max_length: int) -> Iterator[list[Hashable]]:
    """All simple cycles of length <= *max_length* via ordered DFS.

    Each cycle is reported exactly once by rooting it at its smallest node
    (in graph insertion order) and never descending into smaller nodes.
    """
    order = {node: i for i, node in enumerate(graph.nodes)}
    for root in graph.nodes:
        if graph.has_edge(root, root):
            yield [root]
        if max_length < 2:
            continue
        path = [root]
        on_path = {root}

        def dfs(node: Hashable) -> Iterator[list[Hashable]]:
            for succ in sorted(graph.successors(node), key=order.__getitem__):
                if succ == root and len(path) >= 2:
                    yield list(path)
                elif (succ not in on_path and order[succ] > order[root]
                        and len(path) < max_length):
                    path.append(succ)
                    on_path.add(succ)
                    yield from dfs(succ)
                    on_path.discard(succ)
                    path.pop()

        yield from dfs(root)


def simple_edge_cycles(
        graph: Digraph,
        max_length: int | None = None,
) -> Iterator[list[tuple[Hashable, Hashable, Hashable]]]:
    """Enumerate simple cycles resolved down to individual parallel edges.

    Yields each cycle as a list of ``(source, target, key)`` edges.  A node
    cycle with parallel edges expands into one edge cycle per combination,
    which is what pseudo-livelock enumeration needs: two local transitions
    with identical write projections are distinct pseudo-livelock members.
    """
    for node_cycle in simple_cycles(graph, max_length=max_length):
        pairs = [(node_cycle[i], node_cycle[(i + 1) % len(node_cycle)])
                 for i in range(len(node_cycle))]
        choices: list[list[tuple[Hashable, Hashable, Hashable]]] = [
            [(s, t, k) for k in sorted(graph.edge_keys(s, t), key=repr)]
            for s, t in pairs
        ]
        yield from _product(choices)


def _product(choices: list[list[tuple]]) -> Iterator[list[tuple]]:
    """Cartesian product of per-position edge choices, as lists."""
    if not choices:
        return
    indices = [0] * len(choices)
    while True:
        yield [choices[i][indices[i]] for i in range(len(choices))]
        pos = len(choices) - 1
        while pos >= 0:
            indices[pos] += 1
            if indices[pos] < len(choices[pos]):
                break
            indices[pos] = 0
            pos -= 1
        if pos < 0:
            return


def find_cycle_through(graph: Digraph, node: Hashable,
                       max_length: int | None = None) -> list[Hashable] | None:
    """A shortest directed cycle through *node*, or ``None``.

    Returned in the same node-list convention as :func:`simple_cycles`.
    Runs a BFS from *node* back to itself.
    """
    if node not in graph:
        return None
    if graph.has_edge(node, node):
        return [node]
    parents: dict[Hashable, Hashable] = {}
    frontier = [node]
    depth = 0
    visited = {node}
    while frontier:
        depth += 1
        if max_length is not None and depth > max_length:
            return None
        next_frontier = []
        for current in frontier:
            for succ in graph.successors(current):
                if succ == node:
                    path = [current]
                    while path[-1] != node:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                if succ not in visited:
                    visited.add(succ)
                    parents[succ] = current
                    next_frontier.append(succ)
        frontier = next_frontier
    return None
