"""A minimal, hashable-node directed graph with parallel-edge support.

The graph is deliberately simple: adjacency is stored as ``dict`` of
``dict`` of edge-key sets, which supports the multigraph semantics needed by
pseudo-livelock projection graphs (two distinct local transitions may project
onto the same pair of written values and must remain distinguishable).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any


class Digraph:
    """A directed multigraph over hashable nodes.

    Edges are triples ``(source, target, key)``.  The *key* identifies a
    parallel edge (for plain graphs it defaults to ``None``) and may carry
    arbitrary hashable payload, e.g. the local transition that induced the
    edge.

    >>> g = Digraph()
    >>> g.add_edge("a", "b")
    >>> g.add_edge("b", "a", key="t1")
    >>> sorted(g.successors("a"))
    ['b']
    >>> g.has_edge("b", "a")
    True
    """

    def __init__(self, nodes: Iterable[Hashable] = (),
                 edges: Iterable[tuple] = ()) -> None:
        self._succ: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        self._pred: dict[Hashable, dict[Hashable, set[Hashable]]] = {}
        for node in nodes:
            self.add_node(node)
        for edge in edges:
            self.add_edge(*edge)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Hashable) -> None:
        """Add *node* to the graph (idempotent)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, source: Hashable, target: Hashable,
                 key: Hashable = None) -> None:
        """Add the edge ``(source, target, key)``, creating nodes as needed."""
        self.add_node(source)
        self.add_node(target)
        self._succ[source].setdefault(target, set()).add(key)
        self._pred[target].setdefault(source, set()).add(key)

    def remove_node(self, node: Hashable) -> None:
        """Remove *node* and every incident edge."""
        if node not in self._succ:
            raise KeyError(node)
        for target in list(self._succ[node]):
            del self._pred[target][node]
        for source in list(self._pred[node]):
            del self._succ[source][node]
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    @property
    def nodes(self) -> list[Hashable]:
        """All nodes, in insertion order."""
        return list(self._succ)

    def edges(self) -> Iterator[tuple[Hashable, Hashable, Hashable]]:
        """Yield every edge as a ``(source, target, key)`` triple."""
        for source, targets in self._succ.items():
            for target, keys in targets.items():
                for key in keys:
                    yield source, target, key

    def edge_count(self) -> int:
        """Total number of edges, counting parallel edges separately."""
        return sum(len(keys)
                   for targets in self._succ.values()
                   for keys in targets.values())

    def has_edge(self, source: Hashable, target: Hashable,
                 key: Hashable = ...) -> bool:
        """Whether an edge ``source -> target`` exists.

        With an explicit *key*, checks for that specific parallel edge.
        """
        keys = self._succ.get(source, {}).get(target)
        if keys is None:
            return False
        if key is ...:
            return True
        return key in keys

    def successors(self, node: Hashable) -> Iterator[Hashable]:
        """Distinct successor nodes of *node*."""
        return iter(self._succ[node])

    def predecessors(self, node: Hashable) -> Iterator[Hashable]:
        """Distinct predecessor nodes of *node*."""
        return iter(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        """Number of outgoing edges of *node* (parallel edges counted)."""
        return sum(len(keys) for keys in self._succ[node].values())

    def in_degree(self, node: Hashable) -> int:
        """Number of incoming edges of *node* (parallel edges counted)."""
        return sum(len(keys) for keys in self._pred[node].values())

    def edge_keys(self, source: Hashable, target: Hashable) -> set[Hashable]:
        """The set of keys of parallel edges ``source -> target``."""
        return set(self._succ.get(source, {}).get(target, ()))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, nodes: Iterable[Hashable]) -> "Digraph":
        """The subgraph induced by *nodes*.

        Contains exactly the given nodes and every edge of this graph whose
        both endpoints are among them (the maximal such edge set, matching
        the induced-subgraph footnote of the paper).
        """
        keep = set(nodes)
        sub = Digraph(nodes=keep)
        for source, target, key in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, target, key)
        return sub

    def reversed(self) -> "Digraph":
        """A new graph with every edge direction flipped."""
        rev = Digraph(nodes=self.nodes)
        for source, target, key in self.edges():
            rev.add_edge(target, source, key)
        return rev

    def copy(self) -> "Digraph":
        """A structural copy of this graph."""
        return Digraph(nodes=self.nodes, edges=self.edges())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Digraph(nodes={len(self)}, "
                f"edges={self.edge_count()})")

    def to_edge_list(self) -> list[tuple[Any, Any, Any]]:
        """Sorted edge list, convenient for deterministic comparisons."""
        return sorted(self.edges(), key=repr)
