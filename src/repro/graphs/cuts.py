"""Minimal vertex cuts for constrained path families.

The chain-topology analogue of the synthesis methodology's ``Resolve``
computation: where rings need feedback vertex sets (break every bad
*cycle*), chains need vertex sets breaking every source-to-target *path*
through a bad vertex.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations

from repro.graphs.digraph import Digraph


def _reachable_from(graph: Digraph, sources: set[Hashable],
                    removed: set[Hashable]) -> set[Hashable]:
    seen: set[Hashable] = set()
    frontier = [s for s in sources if s in graph and s not in removed]
    seen.update(frontier)
    while frontier:
        node = frontier.pop()
        for succ in graph.successors(node):
            if succ not in seen and succ not in removed:
                seen.add(succ)
                frontier.append(succ)
    return seen


def has_bad_path(graph: Digraph, sources: Iterable[Hashable],
                 targets: Iterable[Hashable], bad: Iterable[Hashable],
                 removed: Iterable[Hashable] = ()) -> bool:
    """Whether a path source →* bad-vertex →* target survives *removed*.

    Paths may have length zero on either side: a bad vertex that is
    itself a source and/or target counts.
    """
    removed_set = set(removed)
    source_set = set(sources) - removed_set
    target_set = set(targets) - removed_set
    bad_set = set(bad) - removed_set

    forward = _reachable_from(graph, source_set, removed_set)
    backward = _reachable_from(graph.reversed(), target_set, removed_set)
    return any(node in forward and node in backward for node in bad_set)


def minimal_path_cuts(graph: Digraph,
                      sources: Iterable[Hashable],
                      targets: Iterable[Hashable],
                      bad: Iterable[Hashable],
                      allowed: Iterable[Hashable] | None = None,
                      max_sets: int | None = None,
                      ) -> Iterator[frozenset[Hashable]]:
    """Enumerate minimal vertex sets cutting every bad path.

    A *bad path* runs from a source to a target through a vertex of
    *bad*.  Cut vertices are drawn from *allowed* (default: all nodes).
    Yields minimal sets by non-decreasing cardinality, mirroring
    :func:`repro.graphs.fvs.minimal_feedback_vertex_sets`.
    """
    pool = sorted(set(graph.nodes) if allowed is None else set(allowed),
                  key=repr)
    sources = set(sources)
    targets = set(targets)
    bad = set(bad)
    found: list[frozenset[Hashable]] = []
    emitted = 0
    for size in range(len(pool) + 1):
        for combo in combinations(pool, size):
            candidate = frozenset(combo)
            if any(prior <= candidate for prior in found):
                continue
            if not has_bad_path(graph, sources, targets, bad,
                                removed=candidate):
                found.append(candidate)
                yield candidate
                emitted += 1
                if max_sets is not None and emitted >= max_sets:
                    return
    return
