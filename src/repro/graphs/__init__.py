"""Self-contained directed-graph algorithms used throughout the library.

The local-reasoning method of the paper is, at its computational heart, a
collection of graph analyses over the local state space of the representative
process:

* Theorem 4.2 (deadlock-freedom) is a cycle search over an induced subgraph
  of the Right Continuation Graph.
* The ``Resolve`` computation of Section 6 enumerates minimal feedback
  vertex sets.
* Pseudo-livelock detection (Definition 5.13) enumerates simple cycles of a
  projection multigraph.
* The contiguous-trail search (Lemma 5.12) is an SCC analysis of a product
  graph.

All algorithms are implemented from scratch here; :mod:`networkx` is only
used in the test suite as an independent oracle.
"""

from repro.graphs.digraph import Digraph
from repro.graphs.scc import (
    condensation,
    masked_cyclic_mask,
    strongly_connected_components,
)
from repro.graphs.cycles import (
    find_cycle_through,
    has_cycle,
    simple_cycles,
)
from repro.graphs.fvs import (
    FvsStats,
    is_feedback_vertex_set,
    minimal_feedback_vertex_sets,
    minimal_feedback_vertex_sets_exhaustive,
)
from repro.graphs.walks import closed_walk_lengths, shortest_closed_walk

__all__ = [
    "Digraph",
    "FvsStats",
    "strongly_connected_components",
    "condensation",
    "has_cycle",
    "masked_cyclic_mask",
    "simple_cycles",
    "find_cycle_through",
    "minimal_feedback_vertex_sets",
    "minimal_feedback_vertex_sets_exhaustive",
    "is_feedback_vertex_set",
    "closed_walk_lengths",
    "shortest_closed_walk",
]
