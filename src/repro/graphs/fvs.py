"""Minimal feedback vertex sets.

Step 2 of the synthesis methodology (Section 6.1) computes ``Resolve`` as a
minimal feedback vertex set of the deadlock-induced RCG, *restricted to be a
subset of the illegitimate local states* ``¬LC_r``: removing those vertices
must leave no directed cycle through an illegitimate vertex.

Two implementations live here:

* :func:`minimal_feedback_vertex_sets` — branch-and-bound over a
  bit-packed adjacency.  Each search node branches on the vertices of
  one concrete bad cycle (every solution must hit it), with
  inclusion/exclusion banning so no candidate set is visited twice, a
  vertex-disjoint bad-cycle packing lower bound, and iterative
  deepening by cardinality so sets still come out smallest-first in the
  exact order of the exhaustive enumerator.
* :func:`minimal_feedback_vertex_sets_exhaustive` — the original
  increasing-cardinality subset enumeration, kept as the reference
  oracle for the differential tests.

Both yield identical sequences of ``frozenset``\\ s; the differential
suite in ``tests/engine/test_localkernel_differential.py`` pins that.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from dataclasses import dataclass
from itertools import combinations

from repro.graphs.digraph import Digraph
from repro.graphs.scc import cyclic_components, masked_cyclic_mask
from repro.obs import runtime as obs


@dataclass
class FvsStats:
    """Branch-and-bound instrumentation (threaded into ``EngineStats``)."""

    nodes_explored: int = 0
    nodes_pruned: int = 0
    cycle_checks: int = 0


class _MaskedGraph:
    """Bit-packed view of a :class:`Digraph` for the FVS search.

    Built once per query — the hoist the naive
    :func:`is_feedback_vertex_set` lacked, which rebuilt
    ``graph.induced_subgraph`` (and re-hashed every node) per candidate.
    """

    __slots__ = ("nodes", "index", "succ", "all_mask", "bad_mask")

    def __init__(self, graph: Digraph,
                 bad: Iterable[Hashable] | None) -> None:
        self.nodes = list(graph.nodes)
        self.index = {node: i for i, node in enumerate(self.nodes)}
        self.succ = [0] * len(self.nodes)
        for source, target, _key in graph.edges():
            self.succ[self.index[source]] |= 1 << self.index[target]
        self.all_mask = (1 << len(self.nodes)) - 1
        if bad is None:
            self.bad_mask = self.all_mask
        else:
            self.bad_mask = 0
            for node in bad:
                i = self.index.get(node)
                if i is not None:
                    self.bad_mask |= 1 << i

    def removal_mask(self, vertices: Iterable[Hashable]) -> int:
        mask = 0
        for vertex in vertices:
            i = self.index.get(vertex)
            if i is not None:  # foreign vertices remove nothing
                mask |= 1 << i
        return mask


def is_feedback_vertex_set(graph: Digraph, vertices: Iterable[Hashable],
                           bad: Iterable[Hashable] | None = None) -> bool:
    """Whether *vertices* is a feedback vertex set of *graph*.

    With *bad* given, only cycles passing through a vertex of *bad* need to
    be broken (the relaxation used by Theorem 4.2: cycles entirely within
    legitimate local deadlocks are harmless).
    """
    masked = _MaskedGraph(graph, bad)
    alive = masked.all_mask & ~masked.removal_mask(vertices)
    return not masked_cyclic_mask(masked.succ, alive) & masked.bad_mask


def minimal_feedback_vertex_sets(
        graph: Digraph,
        allowed: Iterable[Hashable] | None = None,
        bad: Iterable[Hashable] | None = None,
        max_sets: int | None = None,
        stats: FvsStats | None = None,
) -> Iterator[frozenset[Hashable]]:
    """Enumerate minimal feedback vertex sets, smallest first.

    Parameters
    ----------
    graph:
        The directed graph to acyclify.
    allowed:
        Candidate vertices the set may draw from (the synthesis methodology
        restricts ``Resolve ⊆ ¬LC_r``).  Defaults to all nodes.
    bad:
        Only cycles through these vertices must be broken.  Defaults to all
        nodes (classical feedback vertex sets).
    max_sets:
        Stop after yielding this many sets.
    stats:
        Optional :class:`FvsStats` accumulating search-tree counters.

    Yields ``frozenset`` instances.  Every yielded set is *minimal*: no
    proper subset is itself a feedback vertex set for the same problem.
    Sets are yielded in order of non-decreasing cardinality, and within
    one cardinality in the ``itertools.combinations`` order over the
    repr-sorted pool — byte-identical to
    :func:`minimal_feedback_vertex_sets_exhaustive`.
    """
    if stats is None:
        stats = FvsStats()
    masked = _MaskedGraph(graph, bad)
    pool = sorted(set(graph.nodes) if allowed is None else set(allowed),
                  key=repr)
    # A minimal set never contains a vertex outside the graph (removing
    # it changes nothing, so the subset without it works too).
    pool = [vertex for vertex in pool if vertex in masked.index]
    pool_position = {masked.index[vertex]: position
                     for position, vertex in enumerate(pool)}
    allowed_mask = 0
    for vertex in pool:
        allowed_mask |= 1 << masked.index[vertex]

    found_masks: list[int] = []
    emitted = 0
    for size in range(len(pool) + 1):
        explored_before = stats.nodes_explored
        pruned_before = stats.nodes_pruned
        with obs.span("fvs.search", size=size) as span:
            solutions = _solutions_of_size(masked, allowed_mask, size,
                                           found_masks, stats)
            if span is not None:
                span.attrs["solutions"] = len(solutions)
                span.attrs["nodes"] = (stats.nodes_explored
                                       - explored_before)
        obs.metric("fvs.nodes_explored",
                   stats.nodes_explored - explored_before)
        obs.metric("fvs.nodes_pruned", stats.nodes_pruned - pruned_before)
        ordered = sorted(
            solutions,
            key=lambda mask: tuple(sorted(pool_position[i]
                                          for i in _bits(mask))))
        for mask in ordered:
            found_masks.append(mask)
            yield frozenset(masked.nodes[i] for i in _bits(mask))
            emitted += 1
            if max_sets is not None and emitted >= max_sets:
                return
    return


def _solutions_of_size(masked: _MaskedGraph, allowed_mask: int, size: int,
                       found_masks: list[int],
                       stats: FvsStats) -> set[int]:
    """All FVSs of exactly *size* vertices not containing a found set."""
    solutions: set[int] = set()
    # (chosen, banned) pairs already expanded at this depth budget.
    seen: set[tuple[int, int]] = set()

    def descend(chosen: int, banned: int) -> None:
        state = (chosen, banned)
        if state in seen:
            stats.nodes_pruned += 1
            return
        seen.add(state)
        stats.nodes_explored += 1
        if any(prior & ~chosen == 0 for prior in found_masks):
            stats.nodes_pruned += 1  # contains a smaller minimal set
            return
        alive = masked.all_mask & ~chosen
        stats.cycle_checks += 1
        cyclic = masked_cyclic_mask(masked.succ, alive)
        if not cyclic & masked.bad_mask:
            if _popcount(chosen) == size:
                solutions.add(chosen)
            # A smaller FVS: its supersets are never minimal.
            return
        budget = size - _popcount(chosen)
        if budget <= 0:
            stats.nodes_pruned += 1
            return
        if budget > 1 and _packing_bound(masked, alive, cyclic) > budget:
            stats.nodes_pruned += 1
            return
        cycle = _bad_cycle(masked, alive, cyclic)
        branch = [vertex for vertex in cycle
                  if (allowed_mask >> vertex) & 1
                  and not (banned >> vertex) & 1]
        if not branch:
            stats.nodes_pruned += 1  # this bad cycle cannot be hit
            return
        # Inclusion/exclusion over one cycle's vertices: branch i takes
        # cycle[i] and bans cycle[0..i-1], so every solution containing
        # some branch vertex is reached exactly once.
        newly_banned = banned
        for vertex in branch:
            descend(chosen | (1 << vertex), newly_banned)
            newly_banned |= 1 << vertex

    descend(0, 0)
    return solutions


def _packing_bound(masked: _MaskedGraph, alive: int, cyclic: int) -> int:
    """Greedy vertex-disjoint bad-cycle count: a lower bound on how many
    more vertices any solution must still remove."""
    count = 0
    remaining = alive
    while cyclic & masked.bad_mask:
        cycle = _bad_cycle(masked, remaining, cyclic)
        count += 1
        for vertex in cycle:
            remaining &= ~(1 << vertex)
        cyclic = masked_cyclic_mask(masked.succ, remaining)
    return count


def _bad_cycle(masked: _MaskedGraph, alive: int,
               cyclic: int) -> list[int]:
    """A shortest cycle through the lowest-index live bad vertex."""
    region = alive & cyclic
    anchor_bit = region & masked.bad_mask
    anchor = (anchor_bit & -anchor_bit).bit_length() - 1
    if (masked.succ[anchor] >> anchor) & 1:
        return [anchor]
    # BFS back to the anchor; the shortest closed walk is a simple cycle.
    parent: dict[int, int] = {}
    frontier = [anchor]
    while frontier:
        next_frontier = []
        for node in frontier:
            successors = masked.succ[node] & region
            while successors:
                bit = successors & -successors
                successors &= successors - 1
                succ = bit.bit_length() - 1
                if succ == anchor:
                    cycle = [node]
                    while node != anchor:
                        node = parent[node]
                        cycle.append(node)
                    return cycle
                if succ not in parent and succ != anchor:
                    parent[succ] = node
                    next_frontier.append(succ)
        frontier = next_frontier
    raise AssertionError("anchor lies on a cycle by construction")


def _bits(mask: int) -> list[int]:
    indices = []
    while mask:
        bit = mask & -mask
        mask &= mask - 1
        indices.append(bit.bit_length() - 1)
    return indices


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


# ----------------------------------------------------------------------
# Reference oracle (the original exhaustive enumerator).
# ----------------------------------------------------------------------
def _is_feedback_vertex_set_naive(graph: Digraph,
                                  vertices: Iterable[Hashable],
                                  bad: Iterable[Hashable] | None) -> bool:
    removed = set(vertices)
    sub = graph.induced_subgraph(set(graph.nodes) - removed)
    bad_set = set(graph.nodes) if bad is None else set(bad)
    for component in cyclic_components(sub):
        if any(node in bad_set for node in component):
            return False
    return True


def minimal_feedback_vertex_sets_exhaustive(
        graph: Digraph,
        allowed: Iterable[Hashable] | None = None,
        bad: Iterable[Hashable] | None = None,
        max_sets: int | None = None,
) -> Iterator[frozenset[Hashable]]:
    """The original exhaustive subset enumeration, kept as the oracle
    the branch-and-bound search is differentially tested against."""
    pool = sorted(set(graph.nodes) if allowed is None else set(allowed),
                  key=repr)
    found: list[frozenset[Hashable]] = []
    emitted = 0
    for size in range(len(pool) + 1):
        for combo in combinations(pool, size):
            candidate = frozenset(combo)
            if any(prior <= candidate for prior in found):
                continue  # a subset already works => not minimal
            if _is_feedback_vertex_set_naive(graph, candidate, bad):
                found.append(candidate)
                yield candidate
                emitted += 1
                if max_sets is not None and emitted >= max_sets:
                    return
        # Nothing larger than the full pool can help.
    return
