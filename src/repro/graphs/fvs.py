"""Minimal feedback vertex sets.

Step 2 of the synthesis methodology (Section 6.1) computes ``Resolve`` as a
minimal feedback vertex set of the deadlock-induced RCG, *restricted to be a
subset of the illegitimate local states* ``¬LC_r``: removing those vertices
must leave no directed cycle through an illegitimate vertex.

Local state spaces are small (tens of states), so an exact enumeration by
increasing cardinality is both simple and fast.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from itertools import combinations

from repro.graphs.digraph import Digraph
from repro.graphs.scc import cyclic_components


def is_feedback_vertex_set(graph: Digraph, vertices: Iterable[Hashable],
                           bad: Iterable[Hashable] | None = None) -> bool:
    """Whether *vertices* is a feedback vertex set of *graph*.

    With *bad* given, only cycles passing through a vertex of *bad* need to
    be broken (the relaxation used by Theorem 4.2: cycles entirely within
    legitimate local deadlocks are harmless).
    """
    removed = set(vertices)
    sub = graph.induced_subgraph(set(graph.nodes) - removed)
    bad_set = set(graph.nodes) if bad is None else set(bad)
    for component in cyclic_components(sub):
        if any(node in bad_set for node in component):
            return False
    return True


def minimal_feedback_vertex_sets(
        graph: Digraph,
        allowed: Iterable[Hashable] | None = None,
        bad: Iterable[Hashable] | None = None,
        max_sets: int | None = None,
) -> Iterator[frozenset[Hashable]]:
    """Enumerate minimal feedback vertex sets, smallest first.

    Parameters
    ----------
    graph:
        The directed graph to acyclify.
    allowed:
        Candidate vertices the set may draw from (the synthesis methodology
        restricts ``Resolve ⊆ ¬LC_r``).  Defaults to all nodes.
    bad:
        Only cycles through these vertices must be broken.  Defaults to all
        nodes (classical feedback vertex sets).
    max_sets:
        Stop after yielding this many sets.

    Yields ``frozenset`` instances.  Every yielded set is *minimal*: no
    proper subset is itself a feedback vertex set for the same problem.
    Sets are yielded in order of non-decreasing cardinality, so the first
    yielded set has minimum size.
    """
    pool = sorted(set(graph.nodes) if allowed is None else set(allowed),
                  key=repr)
    found: list[frozenset[Hashable]] = []
    emitted = 0
    for size in range(len(pool) + 1):
        for combo in combinations(pool, size):
            candidate = frozenset(combo)
            if any(prior <= candidate for prior in found):
                continue  # a subset already works => not minimal
            if is_feedback_vertex_set(graph, candidate, bad=bad):
                found.append(candidate)
                yield candidate
                emitted += 1
                if max_sets is not None and emitted >= max_sets:
                    return
        # Nothing larger than the full pool can help.
    return
