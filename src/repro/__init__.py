"""Local reasoning for global convergence of parameterized rings.

A verification and synthesis library for self-stabilizing ring protocols,
reproducing Farahat & Ebnenasir (ICDCS 2012 / Michigan Tech CS-TR-11-04):

* model parameterized ring protocols from a representative process
  (:mod:`repro.protocol`);
* decide **deadlock-freedom for every ring size** from the Right
  Continuation Graph — Theorem 4.2, exact
  (:func:`repro.core.analyze_deadlocks`);
* certify **livelock-freedom for every ring size** from the Local
  Transition Graph — Theorem 5.14, sufficient
  (:func:`repro.core.certify_livelock_freedom`);
* **synthesize convergence** in the local state space — Section 6
  (:func:`repro.core.synthesize_convergence`);
* cross-validate with an explicit-state global model checker and a
  fixed-K global synthesizer baseline (:mod:`repro.checker`);
* execute and fault-inject concrete rings (:mod:`repro.simulation`).

Quickstart
----------
>>> from repro import RingProtocol, ProcessTemplate, ranged
>>> from repro import synthesize_convergence
>>> x = ranged("x", 2)
>>> empty = ProcessTemplate(variables=(x,))
>>> agreement = RingProtocol("agreement", empty, "x[0] == x[-1]")
>>> result = synthesize_convergence(agreement)
>>> result.succeeded
True
"""

from repro.errors import (
    AssumptionViolation,
    DomainError,
    DslNameError,
    DslSyntaxError,
    ProtocolDefinitionError,
    ReproError,
    SynthesisFailure,
    TopologyError,
    VerificationError,
)
from repro.protocol import (
    Action,
    LocalState,
    LocalStateSpace,
    LocalTransition,
    LocalView,
    ProcessTemplate,
    RingInstance,
    RingProtocol,
    Variable,
    parse_action,
    parse_predicate,
)
from repro.protocol.variables import boolean, ranged
from repro.core import (
    ConvergenceReport,
    ConvergenceVerdict,
    DeadlockAnalyzer,
    DeadlockReport,
    LivelockCertifier,
    LivelockReport,
    LivelockVerdict,
    SynthesisOutcome,
    SynthesisResult,
    Synthesizer,
    analyze_deadlocks,
    certify_livelock_freedom,
    make_self_disabling,
    synthesize_convergence,
    verify_convergence,
)
from repro.core import (
    HybridVerdict,
    hybrid_synthesize,
    hybrid_verify,
)
from repro.core.chains import (
    synthesize_chain_convergence,
    verify_chain_convergence,
)
from repro.core.trees import TreeDeadlockAnalyzer
from repro.checker import (
    GlobalSynthesizer,
    check_instance,
    compute_ranking,
    sweep_verify,
    verify_ranking,
)
from repro.protocol.chain import ChainInstance, ChainProtocol
from repro.protocol.tree import TreeInstance
from repro.serialization import (
    load_protocol,
    protocol_from_dict,
    protocol_to_dict,
    save_protocol,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "ProtocolDefinitionError",
    "DslSyntaxError",
    "DslNameError",
    "DomainError",
    "TopologyError",
    "AssumptionViolation",
    "SynthesisFailure",
    "VerificationError",
    # protocol model
    "Variable",
    "boolean",
    "ranged",
    "Action",
    "LocalState",
    "LocalStateSpace",
    "LocalTransition",
    "LocalView",
    "ProcessTemplate",
    "RingProtocol",
    "RingInstance",
    "parse_action",
    "parse_predicate",
    # local reasoning
    "DeadlockAnalyzer",
    "DeadlockReport",
    "analyze_deadlocks",
    "LivelockCertifier",
    "LivelockReport",
    "LivelockVerdict",
    "certify_livelock_freedom",
    "make_self_disabling",
    "ConvergenceReport",
    "ConvergenceVerdict",
    "verify_convergence",
    "Synthesizer",
    "SynthesisResult",
    "SynthesisOutcome",
    "synthesize_convergence",
    # global substrate
    "check_instance",
    "GlobalSynthesizer",
    "compute_ranking",
    "verify_ranking",
    "sweep_verify",
    # extensions
    "HybridVerdict",
    "hybrid_verify",
    "hybrid_synthesize",
    "ChainProtocol",
    "ChainInstance",
    "verify_chain_convergence",
    "synthesize_chain_convergence",
    "TreeInstance",
    "TreeDeadlockAnalyzer",
    # serialization
    "protocol_to_dict",
    "protocol_from_dict",
    "save_protocol",
    "load_protocol",
]
