"""Command-line interface.

::

    repro list
    repro show matching-ex4.2
    repro verify matching-ex4.3            # Theorem 4.2 + 5.14, all K
    repro hybrid agreement-livelock        # refine UNKNOWN via checking
    repro check agreement-ss -K 6          # global model checking, one K
    repro sweep matching-ex4.3 --up-to 8   # cutoff-style per-K baseline
    repro sweep agreement-ss --up-to 9 --jobs 4 --timeout 30 --checkpoint
    repro sweep agreement-ss --up-to 9 --resume <run-id>
    repro synthesize sum-not-two           # Section 6 methodology
    repro simulate agreement-ss -K 8       # random-daemon convergence study
    repro fuzz --samples 50                # random-protocol theorem audit
    repro figures --out figures/           # DOT files for the paper figures
    repro cache                            # on-disk cache/artifact stats
    repro cache --clear
    repro ps                               # live/recent runs on this host
    repro top <run-id> --follow            # refreshing view of one run
    repro runs list                        # cross-run ledger
    repro runs diff <run-id> [baseline]    # regression check between runs
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

import repro.engine.artifacts as artifact_plane
from repro.checker import check_instance
from repro.core import (
    build_ltg,
    synthesize_convergence,
    verify_convergence,
)
from repro.core.deadlock import DeadlockAnalyzer
from repro.engine.journal import JournalError
from repro.obs import runtime as obs
from repro.protocols.registry import REGISTRY, get_protocol
from repro.simulation import convergence_study
from repro.viz import ltg_to_dot, rcg_to_dot


def _resolve_protocol(name: str):
    """A registry name, or a path to a JSON protocol file."""
    if name.endswith(".json"):
        from repro.serialization import load_protocol

        protocol = load_protocol(name)
    else:
        protocol = get_protocol(name)
    _annotate_protocol(protocol)
    return protocol


def _annotate_protocol(protocol) -> None:
    """Stamp the protocol identity onto the ambient obs run and the
    ambient live plane (so ``repro ps`` can show a PROTOCOL column)."""
    from repro.obs import live as live_mod

    live_run = live_mod.active()
    if obs.active() is None and live_run is None:
        return
    from repro.engine.fingerprint import protocol_fingerprint

    fingerprint = protocol_fingerprint(protocol)
    if live_run is not None:
        live_run.annotate(protocol=protocol.name,
                          fingerprint=fingerprint)
    if obs.active() is not None:
        obs.annotate(protocol=protocol.name, fingerprint=fingerprint)
        obs.gauge("protocol.name", protocol.name)
        obs.gauge("protocol.fingerprint", fingerprint)


def _add_engine_options(parser: argparse.ArgumentParser,
                        jobs: bool = True) -> None:
    """The shared ``repro.engine`` flags (``--jobs``, ``--cache``)."""
    if jobs:
        parser.add_argument(
            "--jobs", type=int, default=1, metavar="N",
            help="worker processes for independent work items "
                 "(default: 1 = serial)")
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help="reuse results across runs via the on-disk result cache")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (default: .repro-cache/; implies --cache "
             "unless --no-cache is given)")
    parser.add_argument(
        "--artifacts", choices=("auto", "off", "rw", "ro"),
        default="auto", metavar="MODE",
        help="zero-copy compiled-artifact store under "
             "<cache-dir>/artifacts/ (auto|off|rw|ro): compiled kernels "
             "and state graphs are mmap-attached across runs and worker "
             "processes; auto activates it together with --cache, rw/ro "
             "force it on, off disables it")
    parser.add_argument(
        "--cache-limit", type=int, default=1024, metavar="MIB",
        help="combined size cap in MiB for the on-disk result cache and "
             "the artifact store, enforced LRU-by-mtime "
             "(default: 1024; 0 = unbounded)")


def _add_backend_options(parser: argparse.ArgumentParser) -> None:
    """The state-space backend flags (``--backend``, ``--symmetry``)."""
    parser.add_argument(
        "--backend", choices=("auto", "kernel", "naive"), default="auto",
        help="global state-space engine: the compiled bit-packed kernel "
             "(auto-selected for symmetric rings) or the naive "
             "pure-Python reference interpreter")
    parser.add_argument(
        "--symmetry", action="store_true",
        help="quotient the global space by ring rotations (kernel only; "
             "~K-fold smaller, all verdicts preserved, state counts "
             "refer to rotation orbits)")


def _add_supervisor_options(parser: argparse.ArgumentParser,
                            resume: bool = False) -> None:
    """The supervision flags (``--timeout``, ``--retries`` and, for the
    long-running commands, ``--checkpoint`` / ``--run-id`` /
    ``--resume``)."""
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-work-item wall-clock budget; an over-budget task is "
             "killed and retried (--retries), then degraded to an "
             "in-process serial fallback")
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="extra attempts for a crashed or timed-out work item "
             "before degrading (default: 2 once supervision is on)")
    parser.add_argument(
        "--schedule", choices=("auto", "batch", "task"), default="auto",
        help="supervised execution strategy: persistent workers pulling "
             "adaptively sized batches (batch; the auto default when "
             "children are forked anyway) or one forked child per task "
             "attempt (task)")
    parser.add_argument(
        "--batch-size", type=int, default=None, metavar="N",
        help="pin the batch scheduler's batch size instead of adapting "
             "it from observed task durations")
    if resume:
        parser.add_argument(
            "--checkpoint", action="store_true",
            help="journal each completed work item under "
                 "<cache-dir>/runs/<run-id>/ so an interrupted run can "
                 "be resumed")
        parser.add_argument(
            "--run-id", default=None, metavar="ID",
            help="run identifier for --checkpoint (default: generated "
                 "and printed; implies --checkpoint)")
        parser.add_argument(
            "--resume", default=None, metavar="ID",
            help="resume a prior --checkpoint run: items its journal "
                 "already holds are not re-executed")


def _supervisor_policy(args: argparse.Namespace):
    """The :class:`SupervisorPolicy` requested by the flags, or ``None``
    (= unsupervised, the plain pool fast path)."""
    if args.timeout is None and args.retries is None:
        return None
    from repro.engine.supervisor import SupervisorPolicy

    return SupervisorPolicy(
        timeout=args.timeout,
        retries=args.retries if args.retries is not None else 2)


def _run_journal(args: argparse.Namespace, fingerprint: str):
    """The :class:`RunJournal` requested by the flags, or ``None``.

    ``--resume`` reloads (and fingerprint-checks) a prior run;
    ``--checkpoint`` / ``--run-id`` start a new one and print its id so
    a later ``--resume`` can name it.
    """
    resume = getattr(args, "resume", None)
    checkpoint = getattr(args, "checkpoint", False) \
        or getattr(args, "run_id", None) is not None
    if resume is None and not checkpoint:
        return None
    from repro.engine.journal import RunJournal, runs_root

    root = runs_root(args.cache_dir)
    if resume is not None:
        journal = RunJournal.resume(root, resume,
                                    fingerprint=fingerprint)
        print(f"resuming run {journal.run_id}: {len(journal)} "
              f"completed items in the journal", file=sys.stderr)
    else:
        # Share the identity the live plane picked, so the journal
        # and status.json land in the same runs/<run-id>/ directory.
        journal = RunJournal.create(root,
                                    run_id=args.run_id
                                    or getattr(args, "live_run_id", None),
                                    command=args.command,
                                    fingerprint=fingerprint)
        print(f"checkpointing to run {journal.run_id} "
              f"(continue with --resume {journal.run_id})",
              file=sys.stderr)
    return journal


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    """The observability flags (``--trace``, ``--log-json``,
    ``--live``, ``--ledger``)."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write a Chrome trace-format span tree of this run "
             "(open in chrome://tracing or Perfetto)")
    parser.add_argument(
        "--log-json", default=None, metavar="FILE",
        help="write a JSONL run log (spans, events, metrics); "
             "render it with 'repro report FILE'")
    parser.add_argument(
        "--live", action=argparse.BooleanOptionalAction, default=True,
        help="publish rate-limited status.json snapshots under "
             "<cache-dir>/runs/<run-id>/ for 'repro ps' and "
             "'repro top' (default: on)")
    parser.add_argument(
        "--ledger", action=argparse.BooleanOptionalAction, default=True,
        help="append this run's final record (verdict digest, "
             "counters, timings) to <cache-dir>/ledger.jsonl for "
             "'repro runs list|diff' (default: on)")


def _engine_cache(args: argparse.Namespace):
    """The :class:`ResultCache` requested by the flags, or ``None``.

    An explicit ``--no-cache`` always wins; otherwise ``--cache-dir``
    implies ``--cache``.
    """
    if args.cache is False or (args.cache is None and args.cache_dir is None):
        return None
    from repro.engine import DEFAULT_CACHE_DIR, ResultCache

    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR,
                       limit_bytes=_cache_limit_bytes(args))


def _cache_limit_bytes(args: argparse.Namespace) -> int | None:
    """The ``--cache-limit`` flag in bytes, ``None`` when unbounded."""
    limit = getattr(args, "cache_limit", 0)
    return limit << 20 if limit else None


@contextlib.contextmanager
def _artifact_store(args: argparse.Namespace):
    """Activate the ambient artifact plane for one command.

    Resolves ``--artifacts`` against the cache flags (``auto`` follows
    ``--cache``), installs the store process-globally for the engine
    layers to attach/publish through, and on the way out enforces the
    shared ``--cache-limit`` budget across *both* disk layers (result
    pickles and artifact files age out of one LRU together).
    """
    mode = getattr(args, "artifacts", None)
    if mode is None:  # command without engine options
        yield None
        return
    from repro.engine import DEFAULT_CACHE_DIR

    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    cache_requested = not (args.cache is False
                           or (args.cache is None
                               and args.cache_dir is None))
    store = artifact_plane.open_store(cache_dir, mode=mode,
                                      cache_requested=cache_requested)
    with artifact_plane.plane(store):
        try:
            yield store
        finally:
            if store is not None:
                limit = _cache_limit_bytes(args)
                if limit is not None:
                    from repro.engine.cache import ENTRY_SUFFIX

                    artifact_plane.enforce_directory_limit(
                        Path(cache_dir), limit,
                        suffix=(ENTRY_SUFFIX,
                                artifact_plane.ARTIFACT_SUFFIX))
                store.close()


#: ``args`` attributes recorded as the ledger identity's flags.  The
#: run-identity flags (``--run-id``, ``--resume``, ``--checkpoint``)
#: and output flags are deliberately excluded: two runs of the same
#: analysis must diff as equals regardless of where they journal.
_LEDGER_FLAG_KEYS = (
    "jobs", "backend", "symmetry", "schedule", "batch_size", "search",
    "timeout", "retries", "cache", "artifacts",
    "max_ring_size", "up_to", "ring_size", "samples", "seed",
    "stop_on_failure",
)


def _ledger_flags(args: argparse.Namespace) -> dict:
    flags = {}
    for key in _LEDGER_FLAG_KEYS:
        value = getattr(args, key, None)
        if value is not None and value is not False:
            flags[key] = value
    return flags


def _note_ledger(args: argparse.Namespace, *, protocol=None,
                 fingerprint=None, verdict=None, stats=None) -> None:
    """Stash one command's outcome for the ledger record that
    :func:`_dispatch` appends after the command returns."""
    args._ledger_note = {"protocol": protocol, "fingerprint": fingerprint,
                         "verdict": verdict or {}, "stats": stats}


def _record_ledger(args: argparse.Namespace, exit_status: int,
                   wall_seconds: float, started: float,
                   live_run) -> None:
    """Append this run's final record to ``<cache-dir>/ledger.jsonl``."""
    if not getattr(args, "ledger", False):
        return
    note = getattr(args, "_ledger_note", None)
    if note is None:  # the command has no ledger-worthy verdict
        return
    from repro.engine import DEFAULT_CACHE_DIR
    from repro.obs import ledger as ledger_mod

    stats = note.get("stats")
    counters: dict = {}
    stage_seconds: dict = {}
    if stats is not None:
        data = stats.to_dict()
        stage_seconds = {name: round(seconds, 6) for name, seconds
                         in (data.pop("stage_seconds", None) or {}).items()}
        data.pop("metrics", None)
        counters = {name: value for name, value in data.items()
                    if isinstance(value, (int, float))
                    and not isinstance(value, bool)}
    if live_run is not None:
        counters["live_snapshots"] = live_run.snapshots
    record = ledger_mod.make_record(
        getattr(args, "live_run_id", None) or "adhoc",
        args.command,
        protocol=note.get("protocol"),
        fingerprint=note.get("fingerprint"),
        flags=_ledger_flags(args),
        verdict=note.get("verdict"),
        exit_status=exit_status,
        wall_seconds=round(wall_seconds, 6),
        started=started,
        counters=counters,
        stage_seconds=stage_seconds)
    ledger_mod.append(ledger_mod.ledger_path(
        getattr(args, "cache_dir", None) or DEFAULT_CACHE_DIR), record)


@contextlib.contextmanager
def _live_plane(args: argparse.Namespace):
    """Activate the ambient live plane for one command.

    Only the engine commands carry the ``--live`` flag; everything else
    (and ``--no-live``) runs without a publisher.  The run directory is
    the same ``runs/<run-id>/`` a checkpoint journal would use.
    """
    if not getattr(args, "live", False):
        yield None
        return
    from repro.engine.journal import runs_root
    from repro.obs import live as live_mod

    directory = runs_root(getattr(args, "cache_dir", None)) \
        / args.live_run_id
    live_run = live_mod.LiveRun(directory, args.live_run_id,
                                command=args.command)
    live_mod.activate(live_run)
    live_run.publish(force=True)
    try:
        yield live_run
    finally:
        live_mod.deactivate(live_run)


def _print_stats(stats, cache) -> None:
    if stats is not None:
        print(stats.summary())
    if cache is not None:
        print(cache.stats.summary())


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.serialization import save_protocol

    protocol = get_protocol(args.protocol)
    save_protocol(protocol, args.out)
    print(f"wrote {args.out}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    for name in sorted(REGISTRY):
        protocol = get_protocol(name)
        kind = ("unidirectional" if protocol.unidirectional
                else "bidirectional")
        print(f"{name:28s} {kind:14s} {protocol.description}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    print(get_protocol(args.protocol).pretty())
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    protocol = _resolve_protocol(args.protocol)
    cache = _engine_cache(args)
    report = verify_convergence(protocol,
                                max_ring_size=args.max_ring_size,
                                jobs=args.jobs, cache=cache,
                                backend=args.backend,
                                policy=_supervisor_policy(args),
                                schedule=args.schedule,
                                batch_size=args.batch_size)
    from repro.engine.fingerprint import protocol_fingerprint

    _note_ledger(args, protocol=protocol.name,
                 fingerprint=protocol_fingerprint(protocol),
                 verdict={"verdict": report.verdict.value},
                 stats=report.stats)
    if args.json:
        from repro.serialization import convergence_report_to_dict

        print(json.dumps(convergence_report_to_dict(report), indent=2))
        return 0 if report.verdict.value == "converges" else 1
    print(f"== parameterized verification of {protocol.name} ==")
    print(report.summary())
    if not report.deadlock.deadlock_free:
        analyzer = DeadlockAnalyzer(protocol)
        sizes = sorted(analyzer.deadlocked_ring_sizes(args.max_sizes))
        print(f"deadlocked ring sizes <= {args.max_sizes}: {sizes}")
    _print_stats(report.stats, cache)
    return 0 if report.verdict.value == "converges" else 1


def _cmd_chain(args: argparse.Namespace) -> int:
    from repro.core.chains import (
        synthesize_chain_convergence,
        verify_chain_convergence,
    )
    from repro.protocols.chains import CHAIN_REGISTRY, get_chain_protocol

    if args.protocol == "list":
        for name in sorted(CHAIN_REGISTRY):
            print(f"{name:24s} {get_chain_protocol(name).description}")
        return 0
    protocol = get_chain_protocol(args.protocol)
    if args.synthesize:
        result = synthesize_chain_convergence(protocol)
        print(f"== chain synthesis for {protocol.name} ==")
        print(result.summary())
        if result.succeeded and result.protocol is not None:
            print()
            print(result.protocol.pretty())
        return 0 if result.succeeded else 1
    report = verify_chain_convergence(protocol)
    print(f"== chain verification of {protocol.name} ==")
    print(report.summary())
    return 0 if report.verdict.value == "converges" else 1


def _cmd_hybrid(args: argparse.Namespace) -> int:
    from repro.core.hybrid import HybridVerdict, hybrid_verify

    protocol = get_protocol(args.protocol)
    report = hybrid_verify(protocol,
                           max_ring_size=args.max_ring_size,
                           check_up_to=args.check_up_to,
                           backend=args.backend,
                           symmetry=args.symmetry)
    print(f"== hybrid verification of {protocol.name} ==")
    print(report.summary())
    return 0 if report.verdict in (HybridVerdict.CONVERGES,
                                   HybridVerdict.BOUNDED) else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.checker.sweep import sweep_fingerprint, sweep_verify

    protocol = _resolve_protocol(args.protocol)
    cache = _engine_cache(args)
    fingerprint = sweep_fingerprint(protocol, args.up_to,
                                    symmetry=args.symmetry)
    journal = _run_journal(args, fingerprint)
    result = sweep_verify(protocol, up_to=args.up_to,
                          stop_on_failure=args.stop_on_failure,
                          jobs=args.jobs, cache=cache,
                          backend=args.backend, symmetry=args.symmetry,
                          policy=_supervisor_policy(args),
                          journal=journal,
                          schedule=args.schedule,
                          batch_size=args.batch_size)
    _note_ledger(args, protocol=protocol.name, fingerprint=fingerprint,
                 verdict={
                     "all_self_stabilizing": result.all_self_stabilizing,
                     "failing_sizes": list(result.failing_sizes),
                     "sizes": list(result.sizes),
                 },
                 stats=result.stats)
    print(f"== per-size sweep of {protocol.name} ==")
    print(result.summary())
    if journal is not None:
        print(journal.stats.summary(), file=sys.stderr)
    if cache is not None:
        print(cache.stats.summary())
    return 0 if result.all_self_stabilizing else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.randomgen import audit_theorems

    cache = _engine_cache(args)
    report = audit_theorems(samples=args.samples,
                            max_ring_size=args.max_ring_size,
                            seed=args.seed,
                            jobs=args.jobs, cache=cache,
                            policy=_supervisor_policy(args),
                            schedule=args.schedule,
                            batch_size=args.batch_size)
    _note_ledger(args,
                 verdict={"clean": report.clean,
                          "discrepancies": len(report.discrepancies)},
                 stats=report.stats)
    print(report.summary())
    _print_stats(report.stats, cache)
    for discrepancy in report.discrepancies:
        print(f"  {discrepancy.kind} at K={discrepancy.ring_size}:")
        print("    " + discrepancy.protocol_listing.replace("\n",
                                                            "\n    "))
    return 0 if report.clean else 1


def _cmd_check(args: argparse.Namespace) -> int:
    protocol = _resolve_protocol(args.protocol)
    cache = _engine_cache(args)
    report = None
    if cache is not None:
        from repro.checker.sweep import _sweep_key

        key = _sweep_key(protocol, args.ring_size,
                         symmetry=args.symmetry)
        report = cache.get(key)
    if report is None:
        policy = _supervisor_policy(args)
        if policy is not None:
            # One supervised work item: the check gets the same
            # timeout/retry/degradation ladder as a sweep of one size.
            from repro.checker.sweep import (
                _sweep_fallback_worker,
                _sweep_worker,
            )
            from repro.engine import supervise_work_items

            [(report, _elapsed)] = supervise_work_items(
                _sweep_worker, [args.ring_size], jobs=1,
                context=(protocol, args.backend, args.symmetry),
                policy=policy,
                fallback_worker=_sweep_fallback_worker,
                schedule=args.schedule,
                batch_size=args.batch_size)
        else:
            report = check_instance(
                protocol.instantiate(args.ring_size),
                backend=args.backend, symmetry=args.symmetry)
        if cache is not None:
            cache.put(key, report)
    from repro.engine.fingerprint import protocol_fingerprint

    _note_ledger(args, protocol=protocol.name,
                 fingerprint=protocol_fingerprint(protocol),
                 verdict={"self_stabilizing": report.self_stabilizing,
                          "ring_size": args.ring_size},
                 stats=getattr(report, "stats", None))
    if args.json:
        from repro.serialization import global_report_to_dict

        print(json.dumps(global_report_to_dict(report), indent=2))
        return 0 if report.self_stabilizing else 1
    print(f"== global model checking of {protocol.name} ==")
    print(report.summary())
    _print_stats(getattr(report, "stats", None), cache)
    return 0 if report.self_stabilizing else 1


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.core.synthesis import synthesis_fingerprint

    protocol = get_protocol(args.protocol)
    _annotate_protocol(protocol)
    cache = _engine_cache(args)
    fingerprint = synthesis_fingerprint(protocol, args.max_ring_size)
    journal = _run_journal(args, fingerprint)
    result = synthesize_convergence(protocol,
                                    max_ring_size=args.max_ring_size,
                                    backend=args.backend,
                                    jobs=args.jobs, cache=cache,
                                    policy=_supervisor_policy(args),
                                    journal=journal,
                                    schedule=args.schedule,
                                    batch_size=args.batch_size,
                                    search=args.search)
    _note_ledger(args, protocol=protocol.name, fingerprint=fingerprint,
                 verdict={"succeeded": result.succeeded},
                 stats=result.stats)
    print(f"== synthesis for {protocol.name} ==")
    print(result.summary())
    if result.succeeded and result.protocol is not None:
        print()
        print(result.protocol.pretty())
    if journal is not None:
        print(journal.stats.summary(), file=sys.stderr)
    _print_stats(result.stats, cache)
    return 0 if result.succeeded else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import export, validate

    if args.validate:
        return validate.main(list(args.files))
    status = 0
    for path in args.files:
        if str(path).endswith(".jsonl"):
            print(export.render_report(export.load_run_log(path)))
        else:
            try:
                counts = validate.validate_chrome_trace(path)
            except (OSError, validate.ValidationError) as exc:
                print(f"invalid trace {path}: {exc}", file=sys.stderr)
                status = 1
            else:
                print(f"chrome trace {path}: {counts['X']} spans, "
                      f"{counts['M']} metadata events")
    return status


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect (or clear) the two on-disk layers under the cache root:
    pickled result entries and mmap-attachable artifact files."""
    from repro.engine import DEFAULT_CACHE_DIR
    from repro.engine.cache import ENTRY_SUFFIX

    root = Path(args.cache_dir or DEFAULT_CACHE_DIR)
    art_root = root / artifact_plane.DEFAULT_SUBDIR
    if args.clear:
        removed = artifact_plane.enforce_directory_limit(
            root, 0, suffix=(ENTRY_SUFFIX,
                             artifact_plane.ARTIFACT_SUFFIX))
        print(f"cleared {removed} entries under {root}")
        return 0

    results = list(artifact_plane._iter_files(root, ENTRY_SUFFIX))
    result_bytes = artifact_plane.directory_bytes(root,
                                                  suffix=ENTRY_SUFFIX)
    artifacts = list(artifact_plane._iter_files(
        art_root, artifact_plane.ARTIFACT_SUFFIX))
    artifact_bytes = artifact_plane.directory_bytes(
        art_root, suffix=artifact_plane.ARTIFACT_SUFFIX)
    valid = 0
    for path in artifacts:
        try:
            artifact_plane.attach_artifact(path).close()
            valid += 1
        except (artifact_plane.ArtifactFormatError, OSError, ValueError):
            pass
    limit = _cache_limit_bytes(args)
    print(f"cache root: {root}")
    print(f"  results:   {len(results)} entries, "
          f"{result_bytes / 2**20:.1f} MiB")
    line = (f"  artifacts: {len(artifacts)} files, "
            f"{artifact_bytes / 2**20:.1f} MiB")
    if artifacts:
        line += (f" ({valid} valid"
                 + (f", {len(artifacts) - valid} corrupt" if
                    valid != len(artifacts) else "")
                 + ")")
    print(line)
    total = result_bytes + artifact_bytes
    budget = ("unbounded" if limit is None
              else f"{total / limit:.0%} of {limit >> 20} MiB cap")
    print(f"  total:     {total / 2**20:.1f} MiB ({budget})")
    print("  (hit/miss rates are per-run; see the engine summary each "
          "command prints, or 'repro report' on a --log-json file)")
    return 0


def _cmd_ps(args: argparse.Namespace) -> int:
    """List runs publishing (or having published) live snapshots."""
    from repro.engine.journal import runs_root
    from repro.obs import live as live_mod

    statuses = live_mod.scan_runs(runs_root(args.cache_dir))
    if args.json:
        print(json.dumps(statuses, indent=2, default=str))
        return 0
    print(live_mod.render_ps(statuses))
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    """Render one run's live snapshot (optionally refreshing)."""
    from repro.engine.journal import runs_root
    from repro.obs import live as live_mod

    root = runs_root(args.cache_dir)
    directory = root / args.run_id
    status = live_mod.load_status(directory)
    if status is None:
        known = ", ".join(
            s.get("run_id", "?") for s in live_mod.scan_runs(root))
        print(f"error: no status snapshot for run {args.run_id!r} "
              f"(runs with snapshots: {known or 'none'})",
              file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(status, indent=2, default=str))
        return 0
    if args.once or not args.follow:
        print(live_mod.render_top(status))
        return 0
    try:
        while True:
            sys.stdout.write("\x1b[H\x1b[2J"
                             + live_mod.render_top(status) + "\n")
            sys.stdout.flush()
            if live_mod.liveness(status) != "live":
                return 0
            time.sleep(args.interval)
            status = live_mod.load_status(directory) or status
    except KeyboardInterrupt:
        return 0


def _load_ledger(args: argparse.Namespace):
    from repro.engine import DEFAULT_CACHE_DIR
    from repro.obs import ledger as ledger_mod

    path = ledger_mod.ledger_path(args.cache_dir or DEFAULT_CACHE_DIR)
    records, skipped = ledger_mod.load(path)
    return ledger_mod, records, skipped


def _cmd_runs_list(args: argparse.Namespace) -> int:
    ledger_mod, records, skipped = _load_ledger(args)
    if args.json:
        print(json.dumps(records, indent=2, default=str))
        return 0
    print(ledger_mod.render_list(records, skipped))
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    ledger_mod, records, _skipped = _load_ledger(args)
    record = ledger_mod.find_run(records, args.run_id)
    if record is None:
        print(f"error: no ledger record for run {args.run_id!r}",
              file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_runs_diff(args: argparse.Namespace) -> int:
    """Exit 0 = no regressions, 1 = regressions, 2 = unusable input."""
    ledger_mod, records, _skipped = _load_ledger(args)
    candidate = ledger_mod.find_run(records, args.candidate)
    if candidate is None:
        print(f"error: no ledger record for run {args.candidate!r}",
              file=sys.stderr)
        return 2
    if args.baseline is not None:
        baseline = ledger_mod.find_run(records, args.baseline)
        if baseline is None:
            print(f"error: no ledger record for baseline "
                  f"{args.baseline!r}", file=sys.stderr)
            return 2
    else:
        baseline = ledger_mod.latest_matching(records, candidate)
        if baseline is None:
            print(f"error: no earlier run matches {args.candidate!r}'s "
                  "identity (command + fingerprint + flags); name a "
                  "baseline explicitly", file=sys.stderr)
            return 2
    result = ledger_mod.diff(candidate, baseline,
                             threshold=args.threshold)
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(ledger_mod.render_diff(result))
    return 1 if result["regressions"] else 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    protocol = get_protocol(args.protocol)
    instance = protocol.instantiate(args.ring_size)
    stats = convergence_study(instance, samples=args.samples,
                              seed=args.seed)
    print(f"== simulation of {protocol.name} ==")
    print(stats.summary())
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    from repro.core.rcg import build_rcg
    from repro.protocols import (
        generalizable_matching,
        matching_base,
        nongeneralizable_matching,
        three_coloring,
    )
    from repro.protocols.agreement import agreement
    from repro.protocols.sum_not_two import sum_not_two

    jobs = []
    base = matching_base()
    jobs.append(("fig01_rcg_matching.dot", rcg_to_dot(
        build_rcg(base.space), base.legitimate_states(),
        title="Fig. 1: RCG of maximal matching")))
    ex42 = generalizable_matching()
    jobs.append(("fig02_ex42_deadlock_rcg.dot", rcg_to_dot(
        DeadlockAnalyzer(ex42).analyze().induced_rcg,
        ex42.legitimate_states(),
        title="Fig. 2: RCG over local deadlocks of Example 4.2")))
    ex43 = nongeneralizable_matching()
    jobs.append(("fig03_ex43_deadlock_rcg.dot", rcg_to_dot(
        DeadlockAnalyzer(ex43).analyze().induced_rcg,
        ex43.legitimate_states(),
        title="Fig. 3: RCG over local deadlocks of Example 4.3")))
    jobs.append(("fig04_ltg_ex42.dot", ltg_to_dot(
        build_ltg(ex42.space), ex42.legitimate_states(),
        title="Fig. 4: LTG of Example 4.2")))
    for name, protocol in [("fig09_ltg_3coloring.dot", three_coloring()),
                           ("fig10_ltg_agreement.dot", agreement()),
                           ("fig12_ltg_sum_not_two.dot", sum_not_two())]:
        synthesized = synthesize_convergence(protocol)
        target = (synthesized.protocol if synthesized.protocol is not None
                  else protocol)
        jobs.append((name, ltg_to_dot(
            build_ltg(target.space), target.legitimate_states(),
            title=name.removesuffix(".dot"))))
    for filename, dot in jobs:
        (out / filename).write_text(dot)
        print(f"wrote {out / filename}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Verification and synthesis of self-stabilizing "
                    "parameterized ring protocols (Farahat & Ebnenasir, "
                    "ICDCS 2012).")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list bundled protocols") \
        .set_defaults(func=_cmd_list)

    show = sub.add_parser("show", help="print a protocol's guarded "
                                       "commands")
    show.add_argument("protocol")
    show.set_defaults(func=_cmd_show)

    verify = sub.add_parser("verify", help="parameterized verification "
                                           "(all ring sizes)")
    verify.add_argument("protocol")
    verify.add_argument("--max-ring-size", type=int, default=9,
                        help="bound for the contiguous-trail sweep")
    verify.add_argument("--max-sizes", type=int, default=20,
                        help="horizon for deadlocked-size prediction")
    verify.add_argument("--json", action="store_true",
                        help="emit the report as JSON")
    verify.add_argument(
        "--backend", choices=("auto", "kernel", "naive"), default="auto",
        help="contiguous-trail engine: the compiled bitmask "
             "local-reasoning kernel (default) or the naive Digraph "
             "reference searcher")
    _add_engine_options(verify)
    _add_supervisor_options(verify)
    _add_obs_options(verify)
    verify.set_defaults(func=_cmd_verify)

    chain = sub.add_parser("chain", help="exact chain-topology "
                                         "verification / synthesis "
                                         "('chain list' to enumerate)")
    chain.add_argument("protocol")
    chain.add_argument("--synthesize", action="store_true")
    chain.set_defaults(func=_cmd_chain)

    hybrid = sub.add_parser("hybrid", help="local certificates refined "
                                           "by bounded global checking")
    hybrid.add_argument("protocol")
    hybrid.add_argument("--max-ring-size", type=int, default=9)
    hybrid.add_argument("--check-up-to", type=int, default=7,
                        help="largest ring size to model-check")
    _add_backend_options(hybrid)
    hybrid.set_defaults(func=_cmd_hybrid)

    sweep = sub.add_parser("sweep", help="cutoff-style per-size "
                                         "verification baseline")
    sweep.add_argument("protocol")
    sweep.add_argument("--up-to", type=int, default=7)
    sweep.add_argument("--stop-on-failure", action="store_true")
    _add_engine_options(sweep)
    _add_backend_options(sweep)
    _add_supervisor_options(sweep, resume=True)
    _add_obs_options(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    fuzz = sub.add_parser("fuzz", help="random-protocol audit of the "
                                       "theorems against brute force")
    fuzz.add_argument("--samples", type=int, default=50)
    fuzz.add_argument("--max-ring-size", type=int, default=5)
    fuzz.add_argument("--seed", type=int, default=0)
    _add_engine_options(fuzz)
    _add_supervisor_options(fuzz)
    _add_obs_options(fuzz)
    fuzz.set_defaults(func=_cmd_fuzz)

    check = sub.add_parser("check", help="global model checking at one K")
    check.add_argument("protocol")
    check.add_argument("-K", "--ring-size", type=int, required=True)
    check.add_argument("--json", action="store_true",
                       help="emit the report as JSON")
    check.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="accepted for symmetry with sweep/fuzz; a "
                            "single instance is a single work item")
    _add_engine_options(check, jobs=False)
    _add_backend_options(check)
    _add_supervisor_options(check)
    _add_obs_options(check)
    check.set_defaults(func=_cmd_check)

    export = sub.add_parser("export", help="save a bundled protocol as "
                                           "a JSON file")
    export.add_argument("protocol")
    export.add_argument("-o", "--out", required=True)
    export.set_defaults(func=_cmd_export)

    synth = sub.add_parser("synthesize", help="Section 6 synthesis "
                                              "methodology")
    synth.add_argument("protocol")
    synth.add_argument("--max-ring-size", type=int, default=9)
    synth.add_argument(
        "--backend", choices=("auto", "kernel", "naive"), default="auto",
        help="candidate-evaluation engine: the compiled bitmask "
             "local-reasoning kernel (default) or the naive Digraph "
             "reference pipeline")
    synth.add_argument(
        "--search", choices=("lattice", "flat"), default="lattice",
        help="candidate enumeration strategy: the incremental "
             "lattice walk with monotone up-set pruning and delta "
             "trail search (default; kernel backend only) or the "
             "flat per-combo oracle every verdict is differentially "
             "checked against in CI")
    _add_engine_options(synth)
    _add_supervisor_options(synth, resume=True)
    _add_obs_options(synth)
    synth.set_defaults(func=_cmd_synthesize)

    simulate = sub.add_parser("simulate", help="random-daemon convergence "
                                               "study")
    simulate.add_argument("protocol")
    simulate.add_argument("-K", "--ring-size", type=int, required=True)
    simulate.add_argument("--samples", type=int, default=200)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(func=_cmd_simulate)

    figures = sub.add_parser("figures", help="emit DOT files for the "
                                             "paper's figures")
    figures.add_argument("--out", default="figures")
    figures.set_defaults(func=_cmd_figures)

    cache = sub.add_parser("cache", help="inspect or clear the on-disk "
                                         "result cache and artifact "
                                         "store")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: .repro-cache/)")
    cache.add_argument("--cache-limit", type=int, default=1024,
                       metavar="MIB",
                       help="cap to report utilisation against "
                            "(default: 1024; 0 = unbounded)")
    cache.add_argument("--clear", action="store_true",
                       help="delete every result entry and artifact "
                            "file under the cache root (journals under "
                            "runs/ are kept)")
    cache.set_defaults(func=_cmd_cache)

    ps = sub.add_parser("ps", help="list runs publishing live status "
                                   "snapshots (running, finished, or "
                                   "killed)")
    ps.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="cache directory (default: .repro-cache/)")
    ps.add_argument("--json", action="store_true",
                    help="emit the raw snapshots as JSON")
    ps.set_defaults(func=_cmd_ps)

    top = sub.add_parser("top", help="live view of one run's progress, "
                                     "workers and cache hit rates")
    top.add_argument("run_id", metavar="RUN-ID",
                     help="a run id from 'repro ps'")
    top.add_argument("--cache-dir", default=None, metavar="DIR",
                     help="cache directory (default: .repro-cache/)")
    top.add_argument("--follow", action="store_true",
                     help="refresh the view until the run leaves the "
                          "'live' state (Ctrl-C to stop)")
    top.add_argument("--once", action="store_true",
                     help="render a single snapshot and exit (the "
                          "default; overrides --follow)")
    top.add_argument("--json", action="store_true",
                     help="print the raw snapshot JSON once (for "
                          "scripting; implies --once)")
    top.add_argument("--interval", type=float, default=1.0,
                     metavar="SECONDS",
                     help="--follow refresh period (default: 1.0)")
    top.set_defaults(func=_cmd_top)

    runs = sub.add_parser("runs", help="cross-run ledger: list, show "
                                       "and diff finished runs")
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="all ledger records, "
                                                 "newest first")
    runs_list.set_defaults(func=_cmd_runs_list)
    runs_show = runs_sub.add_parser("show", help="one run's full "
                                                 "ledger record")
    runs_show.add_argument("run_id", metavar="RUN-ID")
    runs_show.set_defaults(func=_cmd_runs_show)
    runs_diff = runs_sub.add_parser(
        "diff", help="flag verdict/timing/health regressions of a run "
                     "against a baseline (exit 1 when any are found)")
    runs_diff.add_argument("candidate", metavar="RUN-ID")
    runs_diff.add_argument("baseline", nargs="?", default=None,
                           metavar="BASELINE-ID",
                           help="baseline run id (default: the latest "
                                "earlier run with the same command, "
                                "fingerprint and flags)")
    runs_diff.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="relative growth beyond which a timing is a regression "
             "(default: 0.25)")
    runs_diff.set_defaults(func=_cmd_runs_diff)
    for runs_parser in (runs_list, runs_show, runs_diff):
        runs_parser.add_argument("--cache-dir", default=None,
                                 metavar="DIR",
                                 help="cache directory (default: "
                                      ".repro-cache/)")
        runs_parser.add_argument("--json", action="store_true",
                                 help="emit JSON instead of the table")

    report = sub.add_parser("report", help="render or validate "
                                           "observability artifacts "
                                           "(--trace / --log-json files)")
    report.add_argument("files", nargs="+", metavar="FILE",
                        help=".jsonl run logs are rendered as a span "
                             "tree; other files are checked as Chrome "
                             "traces")
    report.add_argument("--validate", action="store_true",
                        help="schema-validate the artifacts instead of "
                             "rendering (CI mode; nonzero exit on any "
                             "invalid file)")
    report.set_defaults(func=_cmd_report)

    return parser


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, inside an observability run when the
    ``--trace`` / ``--log-json`` flags ask for one (trace files are
    written even when the command fails), inside the ambient artifact
    plane when ``--artifacts`` resolves to a store, and inside the
    ambient live plane unless ``--no-live``.  The final verdict and
    counters of a ledger-worthy command are appended to the cross-run
    ledger on the way out (``--no-ledger`` opts out)."""
    trace = getattr(args, "trace", None)
    log_json = getattr(args, "log_json", None)
    if hasattr(args, "live"):
        from repro.engine.journal import new_run_id
        from repro.engine.pool import reset_fallback_warnings

        # One identity per command invocation, shared by the live
        # plane, the checkpoint journal and the ledger record.
        args.live_run_id = (getattr(args, "resume", None)
                            or getattr(args, "run_id", None)
                            or new_run_id())
        reset_fallback_warnings()
    started = time.time()
    clock = time.perf_counter()
    with _artifact_store(args), _live_plane(args) as live_run:
        try:
            if not trace and not log_json:
                code = args.func(args)
            else:
                code = _dispatch_traced(args, trace, log_json)
        except BaseException:
            if live_run is not None:
                live_run.finish(state="failed")
            raise
        if live_run is not None:
            live_run.finish(state="finished", exit_status=code)
        _record_ledger(args, code, time.perf_counter() - clock,
                       started, live_run)
        return code


def _dispatch_traced(args: argparse.Namespace, trace: str | None,
                     log_json: str | None) -> int:
    from repro.obs import export

    attrs = {"command": args.command}
    if getattr(args, "live_run_id", None):
        attrs["run_id"] = args.live_run_id
    run_ctx = None
    try:
        with obs.run(f"repro {args.command}", **attrs) as run_ctx:
            return args.func(args)
    finally:
        if run_ctx is not None:
            if trace:
                export.write_chrome_trace(trace, run_ctx)
                print(f"wrote Chrome trace: {trace}", file=sys.stderr)
            if log_json:
                export.write_run_log(log_json, run_ctx)
                print(f"wrote run log: {log_json}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
