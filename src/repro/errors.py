"""Exception hierarchy for the library.

All errors raised by :mod:`repro` derive from :class:`ReproError`, so a
caller can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ProtocolDefinitionError(ReproError):
    """A protocol, process template or invariant is ill-formed."""


class DslSyntaxError(ProtocolDefinitionError):
    """A guarded-command DSL string could not be parsed."""


class DslNameError(ProtocolDefinitionError):
    """A DSL expression references an unknown variable or offset."""


class DomainError(ProtocolDefinitionError):
    """A statement assigned a value outside the variable's domain."""


class TopologyError(ReproError):
    """An analysis was applied to an unsupported topology.

    For example, the livelock certificate of Theorem 5.14 requires a
    unidirectional ring (or, on bidirectional rings, only certifies absence
    of *contiguous* livelocks).
    """


class AssumptionViolation(ReproError):
    """A protocol violates an assumption of the analysis being run.

    Section 5 requires self-terminating processes and self-disabling actions
    (Assumption 1 and 2); analyses that rely on them refuse to run
    otherwise — use
    :func:`repro.core.selfdisabling.make_self_disabling` first.
    """


class SynthesisFailure(ReproError):
    """The synthesis methodology declared failure (Section 6, step 5)."""


class VerificationError(ReproError):
    """A requested verification could not be carried out."""
