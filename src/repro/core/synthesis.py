"""Automated addition of convergence (Section 6 methodology).

Given a (possibly empty) non-stabilizing protocol ``p`` and a locally
conjunctive invariant closed in ``p``, the synthesizer follows the paper's
five steps, entirely in the local state space:

1. compute the local deadlocks and the RCG induced over them;
2. pick ``Resolve`` — a minimal feedback vertex set of that graph drawn
   from ``¬LC_r``, so that resolving those deadlocks leaves no cycle
   through an illegitimate local deadlock (Theorem 4.2 ⇒ deadlock-freedom
   for every K);
3. enumerate ``Candidates_r`` — local transitions out of each Resolve
   state into a non-Resolve local deadlock (hence self-disabling);
4. try candidate combinations with **no** pseudo-livelock (*NPL*): accept
   immediately by Theorem 5.14;
5. otherwise accept a combination whose pseudo-livelocks form **no**
   contiguous trail through an illegitimate state (*PL*); if every
   combination of every Resolve set fails, declare failure.

The output protocol ``p_ss`` adds the chosen recovery actions to ``p``;
since every added action fires only in an illegitimate local deadlock,
``I`` and ``Δ_p|I`` are untouched (Problem 3.1's constraints).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.pseudolivelock import (
    SupportExplosion,
    pseudo_livelock_supports,
)
from repro.core.selfdisabling import (
    action_for_transition,
    local_transition_graph,
)
from repro.engine import EngineStats, ResultCache, analysis_key, \
    supervise_work_items
from repro.engine.journal import RunJournal
from repro.engine.supervisor import SupervisorPolicy
from repro.errors import SynthesisFailure
from repro.graphs import has_cycle
from repro.graphs.fvs import FvsStats
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class SynthesisOutcome(enum.Enum):
    """How the methodology concluded."""

    SUCCESS_NPL = "success-no-pseudo-livelock"
    """Accepted at step 4: the combination has no pseudo-livelock."""

    SUCCESS_PL = "success-pseudo-livelocks-without-trails"
    """Accepted at step 5: pseudo-livelocks exist but none forms a
    contiguous trail."""

    ALREADY_STABILIZING = "already-stabilizing"
    """The input protocol needed no new transitions."""

    FAILURE = "failure"
    """Every candidate combination of every Resolve set was rejected
    (the paper's "declare failure" — the sufficient livelock condition
    could not be established; a stabilizing protocol may still exist)."""


@dataclass(frozen=True)
class RejectedCombination:
    """Diagnostic record of one rejected candidate combination."""

    transitions: tuple[LocalTransition, ...]
    reason: str


@dataclass
class SynthesisResult:
    """Everything the synthesizer found out.

    ``protocol`` is the synthesized ``p_ss`` on success, else ``None``.
    """

    outcome: SynthesisOutcome
    protocol: "RingProtocol | None"
    resolve: frozenset[LocalState]
    candidates: dict[LocalState, tuple[LocalTransition, ...]]
    chosen: tuple[LocalTransition, ...]
    rejected: tuple[RejectedCombination, ...] = ()
    resolve_sets_tried: tuple[frozenset[LocalState], ...] = ()
    stats: EngineStats | None = field(default=None, compare=False)
    """Engine instrumentation for this run (excluded from equality)."""

    @property
    def succeeded(self) -> bool:
        return self.outcome in (SynthesisOutcome.SUCCESS_NPL,
                                SynthesisOutcome.SUCCESS_PL,
                                SynthesisOutcome.ALREADY_STABILIZING)

    def summary(self) -> str:
        lines = [f"outcome: {self.outcome.value}"]
        lines.append("Resolve = {"
                     + ", ".join(str(s) for s in sorted(self.resolve)) + "}")
        if self.chosen:
            lines.append("added transitions:")
            for transition in self.chosen:
                lines.append(f"  {transition}")
        if self.rejected:
            lines.append(f"rejected combinations: {len(self.rejected)}")
            for rejection in self.rejected[:8]:
                arcs = ", ".join(str(t) for t in rejection.transitions)
                lines.append(f"  [{arcs}] -- {rejection.reason}")
        return "\n".join(lines)


def _combo_verdict_worker(synthesizer: "Synthesizer",
                          combo) -> str | None:
    """Module-level worker for :func:`repro.engine.run_work_items`."""
    return synthesizer._evaluate_verdict(combo)


class Synthesizer:
    """Implements the Section 6.1 methodology for a ring protocol.

    *backend* selects how candidate combinations are judged:
    ``"kernel"`` (the default behind ``"auto"``) evaluates each
    combination against the base protocol's compiled local kernel —
    merged transition set, assumption checks and pseudo-livelock
    supports computed without materializing the extended protocol, and
    every trail search sharing one set of ``(K, |E|)`` skeletons and
    one support memo.  ``"naive"`` materializes every candidate and
    runs the reference :class:`LivelockCertifier` over the per-query
    ``Digraph`` searcher.  Verdicts are identical (the differential
    suite pins this).

    Combination verdicts are additionally memoized on the combination's
    transition set — permuted enumerations never re-search — and, with
    *cache*, persisted across runs keyed on the protocol fingerprint.
    ``jobs > 1`` fans un-memoized combinations out over worker
    processes in deterministic batches, so results and the
    :class:`RejectedCombination` log are identical for every jobs
    value.
    """

    def __init__(self, protocol: "RingProtocol",
                 max_ring_size: int = 9,
                 max_resolve_sets: int = 16,
                 max_combinations: int = 4096,
                 stop_at_first: bool = True,
                 accept_contiguous_only: bool = False,
                 backend: str = "auto",
                 jobs: int = 1,
                 cache: ResultCache | None = None,
                 policy: SupervisorPolicy | None = None,
                 journal: RunJournal | None = None,
                 schedule: str = "auto",
                 batch_size: int | None = None,
                 search: str = "lattice",
                 fault_plan=None) -> None:
        resolved = "kernel" if backend == "auto" else backend
        if resolved not in ("kernel", "naive"):
            raise ValueError(f"unknown synthesis backend {backend!r}")
        if search not in ("lattice", "flat"):
            raise ValueError(f"unknown synthesis search {search!r}")
        self.protocol = protocol
        self.max_ring_size = max_ring_size
        self.max_resolve_sets = max_resolve_sets
        self.max_combinations = max_combinations
        self.stop_at_first = stop_at_first
        self.accept_contiguous_only = accept_contiguous_only
        """On bidirectional rings Theorem 5.14 only excludes contiguous
        livelocks; by default such certificates are NOT accepted as
        synthesis evidence (the paper's methodology is stated for
        unidirectional rings).  Set True to accept them knowingly."""
        self.backend = resolved
        self.jobs = jobs
        self.cache = cache
        self.policy = policy
        self.journal = journal
        """Checkpoints each combination verdict durably; a resumed run
        (same protocol, same ``--run-id``) answers already-judged
        combinations from the journal instead of re-searching."""
        self.schedule = schedule
        self.batch_size = batch_size
        self.fault_plan = fault_plan
        """Deterministic fault injection
        (:class:`repro.engine.supervisor.FaultPlan`) for the property
        harness — sabotages supervised work-unit attempts, exactly as
        in :func:`repro.checker.sweep.sweep_verify`."""
        self.stats = EngineStats(jobs=jobs)
        self._verdict_memo: dict[frozenset[LocalTransition],
                                 str | None] = {}
        self._kernel = None
        self._kernel_base = None
        self._lattice = None
        if resolved == "kernel":
            from repro.engine.localkernel import local_kernel_for

            self._kernel = local_kernel_for(protocol)
            self._kernel_base = self._kernel.stats.snapshot()
            self._base_transitions = tuple(protocol.space.transitions)
            self._base_deadlocks = frozenset(protocol.space.deadlocks())
        self.search = search if resolved == "kernel" else "flat"
        """Combination search strategy: ``"lattice"`` (the default)
        walks the candidate lattice incrementally
        (:mod:`repro.engine.synthsearch`) with verdicts byte-identical
        to ``"flat"``, which re-judges every combination from scratch
        and is kept as the differential oracle.  The naive backend has
        no kernel to delta against and always searches flat."""

    # ------------------------------------------------------------------
    def candidate_transitions(
            self, resolve: frozenset[LocalState],
    ) -> dict[LocalState, tuple[LocalTransition, ...]]:
        """Step 3: candidate t-arcs out of each Resolve state.

        A candidate ``(s, s')`` rewrites the owned cell of ``s`` and lands
        in a local deadlock outside Resolve, so the revised protocol is
        self-disabling by construction.
        """
        space = self.protocol.space
        deadlocks = set(space.deadlocks())
        candidates: dict[LocalState, tuple[LocalTransition, ...]] = {}
        for state in sorted(resolve):
            options = []
            for cell in space.cells:
                if cell == state.own:
                    continue
                target = state.replace_own(cell)
                if target in resolve or target not in deadlocks:
                    continue
                label = _transition_label(state, target)
                options.append(LocalTransition(state, target, label))
            candidates[state] = tuple(options)
        return candidates

    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Run the methodology; never raises on failure — inspect
        :attr:`SynthesisResult.outcome`."""
        if not self.protocol.unidirectional and \
                not self.accept_contiguous_only:
            return self._finalize(SynthesisResult(
                outcome=SynthesisOutcome.FAILURE,
                protocol=None,
                resolve=frozenset(),
                candidates={},
                chosen=(),
                rejected=(RejectedCombination(
                    (), "bidirectional ring: Theorem 5.14 only excludes "
                        "contiguous livelocks, which is insufficient "
                        "synthesis evidence; pass "
                        "accept_contiguous_only=True to proceed "
                        "anyway"),),
            ))
        analyzer = DeadlockAnalyzer(self.protocol)
        fvs_stats = FvsStats()
        with self.stats.stage("resolve"):
            resolve_sets = analyzer.resolve_candidates(
                max_sets=self.max_resolve_sets, stats=fvs_stats)
        self.stats.absorb_fvs(fvs_stats)
        if not resolve_sets:
            # No subset of ¬LC_r breaks all illegitimate cycles: the
            # deadlock structure itself is unrepairable by local t-arcs.
            return self._finalize(SynthesisResult(
                outcome=SynthesisOutcome.FAILURE,
                protocol=None,
                resolve=frozenset(),
                candidates={},
                chosen=(),
                rejected=(RejectedCombination(
                    (), "no feedback vertex set within ¬LC_r exists"),),
            ))

        all_rejected: list[RejectedCombination] = []
        with self.stats.stage("combinations"):
            for resolve in resolve_sets:
                result = self._try_resolve_set(resolve)
                if result.succeeded:
                    result.rejected = tuple(all_rejected) + result.rejected
                    result.resolve_sets_tried = tuple(resolve_sets)
                    return self._finalize(result)
                all_rejected.extend(result.rejected)

        return self._finalize(SynthesisResult(
            outcome=SynthesisOutcome.FAILURE,
            protocol=None,
            resolve=resolve_sets[0],
            candidates=self.candidate_transitions(resolve_sets[0]),
            chosen=(),
            rejected=tuple(all_rejected),
            resolve_sets_tried=tuple(resolve_sets),
        ))

    def _absorb_kernel(self) -> None:
        """Fold the shared kernel's counter delta into this run's stats.

        The kernel is memoized per protocol, so its counters are
        cumulative across synthesizers; the snapshot taken at
        construction scopes the delta to this instance's work.
        """
        if self._kernel is not None:
            self.stats.absorb_localkernel(
                self._kernel.stats.delta_since(self._kernel_base))
            self._kernel_base = self._kernel.stats.snapshot()

    def _finalize(self, result: SynthesisResult) -> SynthesisResult:
        self._absorb_kernel()
        result.stats = self.stats
        return result

    # ------------------------------------------------------------------
    def evaluate_all_combinations(
            self, resolve: frozenset[LocalState] | None = None,
    ) -> list[tuple[tuple[LocalTransition, ...], str | None]]:
        """Verdicts for **every** candidate combination of one Resolve
        set, in the paper's enumeration style (§6.1 lists all 2³ subsets
        for 3-coloring; §6.2 names the accepted/rejected ones for
        sum-not-two).

        Returns ``(combination, reason)`` pairs where ``reason`` is
        ``None`` for accepted combinations and the rejection diagnosis
        otherwise.  *resolve* defaults to the first minimal Resolve set.
        """
        if resolve is None:
            analyzer = DeadlockAnalyzer(self.protocol)
            candidates_sets = analyzer.resolve_candidates()
            if not candidates_sets:
                return []
            resolve = candidates_sets[0]
        candidates = self.candidate_transitions(resolve)
        if not resolve or any(not opts for opts in candidates.values()):
            return []
        combos = self._enumerate_combinations(candidates)[0]
        verdicts = self._verdicts(combos)
        self._absorb_kernel()
        return list(zip(combos, verdicts))

    # ------------------------------------------------------------------
    def _try_resolve_set(self,
                         resolve: frozenset[LocalState]) -> SynthesisResult:
        candidates = self.candidate_transitions(resolve)
        rejected: list[RejectedCombination] = []

        if not resolve:
            # Already deadlock-free; only the livelock side needs checking.
            verdict = self._livelock_verdict(())
            if verdict is None:
                return SynthesisResult(
                    outcome=SynthesisOutcome.ALREADY_STABILIZING,
                    protocol=self.protocol, resolve=resolve,
                    candidates=candidates, chosen=())
            rejected.append(RejectedCombination((), verdict))
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE, protocol=None,
                resolve=resolve, candidates=candidates, chosen=(),
                rejected=tuple(rejected))

        if any(not options for options in candidates.values()):
            blocked = [s for s, options in candidates.items() if not options]
            rejected.append(RejectedCombination(
                (), f"no candidate t-arc resolves "
                    f"{', '.join(str(s) for s in blocked)}"))
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE, protocol=None,
                resolve=resolve, candidates=candidates, chosen=(),
                rejected=tuple(rejected))

        combos, exhausted = self._enumerate_combinations(candidates)
        batch = 1 if self.jobs <= 1 else max(4 * self.jobs, 8)
        for start in range(0, len(combos), batch):
            chunk = combos[start:start + batch]
            for combo, reason in zip(chunk, self._verdicts(chunk)):
                if reason is None:
                    return self._success(resolve, candidates, combo,
                                         rejected)
                rejected.append(RejectedCombination(combo, reason))
        if exhausted:
            rejected.append(RejectedCombination(
                (), f"combination budget ({self.max_combinations}) "
                    f"exhausted"))

        return SynthesisResult(
            outcome=SynthesisOutcome.FAILURE, protocol=None,
            resolve=resolve, candidates=candidates, chosen=(),
            rejected=tuple(rejected))

    def _enumerate_combinations(
            self, candidates: dict[LocalState, tuple[LocalTransition, ...]],
    ) -> tuple[list[tuple[LocalTransition, ...]], bool]:
        """The deterministic candidate enumeration: ``itertools.product``
        over per-state pools in sorted-state order, truncated at the
        combination budget.  Returns ``(combinations, exhausted)``."""
        pools = [candidates[s] for s in sorted(candidates)]
        combos = [tuple(combo) for combo in itertools.islice(
            itertools.product(*pools), self.max_combinations + 1)]
        exhausted = len(combos) > self.max_combinations
        if exhausted:
            del combos[self.max_combinations:]
        return combos, exhausted

    # ------------------------------------------------------------------
    def _verdicts(self, combos: list[tuple[LocalTransition, ...]],
                  ) -> list[str | None]:
        """Verdicts for *combos*, in order, through the memo / cache /
        pool layers.  The memo key is the combination's transition
        *set*, so permuted enumerations of the same t-arcs are answered
        without another search."""
        reasons: dict[int, str | None] = {}
        pending: list[int] = []
        for position, combo in enumerate(combos):
            key = frozenset(combo)
            if key in self._verdict_memo:
                self.stats.verdict_cache_hits += 1
                reasons[position] = self._verdict_memo[key]
                continue
            if self.cache is not None:
                hit = self.cache.get(self._verdict_key(combo))
                if hit is not None:
                    self.stats.cache_hits += 1
                    self._verdict_memo[key] = hit[0]
                    reasons[position] = hit[0]
                    continue
                self.stats.cache_misses += 1
            if self.journal is not None:
                journal_key = self._verdict_key(combo)
                if journal_key in self.journal.completed:
                    # A prior (interrupted) run already judged this
                    # combination: answer from the journal.
                    reason = self.journal.completed[journal_key]
                    self.stats.supervisor_resumed += 1
                    self._verdict_memo[key] = reason
                    reasons[position] = reason
                    continue
            pending.append(position)
        if pending:
            supervised = (self.policy is not None
                          or self.journal is not None
                          or self.fault_plan is not None
                          or self.schedule == "batch")
            if self.search == "lattice":
                computed = self._lattice_verdicts(
                    [combos[i] for i in pending])
            elif supervised or (self.jobs > 1 and len(pending) > 1):
                keys = ([self._verdict_key(combos[i]) for i in pending]
                        if self.journal is not None else None)
                # No prewarm hook: __init__ already compiled the local
                # kernel in-parent, so workers fork with it hot.
                computed = supervise_work_items(
                    _combo_verdict_worker,
                    [combos[i] for i in pending],
                    jobs=self.jobs, context=self,
                    stats=self.stats, policy=self.policy,
                    journal=self.journal, keys=keys,
                    fallback_worker=_combo_verdict_worker,
                    plan=self.fault_plan,
                    schedule=self.schedule, batch_size=self.batch_size)
            else:
                computed = [self._evaluate_verdict(combos[i])
                            for i in pending]
            self.stats.work_items += len(pending)
            for position, reason in zip(pending, computed):
                self._verdict_memo[frozenset(combos[position])] = reason
                if self.cache is not None:
                    self.cache.put(self._verdict_key(combos[position]),
                                   (reason,))
                reasons[position] = reason
        return [reasons[i] for i in range(len(combos))]

    def _verdict_key(self, combo) -> str:
        # Backend- and search-independent on purpose: every strategy
        # produces the same verdict strings, so cached entries are
        # shared.  The combination is keyed on its canonical t-arc
        # bitmask over local-state indices — distinct combinations
        # whose ``str()`` renderings collide (labels truncate string
        # cell values to their first character) must not share a key.
        space = self.protocol.space
        n = len(space.states)
        mask = 0
        for transition in combo:
            mask |= 1 << (space.index(transition.source) * n
                          + space.index(transition.target))
        return analysis_key(
            "synthesis-verdict", self.protocol,
            max_ring_size=self.max_ring_size,
            accept_contiguous_only=self.accept_contiguous_only,
            combo=f"{mask:x}")

    def _lattice_verdicts(self, combos: list[tuple[LocalTransition, ...]],
                          ) -> list[str | None]:
        """Judge the pending combinations through the incremental
        lattice engine (see :mod:`repro.engine.synthsearch`)."""
        if self._lattice is None:
            from repro.engine.synthsearch import LatticeSearch

            self._lattice = LatticeSearch(self)
        return self._lattice.verdicts(combos)

    # ------------------------------------------------------------------
    def _livelock_verdict(
            self, combo: tuple[LocalTransition, ...]) -> str | None:
        """``None`` when the combination is accepted, else the reason."""
        return self._verdicts([tuple(combo)])[0]

    def _evaluate_verdict(
            self, combo: tuple[LocalTransition, ...]) -> str | None:
        """One un-memoized combination judgement (steps 4/5)."""
        from repro.errors import AssumptionViolation

        if not self.protocol.unidirectional and \
                not self.accept_contiguous_only:
            # Fail fast: on bidirectional rings Theorem 5.14 can only
            # exclude contiguous livelocks, which is not enough evidence
            # for the methodology (stated for unidirectional rings).
            return ("bidirectional ring: Theorem 5.14 only excludes "
                    "contiguous livelocks; pass "
                    "accept_contiguous_only=True to accept such "
                    "certificates anyway")

        if self._kernel is not None:
            return self._kernel_verdict(combo)

        candidate_protocol = self._materialize(combo)
        certifier = LivelockCertifier(candidate_protocol,
                                      max_ring_size=self.max_ring_size,
                                      backend="naive")
        try:
            report = certifier.analyze()
        except AssumptionViolation as violation:
            return str(violation)
        if report.verdict is LivelockVerdict.CERTIFIED_FREE:
            return None
        if not report.trail_witnesses:
            # Support enumeration overflowed (SupportExplosion): the
            # conservative UNKNOWN carries the reason in its note.
            return report.note
        witness = report.trail_witnesses[0]
        return (f"pseudo-livelock {{"
                + ", ".join(sorted(t.label or str(t) for t in witness.t_arcs))
                + f"}} forms a contiguous trail (K={witness.ring_size}, "
                  f"|E|={witness.enablements})")

    def _kernel_verdict(
            self, combo: tuple[LocalTransition, ...]) -> str | None:
        """The kernel-backend judgement, without materializing ``p_ss``.

        Candidate sources are base local deadlocks, so the extended
        space's transition set is exactly the base set plus the combo
        (no (source, target) collisions to merge) and a state is an
        extended-space deadlock iff it is a base deadlock that is not a
        combo source.  The trail searches run on the *base* protocol's
        kernel: s-adjacency and legitimacy depend only on the process
        template, never on the transition set.  Every returned string
        is byte-identical to the naive backend's.
        """
        merged = self._base_transitions + tuple(combo)
        name = f"{self.protocol.name}_ss"
        if has_cycle(local_transition_graph(merged)):
            return (f"protocol {name!r} is not self-terminating "
                    f"(Assumption 1)")
        combo_sources = {t.source for t in combo}
        if any(t.target not in self._base_deadlocks
               or t.target in combo_sources for t in merged):
            return (f"protocol {name!r} has self-enabling local "
                    f"transitions (Assumption 2); apply "
                    f"make_self_disabling() first")
        try:
            supports = pseudo_livelock_supports(merged)
        except SupportExplosion as explosion:
            return str(explosion)
        for support in supports:
            witness = self._kernel.find_trail(support, self.max_ring_size)
            if witness is not None:
                return (f"pseudo-livelock {{"
                        + ", ".join(sorted(t.label or str(t)
                                           for t in witness.t_arcs))
                        + f"}} forms a contiguous trail "
                          f"(K={witness.ring_size}, "
                          f"|E|={witness.enablements})")
        return None

    def _materialize(self,
                     combo: Iterable[LocalTransition]) -> "RingProtocol":
        actions = tuple(action_for_transition(t, name=t.label)
                        for t in combo)
        return self.protocol.extended_with(actions)

    def _success(self, resolve, candidates, combo,
                 rejected) -> SynthesisResult:
        from repro.core.pseudolivelock import has_pseudo_livelock

        protocol = self._materialize(combo)
        protocol.name = f"{self.protocol.name}_ss"
        space = protocol.space
        outcome = (SynthesisOutcome.SUCCESS_NPL
                   if not has_pseudo_livelock(space.transitions)
                   else SynthesisOutcome.SUCCESS_PL)
        return SynthesisResult(
            outcome=outcome,
            protocol=protocol,
            resolve=resolve,
            candidates=candidates,
            chosen=tuple(combo),
            rejected=tuple(rejected),
        )


def synthesis_fingerprint(protocol: "RingProtocol",
                          max_ring_size: int = 9,
                          accept_contiguous_only: bool = False) -> str:
    """The identity of one synthesis run for journal pinning: resuming
    a run recorded for a different protocol or parameters is refused."""
    return analysis_key("synthesis", protocol,
                        max_ring_size=max_ring_size,
                        accept_contiguous_only=accept_contiguous_only)


def synthesize_convergence(protocol: "RingProtocol",
                           max_ring_size: int = 9,
                           **kwargs) -> SynthesisResult:
    """Run the Section 6 methodology on *protocol*.

    Raises :class:`SynthesisFailure` when the caller sets
    ``raise_on_failure=True`` and no combination is accepted.
    Supervision keywords (``policy``, ``journal``, ``schedule``,
    ``batch_size``) pass through to :class:`Synthesizer`.
    """
    raise_on_failure = kwargs.pop("raise_on_failure", False)
    synthesizer = Synthesizer(protocol, max_ring_size=max_ring_size,
                              **kwargs)
    result = synthesizer.synthesize()
    if raise_on_failure and not result.succeeded:
        raise SynthesisFailure(
            f"could not synthesize convergence for {protocol.name!r}: "
            f"{len(result.rejected)} combinations rejected")
    return result


def _transition_label(source: LocalState, target: LocalState) -> str:
    def fmt(cell) -> str:
        parts = [str(v)[0] if isinstance(v, str) else str(v) for v in cell]
        return "".join(parts) if len(cell) == 1 else "(" + ",".join(parts) + ")"

    return f"t{fmt(source.own)}{fmt(target.own)}"
