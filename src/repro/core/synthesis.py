"""Automated addition of convergence (Section 6 methodology).

Given a (possibly empty) non-stabilizing protocol ``p`` and a locally
conjunctive invariant closed in ``p``, the synthesizer follows the paper's
five steps, entirely in the local state space:

1. compute the local deadlocks and the RCG induced over them;
2. pick ``Resolve`` — a minimal feedback vertex set of that graph drawn
   from ``¬LC_r``, so that resolving those deadlocks leaves no cycle
   through an illegitimate local deadlock (Theorem 4.2 ⇒ deadlock-freedom
   for every K);
3. enumerate ``Candidates_r`` — local transitions out of each Resolve
   state into a non-Resolve local deadlock (hence self-disabling);
4. try candidate combinations with **no** pseudo-livelock (*NPL*): accept
   immediately by Theorem 5.14;
5. otherwise accept a combination whose pseudo-livelocks form **no**
   contiguous trail through an illegitimate state (*PL*); if every
   combination of every Resolve set fails, declare failure.

The output protocol ``p_ss`` adds the chosen recovery actions to ``p``;
since every added action fires only in an illegitimate local deadlock,
``I`` and ``Δ_p|I`` are untouched (Problem 3.1's constraints).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.deadlock import DeadlockAnalyzer
from repro.core.livelock import LivelockCertifier, LivelockVerdict
from repro.core.selfdisabling import action_for_transition
from repro.errors import SynthesisFailure
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class SynthesisOutcome(enum.Enum):
    """How the methodology concluded."""

    SUCCESS_NPL = "success-no-pseudo-livelock"
    """Accepted at step 4: the combination has no pseudo-livelock."""

    SUCCESS_PL = "success-pseudo-livelocks-without-trails"
    """Accepted at step 5: pseudo-livelocks exist but none forms a
    contiguous trail."""

    ALREADY_STABILIZING = "already-stabilizing"
    """The input protocol needed no new transitions."""

    FAILURE = "failure"
    """Every candidate combination of every Resolve set was rejected
    (the paper's "declare failure" — the sufficient livelock condition
    could not be established; a stabilizing protocol may still exist)."""


@dataclass(frozen=True)
class RejectedCombination:
    """Diagnostic record of one rejected candidate combination."""

    transitions: tuple[LocalTransition, ...]
    reason: str


@dataclass
class SynthesisResult:
    """Everything the synthesizer found out.

    ``protocol`` is the synthesized ``p_ss`` on success, else ``None``.
    """

    outcome: SynthesisOutcome
    protocol: "RingProtocol | None"
    resolve: frozenset[LocalState]
    candidates: dict[LocalState, tuple[LocalTransition, ...]]
    chosen: tuple[LocalTransition, ...]
    rejected: tuple[RejectedCombination, ...] = ()
    resolve_sets_tried: tuple[frozenset[LocalState], ...] = ()

    @property
    def succeeded(self) -> bool:
        return self.outcome in (SynthesisOutcome.SUCCESS_NPL,
                                SynthesisOutcome.SUCCESS_PL,
                                SynthesisOutcome.ALREADY_STABILIZING)

    def summary(self) -> str:
        lines = [f"outcome: {self.outcome.value}"]
        lines.append("Resolve = {"
                     + ", ".join(str(s) for s in sorted(self.resolve)) + "}")
        if self.chosen:
            lines.append("added transitions:")
            for transition in self.chosen:
                lines.append(f"  {transition}")
        if self.rejected:
            lines.append(f"rejected combinations: {len(self.rejected)}")
            for rejection in self.rejected[:8]:
                arcs = ", ".join(str(t) for t in rejection.transitions)
                lines.append(f"  [{arcs}] -- {rejection.reason}")
        return "\n".join(lines)


class Synthesizer:
    """Implements the Section 6.1 methodology for a ring protocol."""

    def __init__(self, protocol: "RingProtocol",
                 max_ring_size: int = 9,
                 max_resolve_sets: int = 16,
                 max_combinations: int = 4096,
                 stop_at_first: bool = True,
                 accept_contiguous_only: bool = False) -> None:
        self.protocol = protocol
        self.max_ring_size = max_ring_size
        self.max_resolve_sets = max_resolve_sets
        self.max_combinations = max_combinations
        self.stop_at_first = stop_at_first
        self.accept_contiguous_only = accept_contiguous_only
        """On bidirectional rings Theorem 5.14 only excludes contiguous
        livelocks; by default such certificates are NOT accepted as
        synthesis evidence (the paper's methodology is stated for
        unidirectional rings).  Set True to accept them knowingly."""

    # ------------------------------------------------------------------
    def candidate_transitions(
            self, resolve: frozenset[LocalState],
    ) -> dict[LocalState, tuple[LocalTransition, ...]]:
        """Step 3: candidate t-arcs out of each Resolve state.

        A candidate ``(s, s')`` rewrites the owned cell of ``s`` and lands
        in a local deadlock outside Resolve, so the revised protocol is
        self-disabling by construction.
        """
        space = self.protocol.space
        deadlocks = set(space.deadlocks())
        candidates: dict[LocalState, tuple[LocalTransition, ...]] = {}
        for state in sorted(resolve):
            options = []
            for cell in space.cells:
                if cell == state.own:
                    continue
                target = state.replace_own(cell)
                if target in resolve or target not in deadlocks:
                    continue
                label = _transition_label(state, target)
                options.append(LocalTransition(state, target, label))
            candidates[state] = tuple(options)
        return candidates

    # ------------------------------------------------------------------
    def synthesize(self) -> SynthesisResult:
        """Run the methodology; never raises on failure — inspect
        :attr:`SynthesisResult.outcome`."""
        if not self.protocol.unidirectional and \
                not self.accept_contiguous_only:
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE,
                protocol=None,
                resolve=frozenset(),
                candidates={},
                chosen=(),
                rejected=(RejectedCombination(
                    (), "bidirectional ring: Theorem 5.14 only excludes "
                        "contiguous livelocks, which is insufficient "
                        "synthesis evidence; pass "
                        "accept_contiguous_only=True to proceed "
                        "anyway"),),
            )
        analyzer = DeadlockAnalyzer(self.protocol)
        resolve_sets = analyzer.resolve_candidates(
            max_sets=self.max_resolve_sets)
        if not resolve_sets:
            # No subset of ¬LC_r breaks all illegitimate cycles: the
            # deadlock structure itself is unrepairable by local t-arcs.
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE,
                protocol=None,
                resolve=frozenset(),
                candidates={},
                chosen=(),
                rejected=(RejectedCombination(
                    (), "no feedback vertex set within ¬LC_r exists"),),
            )

        all_rejected: list[RejectedCombination] = []
        for resolve in resolve_sets:
            result = self._try_resolve_set(resolve)
            if result.succeeded:
                result.rejected = tuple(all_rejected) + result.rejected
                result.resolve_sets_tried = tuple(resolve_sets)
                return result
            all_rejected.extend(result.rejected)

        return SynthesisResult(
            outcome=SynthesisOutcome.FAILURE,
            protocol=None,
            resolve=resolve_sets[0],
            candidates=self.candidate_transitions(resolve_sets[0]),
            chosen=(),
            rejected=tuple(all_rejected),
            resolve_sets_tried=tuple(resolve_sets),
        )

    # ------------------------------------------------------------------
    def evaluate_all_combinations(
            self, resolve: frozenset[LocalState] | None = None,
    ) -> list[tuple[tuple[LocalTransition, ...], str | None]]:
        """Verdicts for **every** candidate combination of one Resolve
        set, in the paper's enumeration style (§6.1 lists all 2³ subsets
        for 3-coloring; §6.2 names the accepted/rejected ones for
        sum-not-two).

        Returns ``(combination, reason)`` pairs where ``reason`` is
        ``None`` for accepted combinations and the rejection diagnosis
        otherwise.  *resolve* defaults to the first minimal Resolve set.
        """
        if resolve is None:
            analyzer = DeadlockAnalyzer(self.protocol)
            candidates_sets = analyzer.resolve_candidates()
            if not candidates_sets:
                return []
            resolve = candidates_sets[0]
        candidates = self.candidate_transitions(resolve)
        if not resolve or any(not opts for opts in candidates.values()):
            return []
        states = sorted(candidates)
        pools = [candidates[s] for s in states]
        verdicts = []
        for count, combo in enumerate(itertools.product(*pools)):
            if count >= self.max_combinations:
                break
            verdicts.append((tuple(combo), self._livelock_verdict(combo)))
        return verdicts

    # ------------------------------------------------------------------
    def _try_resolve_set(self,
                         resolve: frozenset[LocalState]) -> SynthesisResult:
        candidates = self.candidate_transitions(resolve)
        rejected: list[RejectedCombination] = []

        if not resolve:
            # Already deadlock-free; only the livelock side needs checking.
            verdict = self._livelock_verdict(())
            if verdict is None:
                return SynthesisResult(
                    outcome=SynthesisOutcome.ALREADY_STABILIZING,
                    protocol=self.protocol, resolve=resolve,
                    candidates=candidates, chosen=())
            rejected.append(RejectedCombination((), verdict))
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE, protocol=None,
                resolve=resolve, candidates=candidates, chosen=(),
                rejected=tuple(rejected))

        if any(not options for options in candidates.values()):
            blocked = [s for s, options in candidates.items() if not options]
            rejected.append(RejectedCombination(
                (), f"no candidate t-arc resolves "
                    f"{', '.join(str(s) for s in blocked)}"))
            return SynthesisResult(
                outcome=SynthesisOutcome.FAILURE, protocol=None,
                resolve=resolve, candidates=candidates, chosen=(),
                rejected=tuple(rejected))

        states = sorted(candidates)
        pools = [candidates[s] for s in states]
        count = 0
        for combo in itertools.product(*pools):
            count += 1
            if count > self.max_combinations:
                rejected.append(RejectedCombination(
                    (), f"combination budget ({self.max_combinations}) "
                        f"exhausted"))
                break
            reason = self._livelock_verdict(combo)
            if reason is None:
                return self._success(resolve, candidates, combo, rejected)
            rejected.append(RejectedCombination(tuple(combo), reason))

        return SynthesisResult(
            outcome=SynthesisOutcome.FAILURE, protocol=None,
            resolve=resolve, candidates=candidates, chosen=(),
            rejected=tuple(rejected))

    # ------------------------------------------------------------------
    def _livelock_verdict(
            self, combo: tuple[LocalTransition, ...]) -> str | None:
        """``None`` when the combination is accepted, else the reason."""
        from repro.errors import AssumptionViolation

        if not self.protocol.unidirectional and \
                not self.accept_contiguous_only:
            # Fail fast: on bidirectional rings Theorem 5.14 can only
            # exclude contiguous livelocks, which is not enough evidence
            # for the methodology (stated for unidirectional rings).
            return ("bidirectional ring: Theorem 5.14 only excludes "
                    "contiguous livelocks; pass "
                    "accept_contiguous_only=True to accept such "
                    "certificates anyway")

        candidate_protocol = self._materialize(combo)
        certifier = LivelockCertifier(candidate_protocol,
                                      max_ring_size=self.max_ring_size)
        try:
            report = certifier.analyze()
        except AssumptionViolation as violation:
            return str(violation)
        if report.verdict is LivelockVerdict.CERTIFIED_FREE:
            return None
        witness = report.trail_witnesses[0]
        return (f"pseudo-livelock {{"
                + ", ".join(sorted(t.label or str(t) for t in witness.t_arcs))
                + f"}} forms a contiguous trail (K={witness.ring_size}, "
                  f"|E|={witness.enablements})")

    def _materialize(self,
                     combo: Iterable[LocalTransition]) -> "RingProtocol":
        actions = tuple(action_for_transition(t, name=t.label)
                        for t in combo)
        return self.protocol.extended_with(actions)

    def _success(self, resolve, candidates, combo,
                 rejected) -> SynthesisResult:
        from repro.core.pseudolivelock import has_pseudo_livelock

        protocol = self._materialize(combo)
        protocol.name = f"{self.protocol.name}_ss"
        space = protocol.space
        outcome = (SynthesisOutcome.SUCCESS_NPL
                   if not has_pseudo_livelock(space.transitions)
                   else SynthesisOutcome.SUCCESS_PL)
        return SynthesisResult(
            outcome=outcome,
            protocol=protocol,
            resolve=resolve,
            candidates=candidates,
            chosen=tuple(combo),
            rejected=tuple(rejected),
        )


def synthesize_convergence(protocol: "RingProtocol",
                           max_ring_size: int = 9,
                           **kwargs) -> SynthesisResult:
    """Run the Section 6 methodology on *protocol*.

    Raises :class:`SynthesisFailure` when the caller sets
    ``raise_on_failure=True`` and no combination is accepted.
    """
    raise_on_failure = kwargs.pop("raise_on_failure", False)
    synthesizer = Synthesizer(protocol, max_ring_size=max_ring_size,
                              **kwargs)
    result = synthesizer.synthesize()
    if raise_on_failure and not result.succeeded:
        raise SynthesisFailure(
            f"could not synthesize convergence for {protocol.name!r}: "
            f"{len(result.rejected)} combinations rejected")
    return result


def _transition_label(source: LocalState, target: LocalState) -> str:
    def fmt(cell) -> str:
        parts = [str(v)[0] if isinstance(v, str) else str(v) for v in cell]
        return "".join(parts) if len(cell) == 1 else "(" + ",".join(parts) + ")"

    return f"t{fmt(source.own)}{fmt(target.own)}"
