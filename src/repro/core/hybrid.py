"""Hybrid verification: local certificates refined by bounded checking.

Theorem 5.14 is sufficient, not necessary: a contiguous-trail witness may
be *spurious* — the paper demonstrates this for sum-not-two, where the
rejected candidate's (K=3, |E|=2) trail fails to reconstruct into a real
livelock.  This module automates that reconstruction argument:

1. run the parameterized analyses (exact deadlocks + livelock
   certificate);
2. when the livelock side is ``UNKNOWN``, model-check the concrete ring
   sizes up to a bound, classifying each trail witness as **real**
   (a global livelock exists at its parameter family) or **spurious up
   to the bound**;
3. report a refined verdict: a definitive counterexample, a full
   certificate, or "certified deadlock-free + livelock-free for all
   checked sizes" (the best obtainable when sufficiency fails).

The refinement never overclaims: ``BOUNDED`` means exactly what it says.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.checker.livelock import livelock_cycles
from repro.checker.statespace import StateGraph
from repro.core.convergence import (
    ConvergenceReport,
    ConvergenceVerdict,
    verify_convergence,
)
from repro.core.trail import TrailWitness

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class HybridVerdict(enum.Enum):
    """Refined outcome of the hybrid analysis."""

    CONVERGES = "converges"
    """Fully certified for every ring size by the local analyses."""

    DIVERGES_DEADLOCK = "diverges-deadlock"
    """Theorem 4.2 found a deadlock witness (definitive)."""

    DIVERGES_LIVELOCK = "diverges-livelock"
    """A concrete global livelock was found at some checked size
    (definitive counterexample for that size)."""

    BOUNDED = "converges-up-to-bound"
    """Deadlock-free for every K (exact) and livelock-free for every
    checked K; the local livelock certificate could not close the
    remaining gap — every trail witness was spurious up to the bound."""


@dataclass(frozen=True)
class WitnessClassification:
    """How one contiguous-trail witness fared under reconstruction."""

    witness: TrailWitness
    checked_sizes: tuple[int, ...]
    real_at: int | None
    """The smallest checked ring size exhibiting a global livelock, or
    ``None`` when the witness is spurious up to the bound."""

    @property
    def spurious(self) -> bool:
        return self.real_at is None

    def __str__(self) -> str:
        if self.real_at is None:
            checked = ",".join(map(str, self.checked_sizes))
            return f"{self.witness} — spurious (no livelock at K={checked})"
        return f"{self.witness} — REAL at K={self.real_at}"


@dataclass(frozen=True)
class HybridReport:
    """Outcome of :func:`hybrid_verify`."""

    verdict: HybridVerdict
    base: ConvergenceReport
    classifications: tuple[WitnessClassification, ...]
    checked_sizes: tuple[int, ...]
    counterexample: tuple | None
    """A concrete global livelock cycle when the verdict is
    ``DIVERGES_LIVELOCK``."""

    def summary(self) -> str:
        lines = [f"hybrid verdict: {self.verdict.value}"]
        lines.append(self.base.summary())
        if self.checked_sizes:
            lines.append("globally checked sizes: "
                         + ",".join(map(str, self.checked_sizes)))
        for classification in self.classifications:
            lines.append(f"  {classification}")
        if self.counterexample is not None:
            lines.append(f"counterexample livelock "
                         f"({len(self.counterexample)} states)")
        return "\n".join(lines)


def _witness_sizes(witness: TrailWitness, bound: int,
                   minimum: int) -> list[int]:
    """The ring sizes a trail witness indicts, up to *bound*.

    A trail at parameters (K, |E|) recurs at every multiple of its round
    structure; spuriousness must be ruled out at the base size and its
    multiples.
    """
    base = witness.ring_size
    return [size for size in range(max(base, minimum), bound + 1)
            if size % base == 0]


def hybrid_verify(protocol: "RingProtocol",
                  max_ring_size: int = 9,
                  check_up_to: int = 7,
                  backend: str = "auto",
                  symmetry: bool = False) -> HybridReport:
    """Run the local analyses, then refine UNKNOWN livelock verdicts by
    explicit-state checking up to ``check_up_to`` processes.

    The per-size global checks are also used to *find* real livelocks
    that the trail parameters suggest, returning a concrete
    counterexample cycle when one exists.  The bounded checks ride the
    compiled kernel by default (*backend*); with *symmetry* they run on
    the rotation quotient — verdicts and witness classifications are
    unchanged, but a returned counterexample cycle then repeats only up
    to rotation (its states are still genuine global states).
    """
    base = verify_convergence(protocol, max_ring_size=max_ring_size)

    if base.verdict is ConvergenceVerdict.CONVERGES:
        return HybridReport(HybridVerdict.CONVERGES, base, (), (), None)
    if base.verdict is ConvergenceVerdict.DIVERGES:
        return HybridReport(HybridVerdict.DIVERGES_DEADLOCK, base, (),
                            (), None)

    minimum = protocol.process.window_width
    all_sizes = list(range(max(2, minimum), check_up_to + 1))
    cycles_by_size: dict[int, list] = {}
    for size in all_sizes:
        graph = StateGraph(protocol.instantiate(size),
                           backend=backend, symmetry=symmetry)
        cycles_by_size[size] = livelock_cycles(graph, max_cycles=1)

    witnesses = (base.livelock.trail_witnesses
                 if base.livelock is not None else ())
    classifications = []
    for witness in witnesses:
        sizes = _witness_sizes(witness, check_up_to, minimum)
        real_at = next((s for s in sizes if cycles_by_size.get(s)), None)
        classifications.append(WitnessClassification(
            witness=witness, checked_sizes=tuple(sizes),
            real_at=real_at))

    first_real = next((size for size in all_sizes
                       if cycles_by_size[size]), None)
    if first_real is not None:
        return HybridReport(
            verdict=HybridVerdict.DIVERGES_LIVELOCK,
            base=base,
            classifications=tuple(classifications),
            checked_sizes=tuple(all_sizes),
            counterexample=tuple(cycles_by_size[first_real][0]),
        )
    return HybridReport(
        verdict=HybridVerdict.BOUNDED,
        base=base,
        classifications=tuple(classifications),
        checked_sizes=tuple(all_sizes),
        counterexample=None,
    )


@dataclass(frozen=True)
class HybridSynthesisResult:
    """Outcome of :func:`hybrid_synthesize`."""

    local: "object"
    """The :class:`~repro.core.synthesis.SynthesisResult` of the pure
    Section 6 methodology."""
    protocol: "RingProtocol | None"
    guarantee: str
    """``"all-k"`` for a local certificate, ``"bounded"`` when the
    solution was recovered from a rejected combination whose trail
    witnesses are all spurious up to the checked bound, ``"none"`` on
    failure."""
    report: HybridReport | None

    @property
    def succeeded(self) -> bool:
        return self.protocol is not None


def hybrid_synthesize(protocol: "RingProtocol",
                      max_ring_size: int = 9,
                      check_up_to: int = 7) -> HybridSynthesisResult:
    """Section 6 synthesis with a bounded-checking fallback.

    Theorem 5.14's sufficiency gap can reject perfectly good candidate
    combinations (the paper's own sum-not-two walkthrough rejects
    ``{t21, t10, t02}`` over a trail it then shows to be spurious).
    This wrapper first runs the pure local methodology; if it fails,
    each rejected combination is re-examined with :func:`hybrid_verify`,
    and the first one that is deadlock-free for all K *and* livelock-free
    for every checked size is returned with an explicit ``"bounded"``
    guarantee.  Protocols for which every combination has a *real*
    livelock (2-coloring, 3-coloring) still fail.
    """
    from repro.core.selfdisabling import action_for_transition
    from repro.core.synthesis import Synthesizer

    synthesizer = Synthesizer(protocol, max_ring_size=max_ring_size)
    local = synthesizer.synthesize()
    if local.succeeded:
        return HybridSynthesisResult(local=local, protocol=local.protocol,
                                     guarantee="all-k", report=None)

    for rejection in local.rejected:
        if rejection.transitions:
            actions = [action_for_transition(t, t.label or f"h{i}")
                       for i, t in enumerate(rejection.transitions)]
            candidate = protocol.extended_with(actions)
        elif local.resolve == frozenset() and "pseudo-livelock" in \
                rejection.reason:
            # The input itself was deadlock-free but uncertified.
            candidate = protocol
        else:
            continue
        report = hybrid_verify(candidate, max_ring_size=max_ring_size,
                               check_up_to=check_up_to)
        if report.verdict is HybridVerdict.BOUNDED:
            return HybridSynthesisResult(local=local, protocol=candidate,
                                         guarantee="bounded",
                                         report=report)
    return HybridSynthesisResult(local=local, protocol=None,
                                 guarantee="none", report=None)
