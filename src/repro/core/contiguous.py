"""The canonical contiguous-livelock dynamics (Figure 7).

Lemma 5.11 reduces livelock search on unidirectional rings to *contiguous*
livelocks: a global state with ``|E|`` adjacent enabled processes, whose
rightmost enablement alone propagates ``K - |E|`` times until a new block
of ``|E|`` adjacent enablements forms, one position to the left.  Repeating
``K`` rounds rotates the block fully around the ring, opposite to the
propagation direction.

This module models those *enablement dynamics* abstractly (positions only,
no protocol), which is exactly what Figure 7 depicts for ``K=6, |E|=3``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SegmentState:
    """Enabled positions at one point of the contiguous livelock.

    ``block`` is the (still dormant) segment of adjacent enablements and
    ``mover`` the position of the propagating enablement, or ``None``
    while it has been absorbed into a full block.
    """

    ring_size: int
    block_start: int
    block_length: int
    mover: int | None

    @property
    def enabled(self) -> frozenset[int]:
        positions = {(self.block_start + i) % self.ring_size
                     for i in range(self.block_length)}
        if self.mover is not None:
            positions.add(self.mover)
        return frozenset(positions)

    def render(self) -> str:
        """ASCII row in the style of Figure 7, e.g. ``. E E E . .``."""
        marks = []
        enabled = self.enabled
        for position in range(self.ring_size):
            marks.append("E" if position in enabled else ".")
        return " ".join(marks)


class ContiguousLivelockModel:
    """Generates the enablement sequence of a contiguous livelock."""

    def __init__(self, ring_size: int, enablements: int) -> None:
        if not 1 <= enablements < ring_size:
            raise ValueError(
                f"need 1 <= |E| < K, got |E|={enablements}, K={ring_size}")
        self.ring_size = ring_size
        self.enablements = enablements

    def initial(self, block_start: int = 0) -> SegmentState:
        """A full block of adjacent enablements starting at *block_start*."""
        return SegmentState(self.ring_size, block_start,
                            self.enablements, mover=None)

    def step(self, state: SegmentState) -> SegmentState:
        """Propagate the rightmost enablement once.

        On a unidirectional ring, executing the enabled process ``i``
        disables ``i`` and enables ``i+1`` (Lemma 5.2 + Assumption 2).
        """
        k = self.ring_size
        if state.mover is None:
            # Detach the rightmost member of the block.
            rightmost = (state.block_start + state.block_length - 1) % k
            detached = SegmentState(k, state.block_start,
                                    state.block_length - 1,
                                    mover=(rightmost + 1) % k)
            return self._absorb(detached)
        moved = SegmentState(k, state.block_start, state.block_length,
                             mover=(state.mover + 1) % k)
        return self._absorb(moved)

    def _absorb(self, state: SegmentState) -> SegmentState:
        """Merge the mover back into the block when it becomes adjacent on
        the block's *left* (completing one round of Figure 7)."""
        if state.mover is None:
            return state
        if (state.mover + 1) % self.ring_size == state.block_start:
            return SegmentState(self.ring_size, state.mover,
                                state.block_length + 1, mover=None)
        return state

    def run(self, steps: int,
            block_start: int = 0) -> list[SegmentState]:
        """The first *steps* states (inclusive of the initial one)."""
        states = [self.initial(block_start)]
        for _ in range(steps):
            states.append(self.step(states[-1]))
        return states

    @property
    def steps_per_round(self) -> int:
        """Propagations per round: ``K - |E|``."""
        return self.ring_size - self.enablements

    @property
    def steps_per_rotation(self) -> int:
        """Steps for the block to rotate fully around the ring:
        ``K`` rounds of ``K - |E|`` propagations."""
        return self.ring_size * self.steps_per_round
