"""Assumption 2 of Section 5: self-disabling processes.

The livelock analysis assumes that executing any local transition leaves
the process locally deadlocked (its successor may of course re-enable it).
Together with Assumption 1 (self-termination: no infinite purely-local
computation) this is no loss of generality: the paper's transformation
replaces every local transition chain with direct shortcuts to the chain's
terminal deadlocks, preserving reachability, adding no deadlocks and
introducing no new livelocks.

This module implements the check and the transformation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.errors import AssumptionViolation
from repro.graphs import Digraph, has_cycle
from repro.protocol.actions import Action, LocalTransition
from repro.protocol.localstate import LocalState, LocalStateSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


def local_transition_graph(
        transitions: Iterable[LocalTransition]) -> Digraph:
    """Digraph over local states with one arc per local transition."""
    graph = Digraph()
    for transition in transitions:
        graph.add_edge(transition.source, transition.target, key=transition)
    return graph


def is_self_terminating(space: LocalStateSpace) -> bool:
    """Assumption 1: every purely-local computation reaches a deadlock.

    Holds iff the local transition graph is acyclic.
    """
    return not has_cycle(local_transition_graph(space.transitions))


def is_self_disabling(space: LocalStateSpace) -> bool:
    """Assumption 2 (as used by Lemma 5.5): every local transition leaves
    the process disabled — every t-arc target is a local deadlock."""
    return all(space.is_deadlock(t.target) for t in space.transitions)


def self_disabling_transitions(
        space: LocalStateSpace) -> tuple[LocalTransition, ...]:
    """The self-disabling transition set equivalent to ``δ_r``.

    Every transition ``(s, s')`` with a non-deadlocked target is replaced
    by shortcuts ``(s, s_k)`` to each terminal local deadlock ``s_k``
    reachable from ``s'`` by local transitions.  Raises
    :class:`AssumptionViolation` when the local transition graph has a
    cycle (Assumption 1 fails, so no terminal state exists to shortcut
    to).
    """
    transitions = space.transitions
    graph = local_transition_graph(transitions)
    if has_cycle(graph):
        raise AssumptionViolation(
            "the process is not self-terminating: its local transition "
            "graph has a cycle, so the self-disabling transformation is "
            "undefined (Assumption 1 of Section 5)")

    terminal_cache: dict[LocalState, frozenset[LocalState]] = {}

    def terminals(state: LocalState) -> frozenset[LocalState]:
        if state in terminal_cache:
            return terminal_cache[state]
        if state not in graph or not list(graph.successors(state)):
            result = frozenset([state])
        else:
            result = frozenset().union(
                *(terminals(succ) for succ in graph.successors(state)))
        terminal_cache[state] = result
        return result

    shortcuts: dict[tuple[LocalState, LocalState], list[str]] = {}
    for transition in transitions:
        for terminal in terminals(transition.target):
            if terminal == transition.source:
                continue  # would be a no-op
            key = (transition.source, terminal)
            shortcuts.setdefault(key, [])
            if transition.label and transition.label not in shortcuts[key]:
                shortcuts[key].append(transition.label)
    return tuple(
        LocalTransition(source, target, "+".join(labels) + "*")
        for (source, target), labels in shortcuts.items())


def action_for_transition(transition: LocalTransition,
                          name: str | None = None) -> Action:
    """An :class:`Action` realizing exactly one local transition.

    The guard matches the transition's source local state; the effect
    writes the target's owned cell.  Used by the self-disabling
    transformation and by synthesis to materialize candidate t-arcs.
    """
    source, target = transition.source, transition.target

    def guard(view) -> bool:
        return view.state == source

    def effect(view):
        return target.own

    label = name or transition.label or "t"
    return Action(name=label, guard=guard, effect=effect,
                  source_text=f"state == {source} -> write {target.own}")


def make_self_disabling(protocol: "RingProtocol") -> "RingProtocol":
    """A behaviourally equivalent protocol with self-disabling actions.

    Returns *protocol* itself when it already satisfies Assumption 2.
    """
    space = protocol.space
    if is_self_disabling(space):
        return protocol
    transitions = self_disabling_transitions(space)
    actions = tuple(
        action_for_transition(t, name=f"sd{i}")
        for i, t in enumerate(transitions))
    return protocol.with_actions(actions,
                                 name=f"{protocol.name}_selfdisabling")
