"""Local reasoning for chains — the paper's future-work topology.

The ring results carry over to open chains with two pleasant twists:

**Deadlock-freedom (exact, all K).**  A global state of a chain of size
K is a length-K *walk* of the RCG whose first vertex agrees with the
left boundary and whose last agrees with the right one (instead of a
closed walk, as for rings).  Hence: a chain protocol has a global
deadlock outside ``I(K)`` for some K **iff** the RCG induced over local
deadlocks has a boundary-consistent walk through an illegitimate local
deadlock.  Both directions of the ring proof of Theorem 4.2 go through
verbatim with "cycle" replaced by "boundary-consistent walk".

**Livelock-freedom (free).**  On a *unidirectional* chain with
self-disabling actions every execution terminates: ``P_0`` has no
predecessor, so (by the chain analogue of Lemma 5.2) once disabled it
stays disabled and executes at most once; inductively ``P_r`` executes
at most ``r + 1`` times, bounding every execution by ``K(K+1)/2``
steps.  Circulating corruptions — the whole difficulty of rings — cannot
exist, matching the paper's remark that compositional approaches favour
acyclic topologies [21].

Consequently the combined chain verdict is **exact**: a unidirectional
chain protocol strongly converges for every size iff its deadlock
analysis is clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import enum

from repro.core.rcg import build_rcg
from repro.core.selfdisabling import action_for_transition, \
    is_self_disabling
from repro.errors import AssumptionViolation, TopologyError
from repro.graphs import Digraph
from repro.graphs.cuts import has_bad_path, minimal_path_cuts
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.chain import ChainProtocol


@dataclass(frozen=True)
class ChainDeadlockReport:
    """Outcome of the chain deadlock analysis (exact for every size)."""

    deadlock_free: bool
    local_deadlocks: tuple[LocalState, ...]
    illegitimate_deadlocks: tuple[LocalState, ...]
    start_deadlocks: tuple[LocalState, ...]
    """Local deadlocks that can sit at position 0 (left boundary)."""
    end_deadlocks: tuple[LocalState, ...]
    """Local deadlocks that can sit at position K-1 (right boundary)."""
    witness_walk: tuple[LocalState, ...] | None
    induced_rcg: Digraph = field(compare=False)


class ChainDeadlockAnalyzer:
    """Exact deadlock-freedom for chain protocols, all sizes at once."""

    def __init__(self, protocol: "ChainProtocol") -> None:
        self.protocol = protocol
        self._report: ChainDeadlockReport | None = None

    def analyze(self) -> ChainDeadlockReport:
        if self._report is not None:
            return self._report
        protocol = self.protocol
        space = protocol.space
        deadlocks = space.deadlocks()
        illegitimate = tuple(s for s in deadlocks
                             if not protocol.is_legitimate(s))
        induced = build_rcg(space, vertices=deadlocks)
        starts = tuple(s for s in deadlocks
                       if protocol.boundary_consistent_left(s))
        ends = tuple(s for s in deadlocks
                     if protocol.boundary_consistent_right(s))
        bad_exists = has_bad_path(induced, starts, ends, illegitimate)
        witness = (self._witness_walk(induced, starts, ends,
                                      set(illegitimate))
                   if bad_exists else None)
        self._report = ChainDeadlockReport(
            deadlock_free=not bad_exists,
            local_deadlocks=deadlocks,
            illegitimate_deadlocks=illegitimate,
            start_deadlocks=starts,
            end_deadlocks=ends,
            witness_walk=witness,
            induced_rcg=induced,
        )
        return self._report

    # ------------------------------------------------------------------
    def deadlocked_chain_sizes(self, upto: int) -> set[int]:
        """Exact chain sizes ``K <= upto`` with a deadlock outside I.

        Dynamic programming over walk lengths with a "visited an
        illegitimate deadlock" flag.
        """
        report = self.analyze()
        graph = report.induced_rcg
        bad = set(report.illegitimate_deadlocks)
        ends = set(report.end_deadlocks)
        # layer: set of (vertex, seen_bad)
        layer = {(s, s in bad) for s in report.start_deadlocks}
        sizes: set[int] = set()
        for size in range(1, upto + 1):
            if any(seen and vertex in ends for vertex, seen in layer):
                sizes.add(size)
            next_layer = set()
            for vertex, seen in layer:
                for succ in graph.successors(vertex):
                    next_layer.add((succ, seen or succ in bad))
            layer = next_layer
            if not layer:
                break
        return sizes

    # ------------------------------------------------------------------
    @staticmethod
    def _witness_walk(graph: Digraph, starts, ends,
                      bad: set[LocalState]):
        """A shortest boundary-consistent walk through a bad vertex."""
        # BFS over (vertex, seen_bad) states.
        from collections import deque

        initial = [(s, s in bad) for s in starts if s in graph]
        parents: dict[tuple, tuple | None] = {node: None
                                              for node in initial}
        queue = deque(initial)
        goal = None
        while queue:
            node = queue.popleft()
            vertex, seen = node
            if seen and vertex in set(ends):
                goal = node
                break
            for succ in graph.successors(vertex):
                nxt = (succ, seen or succ in bad)
                if nxt not in parents:
                    parents[nxt] = node
                    queue.append(nxt)
        if goal is None:
            return None
        walk = []
        node = goal
        while node is not None:
            walk.append(node[0])
            node = parents[node]
        walk.reverse()
        return tuple(walk)

    def witness_state(self) -> tuple | None:
        """A concrete deadlocked chain state built from the witness."""
        report = self.analyze()
        if report.witness_walk is None:
            return None
        return tuple(state.own for state in report.witness_walk)


def certify_chain_termination(protocol: "ChainProtocol") -> int:
    """Certify that every execution of a unidirectional chain protocol
    terminates, returning the per-size step bound factor.

    Requires a unidirectional chain with self-disabling actions; by the
    inductive argument in the module docstring, a chain of size K runs
    at most ``K (K + 1) / 2`` steps.  Raises on bidirectional chains
    (enablement can bounce) or self-enabling actions.
    """
    if not protocol.unidirectional:
        raise TopologyError(
            "the chain termination certificate needs a unidirectional "
            "chain (enablement can bounce between bidirectional "
            "neighbours)")
    if not is_self_disabling(protocol.space):
        raise AssumptionViolation(
            "the chain termination certificate needs self-disabling "
            "actions; apply make_self_disabling() first")
    return 1  # certificate granted; bound is K(K+1)/2


class ChainVerdict(enum.Enum):
    """Chain convergence verdicts — note there is no UNKNOWN for
    unidirectional chains: the analysis is exact."""

    CONVERGES = "converges"
    DIVERGES = "diverges"


@dataclass(frozen=True)
class ChainConvergenceReport:
    verdict: ChainVerdict
    deadlock: ChainDeadlockReport
    terminates: bool

    def summary(self) -> str:
        lines = [f"verdict: {self.verdict.value} (exact for every "
                 f"chain size)"]
        lines.append(f"deadlock-free: {self.deadlock.deadlock_free}")
        if self.deadlock.witness_walk:
            lines.append("  witness walk: " + " -> ".join(
                str(s) for s in self.deadlock.witness_walk))
        lines.append(f"termination certificate: {self.terminates} "
                     f"(bound K(K+1)/2 steps)")
        return "\n".join(lines)


def verify_chain_convergence(protocol: "ChainProtocol",
                             ) -> ChainConvergenceReport:
    """Exact convergence verdict for a unidirectional chain protocol."""
    certify_chain_termination(protocol)
    deadlock = ChainDeadlockAnalyzer(protocol).analyze()
    verdict = (ChainVerdict.CONVERGES if deadlock.deadlock_free
               else ChainVerdict.DIVERGES)
    return ChainConvergenceReport(verdict=verdict, deadlock=deadlock,
                                  terminates=True)


@dataclass
class ChainSynthesisResult:
    """Outcome of chain synthesis (always livelock-free when it
    succeeds, by the termination certificate)."""

    succeeded: bool
    protocol: "ChainProtocol | None"
    resolve: frozenset[LocalState]
    chosen: tuple[LocalTransition, ...]
    reason: str = ""

    def summary(self) -> str:
        if not self.succeeded:
            return f"chain synthesis failed: {self.reason}"
        lines = ["chain synthesis succeeded (exact, all sizes)"]
        lines.append("Resolve = {"
                     + ", ".join(str(s) for s in sorted(self.resolve))
                     + "}")
        for transition in self.chosen:
            lines.append(f"  + {transition}")
        return "\n".join(lines)


class ChainSynthesizer:
    """Add convergence to a unidirectional chain protocol.

    Deadlock resolution mirrors Section 6 with feedback vertex sets
    replaced by boundary-path cuts; no livelock stage is needed — the
    termination certificate makes any self-disabling resolution
    livelock-free, so the *first* candidate combination always works.
    """

    def __init__(self, protocol: "ChainProtocol",
                 max_resolve_sets: int = 16) -> None:
        certify_chain_termination(protocol)
        self.protocol = protocol
        self.max_resolve_sets = max_resolve_sets

    def synthesize(self) -> ChainSynthesisResult:
        protocol = self.protocol
        analyzer = ChainDeadlockAnalyzer(protocol)
        report = analyzer.analyze()
        if report.deadlock_free:
            return ChainSynthesisResult(
                succeeded=True, protocol=protocol,
                resolve=frozenset(), chosen=())
        cuts = list(minimal_path_cuts(
            report.induced_rcg,
            sources=report.start_deadlocks,
            targets=report.end_deadlocks,
            bad=report.illegitimate_deadlocks,
            allowed=report.illegitimate_deadlocks,
            max_sets=self.max_resolve_sets))
        if not cuts:
            return ChainSynthesisResult(
                succeeded=False, protocol=None, resolve=frozenset(),
                chosen=(), reason="no cut within ¬LC_r breaks every "
                                  "boundary-consistent deadlock walk")
        space = protocol.space
        deadlocks = set(space.deadlocks())
        for resolve in cuts:
            chosen: list[LocalTransition] = []
            feasible = True
            for state in sorted(resolve):
                options = []
                for cell in space.cells:
                    if cell == state.own:
                        continue
                    target = state.replace_own(cell)
                    if target in resolve or target not in deadlocks:
                        continue
                    options.append(LocalTransition(state, target,
                                                   _label(state, target)))
                if not options:
                    feasible = False
                    break
                chosen.append(options[0])
            if not feasible:
                continue
            actions = [action_for_transition(t, t.label) for t in chosen]
            revised = protocol.extended_with(actions)
            revised.name = f"{protocol.name}_ss"
            return ChainSynthesisResult(
                succeeded=True, protocol=revised,
                resolve=resolve, chosen=tuple(chosen))
        return ChainSynthesisResult(
            succeeded=False, protocol=None, resolve=cuts[0], chosen=(),
            reason="every cut contains a deadlock with no self-disabling "
                   "candidate transition")


def synthesize_chain_convergence(protocol: "ChainProtocol",
                                 ) -> ChainSynthesisResult:
    """Convenience wrapper around :class:`ChainSynthesizer`."""
    return ChainSynthesizer(protocol).synthesize()


def _label(source: LocalState, target: LocalState) -> str:
    def fmt(cell) -> str:
        return "".join(str(v)[0] if isinstance(v, str) else str(v)
                       for v in cell)

    return f"t{fmt(source.own)}{fmt(target.own)}"
