"""Parameterized convergence verdicts (Proposition 2.1, locally).

A protocol strongly converges to ``I`` iff it has no deadlock and no
livelock outside ``I``.  This module combines the exact deadlock analysis
(Theorem 4.2) with the sufficient livelock analysis (Theorem 5.14) into a
three-valued verdict over *all* ring sizes, plus a local closure check for
the problem statement's precondition that ``I`` be closed in ``p``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from itertools import product
from typing import TYPE_CHECKING

import repro.engine.artifacts as artifact_plane
from repro.core.deadlock import DeadlockAnalyzer, DeadlockReport
from repro.core.livelock import (
    LivelockCertifier,
    LivelockReport,
)
from repro.core.rcg import build_rcg
from repro.engine import EngineStats, ResultCache, analysis_key
from repro.engine.supervisor import SupervisorPolicy
from repro.protocol.localstate import LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class ConvergenceVerdict(enum.Enum):
    """Three-valued answer to "does p strongly converge to I for all K?"."""

    CONVERGES = "converges"
    """Deadlock-free (exact) and certified livelock-free: the protocol is
    strongly self-stabilizing for every ring size."""

    DIVERGES = "diverges"
    """A deadlock witness exists: some ring size has an illegitimate
    deadlock (Theorem 4.2 is exact, so this is definitive)."""

    UNKNOWN = "unknown"
    """Deadlock-free, but livelock-freedom could not be certified."""


@dataclass(frozen=True)
class ConvergenceReport:
    """Combined parameterized analysis of a ring protocol."""

    verdict: ConvergenceVerdict
    deadlock: DeadlockReport
    livelock: LivelockReport | None
    closure_ok: bool
    stats: EngineStats | None = field(default=None, compare=False)

    def summary(self) -> str:
        """A short multi-line human-readable summary."""
        lines = [f"verdict: {self.verdict.value}"]
        lines.append(
            f"closure of I under p: {'ok' if self.closure_ok else 'BROKEN'}")
        lines.append(
            f"deadlock-free for all K: {self.deadlock.deadlock_free} "
            f"({len(self.deadlock.local_deadlocks)} local deadlocks, "
            f"{len(self.deadlock.illegitimate_deadlocks)} illegitimate)")
        if self.deadlock.witness_cycles:
            first = self.deadlock.witness_cycles[0]
            lines.append(
                f"  witness cycle (length {len(first)}): "
                + " -> ".join(str(s) for s in first))
        if self.livelock is None:
            lines.append("livelock analysis: skipped")
        else:
            lines.append(
                f"livelock verdict: {self.livelock.verdict.value} "
                f"({self.livelock.supports_checked} pseudo-livelock "
                f"supports checked"
                + (", contiguous livelocks only)"
                   if self.livelock.contiguous_only else ")"))
            for witness in self.livelock.trail_witnesses:
                lines.append(f"  {witness}")
        return "\n".join(lines)


def check_local_closure(protocol: "RingProtocol") -> bool:
    """Local check that ``I(K)`` is closed in ``p(K)`` for every K.

    A transition of ``P_r`` can violate the legitimacy of exactly the
    processes whose read window covers position ``r`` — those at ring
    positions ``r - reads_right .. r + reads_left``.  Their windows
    jointly span the cell positions ``r - reads_right - reads_left ..
    r + reads_left + reads_right``.  The check enumerates every
    assignment of cells to that span such that:

    1. the centre window matches the transition's source local state,
    2. every complete window inside the span satisfies ``LC_r``, and
    3. the span embeds in a legitimate ring of *some* size — i.e. the RCG
       restricted to legitimate local states has a (>= 1 arc) path from
       the span's last window back to its first, closing the ring through
       further legitimate states;

    and reports a closure violation when the write leaves any affected
    window illegitimate.  Conditions 1–3 make the check exact for every
    ring size larger than the span (smaller, degenerate sizes are the
    global checker's domain).
    """
    space = protocol.space
    process = protocol.process
    rl, rr = process.reads_left, process.reads_right
    width = process.window_width
    span_width = width + rl + rr
    window_count = rl + rr + 1  # affected processes / windows in the span

    legit_rcg = build_rcg(space, vertices=protocol.legitimate_states())
    reach = _reachability(legit_rcg)

    for transition in space.transitions:
        if not protocol.is_legitimate(transition.source):
            continue  # fires outside LC_r: cannot leave I
        for assignment in _span_assignments(space.cells, span_width, rr,
                                            transition.source):
            windows = [LocalState(tuple(assignment[i:i + width]), rl)
                       for i in range(window_count)]
            if any(not protocol.is_legitimate(w) for w in windows):
                continue
            last, first = windows[-1], windows[0]
            if first not in reach.get(last, ()):
                continue  # the pre-state embeds in no legitimate ring
            written = list(assignment)
            written[rr + rl] = transition.target.own  # own cell slot
            for i in range(window_count):
                updated = LocalState(tuple(written[i:i + width]), rl)
                if not protocol.is_legitimate(updated):
                    return False
    return True


def _span_assignments(all_cells, span_width: int, left_extra: int,
                      source: LocalState):
    """Assignments of cells to the span consistent with *source*.

    The transitioning process's window occupies span slots
    ``left_extra .. left_extra + width - 1`` (``left_extra`` equals
    ``reads_right``: the predecessors' windows stick that far out to the
    left); the remaining slots range over all cells.
    """
    width = len(source.cells)
    fixed = {left_extra + j: source.cells[j] for j in range(width)}
    free = [i for i in range(span_width) if i not in fixed]
    for combo in product(all_cells, repeat=len(free)):
        assignment: list = [None] * span_width
        for slot, cell in fixed.items():
            assignment[slot] = cell
        for slot, cell in zip(free, combo):
            assignment[slot] = cell
        yield assignment


def _reachability(graph) -> dict:
    """``node -> set of nodes reachable via >= 1 arc`` for a Digraph."""
    reach: dict = {}
    for node in graph.nodes:
        seen: set = set()
        frontier = list(graph.successors(node))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(graph.successors(current))
        reach[node] = seen
    return reach


def verify_convergence(protocol: "RingProtocol",
                       max_ring_size: int = 9,
                       check_livelocks: bool = True,
                       jobs: int = 1,
                       cache: ResultCache | None = None,
                       backend: str = "auto",
                       policy: SupervisorPolicy | None = None,
                       schedule: str = "auto",
                       batch_size: int | None = None,
                       ) -> ConvergenceReport:
    """The full parameterized analysis of *protocol*.

    ``max_ring_size`` bounds the ``(K, |E|)`` sweep of the
    contiguous-trail search.  With ``check_livelocks=False`` only the
    (exact) deadlock analysis runs and the verdict is ``UNKNOWN`` unless a
    deadlock witness makes it ``DIVERGES``.  ``jobs > 1`` parallelises
    the per-support trail searches; *cache* reuses whole convergence
    reports across runs (keyed on the protocol fingerprint plus
    ``max_ring_size`` / ``check_livelocks``); *backend* selects the
    contiguous-trail engine (``kernel``/``naive``, see
    :class:`repro.core.trail.ContiguousTrailSearcher`); *policy*
    supervises the fanned-out trail searches (timeouts, crash retry,
    degradation — see :mod:`repro.engine.supervisor`); *schedule* /
    *batch_size* pick the supervised execution strategy
    (``auto``/``batch``/``task``, verdict-identical).
    """
    stats = EngineStats(jobs=jobs)
    key = None
    if cache is not None:
        key = analysis_key("verify-convergence", protocol,
                           max_ring_size=max_ring_size,
                           check_livelocks=check_livelocks,
                           backend="kernel" if backend == "auto"
                           else backend)
        cached = cache.get(key)
        if cached is not None:
            stats.cache_hits += 1
            return ConvergenceReport(
                verdict=cached.verdict, deadlock=cached.deadlock,
                livelock=cached.livelock, closure_ok=cached.closure_ok,
                stats=stats)
        stats.cache_misses += 1

    plane = artifact_plane.ambient()
    plane_before = plane.stats.snapshot() if plane is not None else None
    with stats.stage("closure"):
        closure_ok = check_local_closure(protocol)
    with stats.stage("deadlock"):
        deadlock = DeadlockAnalyzer(protocol).analyze()
    livelock: LivelockReport | None = None

    if not deadlock.deadlock_free:
        verdict = ConvergenceVerdict.DIVERGES
    elif not check_livelocks:
        verdict = ConvergenceVerdict.UNKNOWN
    else:
        from repro.errors import AssumptionViolation

        try:
            with stats.stage("livelock"):
                livelock = LivelockCertifier(
                    protocol, max_ring_size=max_ring_size,
                    jobs=jobs, backend=backend,
                    policy=policy, schedule=schedule,
                    batch_size=batch_size).analyze()
        except AssumptionViolation:
            # Theorem 5.14 does not apply (Assumptions 1/2 broken);
            # the deadlock half still stands, livelocks stay open.
            livelock = None
            verdict = ConvergenceVerdict.UNKNOWN
        else:
            if livelock.stats is not None:
                stats.parallel = stats.parallel or livelock.stats.parallel
                stats.work_items += livelock.stats.work_items
                stats.merge_kernel_counters(livelock.stats)
            if livelock.certified and closure_ok:
                verdict = ConvergenceVerdict.CONVERGES
            else:
                verdict = ConvergenceVerdict.UNKNOWN
    if plane is not None:
        stats.absorb_artifacts(plane.stats.delta_since(plane_before))
    report = ConvergenceReport(verdict=verdict, deadlock=deadlock,
                               livelock=livelock, closure_ok=closure_ok,
                               stats=stats)
    if cache is not None and key is not None:
        cache.put(key, ConvergenceReport(
            verdict=verdict, deadlock=deadlock, livelock=livelock,
            closure_ok=closure_ok))
    return report
