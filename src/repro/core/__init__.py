"""The paper's contribution: local reasoning over the representative
process's state space for global, any-K guarantees.

Main entry points
-----------------
* :func:`repro.core.convergence.verify_convergence` — the combined
  parameterized analysis (Theorem 4.2 + Theorem 5.14).
* :func:`repro.core.synthesis.synthesize_convergence` — the Section 6
  methodology: add convergence to a non-stabilizing protocol.
* :func:`repro.core.deadlock.analyze_deadlocks`,
  :func:`repro.core.livelock.certify_livelock_freedom` — the individual
  analyses.
* :func:`repro.core.rcg.build_rcg`, :func:`repro.core.ltg.build_ltg` —
  the underlying graph constructions.
"""

from repro.core.rcg import build_rcg, closed_walk_to_global_state
from repro.core.ltg import build_ltg, ltg_of, t_arcs
from repro.core.deadlock import (
    DeadlockAnalyzer,
    DeadlockReport,
    analyze_deadlocks,
)
from repro.core.pseudolivelock import (
    elementary_pseudo_livelocks,
    has_pseudo_livelock,
    is_pseudo_livelock_support,
    pseudo_livelock_supports,
    write_projection_graph,
)
from repro.core.trail import (
    ContiguousTrailSearcher,
    TrailWitness,
    round_pattern,
)
from repro.core.livelock import (
    LivelockCertifier,
    LivelockReport,
    LivelockVerdict,
    certify_livelock_freedom,
)
from repro.core.selfdisabling import (
    is_self_disabling,
    is_self_terminating,
    make_self_disabling,
    self_disabling_transitions,
)
from repro.core.convergence import (
    ConvergenceReport,
    ConvergenceVerdict,
    check_local_closure,
    verify_convergence,
)
from repro.core.synthesis import (
    SynthesisOutcome,
    SynthesisResult,
    Synthesizer,
    synthesize_convergence,
)
from repro.core.precedence import (
    PrecedenceRelation,
    precedence_relation,
    precedence_preserving_schedules,
)
from repro.core.contiguous import ContiguousLivelockModel
from repro.core.hybrid import (
    HybridReport,
    HybridSynthesisResult,
    hybrid_synthesize,
    HybridVerdict,
    WitnessClassification,
    hybrid_verify,
)

__all__ = [
    "build_rcg",
    "closed_walk_to_global_state",
    "build_ltg",
    "ltg_of",
    "t_arcs",
    "DeadlockAnalyzer",
    "DeadlockReport",
    "analyze_deadlocks",
    "write_projection_graph",
    "has_pseudo_livelock",
    "elementary_pseudo_livelocks",
    "pseudo_livelock_supports",
    "is_pseudo_livelock_support",
    "ContiguousTrailSearcher",
    "TrailWitness",
    "round_pattern",
    "LivelockCertifier",
    "LivelockReport",
    "LivelockVerdict",
    "certify_livelock_freedom",
    "is_self_disabling",
    "is_self_terminating",
    "make_self_disabling",
    "self_disabling_transitions",
    "ConvergenceReport",
    "ConvergenceVerdict",
    "check_local_closure",
    "verify_convergence",
    "Synthesizer",
    "SynthesisResult",
    "SynthesisOutcome",
    "synthesize_convergence",
    "PrecedenceRelation",
    "precedence_relation",
    "precedence_preserving_schedules",
    "ContiguousLivelockModel",
    "HybridReport",
    "HybridVerdict",
    "WitnessClassification",
    "hybrid_verify",
    "HybridSynthesisResult",
    "hybrid_synthesize",
]
