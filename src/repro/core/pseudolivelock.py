"""Pseudo-livelocks (Definition 5.13).

A *pseudo-livelock* of a process is a set of its local transitions whose
projection on the writable variables forms a repetitive sequence of values:
chaining the (old value, new value) pairs yields a cycle.  Pseudo-livelocks
are the local shadow every real livelock must cast (Theorem 5.14, item 2) —
but casting the shadow does not imply a livelock, hence "pseudo".

Operationally, build the **write-projection graph**: nodes are owned-cell
values, and each transition contributes an arc ``old_cell -> new_cell``
keyed by the transition.  Then:

* a transition set *contains* a pseudo-livelock iff that graph has a
  directed cycle;
* the *elementary* pseudo-livelocks are the simple cycles of that graph;
* a set *is* (entirely) pseudo-livelocking iff every arc lies on a cycle —
  equivalently, every arc lies inside a cyclic SCC.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ReproError
from repro.graphs import Digraph, has_cycle
from repro.graphs.cycles import simple_edge_cycles
from repro.graphs.scc import strongly_connected_components
from repro.protocol.actions import LocalTransition


class SupportExplosion(ReproError):
    """The union lattice of elementary pseudo-livelocks is too large to
    enumerate; callers should degrade to a conservative verdict."""


def write_projection_graph(
        transitions: Iterable[LocalTransition]) -> Digraph:
    """The write-projection multigraph of *transitions*.

    Nodes are owned cells; each transition adds the arc
    ``source.own -> target.own`` keyed by the transition itself, so
    parallel projections stay distinguishable.
    """
    graph = Digraph()
    for transition in transitions:
        graph.add_edge(transition.source.own, transition.target.own,
                       key=transition)
    return graph


def has_pseudo_livelock(transitions: Iterable[LocalTransition]) -> bool:
    """Whether some subset of *transitions* forms a pseudo-livelock."""
    return has_cycle(write_projection_graph(transitions))


def elementary_pseudo_livelocks(
        transitions: Iterable[LocalTransition],
) -> list[frozenset[LocalTransition]]:
    """The minimal pseudo-livelock subsets of *transitions*.

    These are the simple cycles of the write-projection graph, resolved
    down to individual transitions (two transitions with the same value
    projection give two distinct pseudo-livelocks).
    """
    graph = write_projection_graph(transitions)
    result: list[frozenset[LocalTransition]] = []
    for edge_cycle in simple_edge_cycles(graph):
        subset = frozenset(key for _s, _t, key in edge_cycle)
        if subset not in result:
            result.append(subset)
    return result


def pseudo_livelock_supports(
        transitions: Iterable[LocalTransition],
        max_supports: int = 4096,
) -> list[frozenset[LocalTransition]]:
    """All transition sets that *entirely* form pseudo-livelocks.

    Theorem 5.14 requires the t-arcs of a contiguous trail to form
    pseudo-livelocks — i.e. the trail's full t-arc set must decompose into
    value cycles (every t-arc on a cycle of the set's own write-projection
    graph).  These candidate sets are exactly the unions of elementary
    pseudo-livelocks; this function enumerates those unions (deduplicated,
    capped at *max_supports* to bound pathological inputs).
    """
    elements = elementary_pseudo_livelocks(transitions)
    supports: list[frozenset[LocalTransition]] = []
    seen: set[frozenset[LocalTransition]] = set()
    frontier: list[frozenset[LocalTransition]] = [frozenset()]
    seen.add(frozenset())
    for element in elements:
        next_frontier = list(frontier)
        for existing in frontier:
            union = existing | element
            if union not in seen:
                seen.add(union)
                next_frontier.append(union)
                if len(seen) > max_supports:
                    raise SupportExplosion(
                        f"more than {max_supports} pseudo-livelock "
                        f"supports; raise max_supports or reduce the "
                        f"candidate set")
        frontier = next_frontier
    supports = [s for s in frontier if s]
    supports.sort(key=lambda s: (len(s), sorted(repr(t) for t in s)))
    return supports


def is_pseudo_livelock_support(
        transitions: Iterable[LocalTransition]) -> bool:
    """Whether *every* transition lies on a cycle of the set's own
    write-projection graph (the set "forms pseudo-livelocks")."""
    transitions = list(transitions)
    if not transitions:
        return False
    graph = write_projection_graph(transitions)
    cyclic_nodes: dict = {}
    for component in strongly_connected_components(graph):
        members = set(component)
        is_cyclic = len(component) > 1 or graph.has_edge(
            component[0], component[0])
        for node in members:
            cyclic_nodes[node] = (members, is_cyclic)
    for transition in transitions:
        src_component, cyclic = cyclic_nodes[transition.source.own]
        if not cyclic or transition.target.own not in src_component:
            return False
    return True
