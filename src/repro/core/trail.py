"""Contiguous-trail search (Lemma 5.12 / Theorem 5.14).

A *contiguous livelock* with ``|E|`` enablements in a ring of size ``K``
projects onto the LTG as a closed structure built from *rounds*.  One round
is the rightmost enablement propagating ``K - |E|`` times and then control
crossing the segment of ``|E|`` adjacent enablements::

    round pattern =  T (S T)^{K-|E|-1}  S^{|E|}

where ``T`` traverses a t-arc (a process executes its local transition) and
``S`` traverses an s-arc (control passes to the successor's local state).
Every vertex entered by the trailing ``S^{|E|}`` walk is an *enablement*
and must therefore have an outgoing t-arc among the trail's t-arcs.

(The per-round count of s-arcs is ``K - 1``; the paper's own worked
agreement trail ``t,s,s,t,s,s`` for ``K=3, |E|=2`` matches this pattern.
For ``|E| = 1`` the pattern degenerates to the plain t/s alternation of
Lemma 5.12, item 1.)

The search: for each ``(K, |E|)`` within bounds, build the **product
graph** of (local state, phase-in-round) with arcs restricted to the
allowed t-arc set, and look for a cyclic SCC that

1. visits an illegitimate local state (Theorem 5.14, item 1), and
2. uses the allowed t-arcs **exactly** (the trail's t-arcs are the
   candidate pseudo-livelock and nothing else — Theorem 5.14, item 2).

A cyclic SCC with those properties supports a closed walk of the round
pattern; searching walks rather than edge-disjoint trails over-approximates
Lemma 5.12's trails, so *absence* of any match soundly certifies
livelock-freedom while a match only means "cannot conclude" (as the
sum-not-two example of Section 6.2 illustrates: its trail is spurious).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.ltg import S_ARC, build_ltg
from repro.graphs import Digraph
from repro.graphs.scc import strongly_connected_components
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState, LocalStateSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol

T_PHASE = "T"
S_PHASE = "S"
S_SEGMENT_PHASE = "S!"  # trailing s-arc: target must be t-enabled


def round_pattern(ring_size: int, enablements: int) -> list[str]:
    """The per-round phase pattern for ``(K, |E|)``.

    >>> round_pattern(4, 1)
    ['T', 'S', 'T', 'S', 'T', 'S!']
    >>> round_pattern(3, 2)
    ['T', 'S!', 'S!']
    """
    if not 1 <= enablements < ring_size:
        raise ValueError(
            f"need 1 <= |E| < K, got |E|={enablements}, K={ring_size}")
    pattern = [T_PHASE]
    for _ in range(ring_size - enablements - 1):
        pattern.extend([S_PHASE, T_PHASE])
    pattern.extend([S_SEGMENT_PHASE] * enablements)
    return pattern


@dataclass(frozen=True)
class TrailWitness:
    """A contiguous-trail candidate found in the LTG.

    Attributes
    ----------
    ring_size, enablements:
        The ``(K, |E|)`` of the round pattern the trail follows.  The same
        LTG structure recurs at every multiple of the round, so a witness
        at ``(K, |E|)`` indicts the whole parameter family.
    t_arcs:
        The trail's t-arcs (the candidate pseudo-livelock).
    states:
        The local states visited by the witnessing SCC.
    illegitimate_states:
        The visited states violating ``LC_r`` (non-empty by construction).
    """

    ring_size: int
    enablements: int
    t_arcs: frozenset[LocalTransition]
    states: tuple[LocalState, ...]
    illegitimate_states: tuple[LocalState, ...]

    def __str__(self) -> str:
        arcs = ", ".join(sorted(str(t) for t in self.t_arcs))
        return (f"trail(K={self.ring_size}, |E|={self.enablements}, "
                f"t-arcs: {arcs})")


class ContiguousTrailSearcher:
    """Searches an LTG for contiguous trails with a given t-arc support.

    *backend* selects the engine: ``"kernel"`` (the default behind
    ``"auto"``) runs the bitmask-compiled search of
    :mod:`repro.engine.localkernel`; ``"naive"`` keeps the original
    per-query ``Digraph`` product build as the reference
    implementation.  Both return the same verdicts and the same
    ``(K, |E|, t_arcs)`` witnesses (the differential suite pins this);
    only the SCC a witness's ``states`` come from may differ when
    several match.
    """

    def __init__(self, protocol: "RingProtocol",
                 max_ring_size: int = 9,
                 backend: str = "auto") -> None:
        if max_ring_size < 2:
            raise ValueError("max_ring_size must be at least 2")
        resolved = "kernel" if backend == "auto" else backend
        if resolved not in ("kernel", "naive"):
            raise ValueError(f"unknown trail backend {backend!r}")
        self.protocol = protocol
        self.space: LocalStateSpace = protocol.space
        self.max_ring_size = max_ring_size
        self.backend = resolved
        self._kernel = None
        self._kernel_base = None
        if resolved == "kernel":
            from repro.engine.localkernel import local_kernel_for

            self._kernel = local_kernel_for(protocol)
            # The kernel is shared across searchers; remember where its
            # cumulative counters stood so kernel_stats() is per-run.
            self._kernel_base = self._kernel.stats.snapshot()
        self._naive_ready = False

    def _ensure_naive(self) -> None:
        if self._naive_ready:
            return
        self._ltg = build_ltg(self.space, transitions=())
        # s-adjacency, computed once; t-arcs vary per query.
        self._s_succ: dict[LocalState, list[LocalState]] = {
            state: [target for target in self._ltg.successors(state)
                    if S_ARC in self._ltg.edge_keys(state, target)]
            for state in self.space.states
        }
        self._illegitimate = frozenset(self.protocol.illegitimate_states())
        # Per-(K, |E|) s-arc phase layers, built on first use and
        # reused across every support queried on this searcher (the
        # livelock certifier fans one find_trail out per support).
        self._layers: dict[tuple[int, int], tuple] = {}
        self._naive_ready = True

    def kernel_stats(self):
        """This searcher's share of the (shared) kernel counters, as a
        :class:`repro.engine.localkernel.LocalKernelStats` delta, or
        ``None`` on the naive backend."""
        if self._kernel is None:
            return None
        return self._kernel.stats.delta_since(self._kernel_base)

    # ------------------------------------------------------------------
    def find_trail(self, t_arc_support: Iterable[LocalTransition],
                   ) -> TrailWitness | None:
        """A trail whose t-arcs are exactly *t_arc_support*, or ``None``.

        Scans ``(K, |E|)`` with ``2 <= K <= max_ring_size`` and
        ``1 <= |E| < K``; returns the first witness found (smallest K,
        then smallest |E|).
        """
        support = frozenset(t_arc_support)
        if not support:
            return None
        if self._kernel is not None:
            return self._kernel.find_trail(support, self.max_ring_size)
        self._ensure_naive()
        for ring_size in range(2, self.max_ring_size + 1):
            for enablements in range(1, ring_size):
                witness = self._search(support, ring_size, enablements)
                if witness is not None:
                    return witness
        return None

    def exists_trail(self,
                     t_arc_support: Iterable[LocalTransition]) -> bool:
        """Whether a contiguous trail with exactly this support exists."""
        return self.find_trail(t_arc_support) is not None

    # ------------------------------------------------------------------
    def _phase_layers(self, ring_size: int, enablements: int) -> tuple:
        """The product-graph layers of one ``(K, |E|)`` round pattern.

        The s-arc layers do not depend on the queried support, so their
        edges — product-graph node pairs included — are materialized
        once per ``(K, |E|)`` and cached; ``_search`` then only filters
        trailing-segment edges by the support's t-sources and inserts.
        Each layer is ``(kind, phase, next_phase, edges)`` with
        ``edges = ((source_node, target_node, target_state), ...)``
        (empty for T layers, whose edges are support-dependent).
        """
        self._ensure_naive()
        key = (ring_size, enablements)
        cached = self._layers.get(key)
        if cached is not None:
            return cached
        pattern = round_pattern(ring_size, enablements)
        period = len(pattern)
        layers = []
        for phase, kind in enumerate(pattern):
            next_phase = (phase + 1) % period
            if kind == T_PHASE:
                layers.append((kind, phase, next_phase, ()))
                continue
            edges = tuple(
                ((source, phase), (target, next_phase), target)
                for source, targets in self._s_succ.items()
                for target in targets)
            layers.append((kind, phase, next_phase, edges))
        cached = tuple(layers)
        self._layers[key] = cached
        return cached

    def _search(self, support: frozenset[LocalTransition],
                ring_size: int, enablements: int) -> TrailWitness | None:
        self._ensure_naive()
        t_by_source: dict[LocalState, list[LocalTransition]] = {}
        for transition in support:
            t_by_source.setdefault(transition.source, []).append(transition)

        product = Digraph()
        for kind, phase, next_phase, edges in \
                self._phase_layers(ring_size, enablements):
            if kind == T_PHASE:
                for transition in support:
                    product.add_edge((transition.source, phase),
                                     (transition.target, next_phase),
                                     key=transition)
            elif kind == S_PHASE:
                for source_node, target_node, _target in edges:
                    product.add_edge(source_node, target_node, key=S_ARC)
            else:
                for source_node, target_node, target in edges:
                    if target in t_by_source:
                        product.add_edge(source_node, target_node,
                                         key=S_ARC)

        for component in strongly_connected_components(product):
            members = set(component)
            if len(component) == 1:
                node = component[0]
                if not product.has_edge(node, node):
                    continue
            used: set[LocalTransition] = set()
            states: set[LocalState] = set()
            for node in members:
                states.add(node[0])
                for succ in product.successors(node):
                    if succ in members:
                        for key in product.edge_keys(node, succ):
                            if isinstance(key, LocalTransition):
                                used.add(key)
            if used != set(support):
                continue
            illegitimate = tuple(sorted(states & self._illegitimate))
            if not illegitimate:
                continue
            return TrailWitness(
                ring_size=ring_size,
                enablements=enablements,
                t_arcs=support,
                states=tuple(sorted(states)),
                illegitimate_states=illegitimate,
            )
        return None
