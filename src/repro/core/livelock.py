"""Parameterized livelock-freedom certification (Theorem 5.14).

For a unidirectional ring protocol with self-disabling actions, if some
``p(K)`` has a livelock then the LTG contains a contiguous trail through an
illegitimate local state whose t-arcs form pseudo-livelocks.  The certifier
therefore:

1. enumerates every candidate t-arc support (union of elementary
   pseudo-livelocks of ``δ_r``);
2. runs the contiguous-trail search for each;
3. certifies livelock-freedom for **all** K when no support yields a
   trail, and otherwise answers *unknown* (the condition is sufficient
   only — a found trail may be spurious, see sum-not-two in Section 6.2).

On bidirectional rings the same machinery certifies absence of
*contiguous* livelocks only (Section 5's closing remark); the report says
so explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.pseudolivelock import (
    SupportExplosion,
    pseudo_livelock_supports,
)
from repro.core.selfdisabling import is_self_disabling, is_self_terminating
from repro.core.trail import ContiguousTrailSearcher, TrailWitness
from repro.engine import EngineStats, ResultCache, analysis_key, \
    supervise_work_items
from repro.engine.supervisor import SupervisorPolicy
from repro.errors import AssumptionViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class LivelockVerdict(enum.Enum):
    """Outcome of the Theorem 5.14 analysis."""

    CERTIFIED_FREE = "certified-livelock-free"
    """No pseudo-livelock support forms a contiguous trail: livelock-free
    for every ring size (for unidirectional rings; contiguous-livelock-free
    for bidirectional ones)."""

    UNKNOWN = "unknown"
    """Some support forms a contiguous trail; the sufficient condition
    cannot conclude.  The witnesses may or may not be real livelocks —
    check concrete sizes with :mod:`repro.checker`."""


@dataclass(frozen=True)
class LivelockReport:
    """Result of the parameterized livelock analysis."""

    verdict: LivelockVerdict
    supports_checked: int
    trail_witnesses: tuple[TrailWitness, ...]
    contiguous_only: bool
    """True on bidirectional rings: the verdict covers only contiguous
    livelocks (Theorem 5.14's scope there)."""
    note: str = ""
    """Human-readable caveat, e.g. when support enumeration was cut off
    and the verdict degraded to a conservative UNKNOWN."""
    stats: EngineStats | None = field(default=None, compare=False)
    """Engine instrumentation for this run (excluded from equality)."""

    @property
    def certified(self) -> bool:
        """Whether livelock-freedom is certified for all K."""
        return (self.verdict is LivelockVerdict.CERTIFIED_FREE
                and not self.contiguous_only)


def _find_trail_worker(searcher: ContiguousTrailSearcher,
                       support) -> TrailWitness | None:
    """Module-level worker for :func:`repro.engine.run_work_items`."""
    return searcher.find_trail(support)


def _find_trail_fallback(searcher: ContiguousTrailSearcher,
                         support) -> TrailWitness | None:
    """A degraded trail search: in-parent, on the reference naive
    Digraph searcher (verdict-identical to the kernel by the
    differential suite)."""
    fallback = ContiguousTrailSearcher(
        searcher.protocol, max_ring_size=searcher.max_ring_size,
        backend="naive")
    return fallback.find_trail(support)


class LivelockCertifier:
    """Runs the Theorem 5.14 sufficient condition on a protocol.

    Each candidate t-arc support is an independent contiguous-trail
    search, so ``jobs > 1`` fans the supports out over worker processes
    (witnesses keep the serial support order); *cache* reuses whole
    reports across runs, keyed on the protocol fingerprint and the
    analysis parameters.
    """

    def __init__(self, protocol: "RingProtocol",
                 max_ring_size: int = 9,
                 require_self_disabling: bool = True,
                 jobs: int = 1,
                 cache: ResultCache | None = None,
                 backend: str = "auto",
                 policy: SupervisorPolicy | None = None,
                 schedule: str = "auto",
                 batch_size: int | None = None) -> None:
        self.protocol = protocol
        self.max_ring_size = max_ring_size
        self.require_self_disabling = require_self_disabling
        self.jobs = jobs
        self.cache = cache
        self.backend = backend
        self.policy = policy
        self.schedule = schedule
        self.batch_size = batch_size

    def _cache_key(self) -> str:
        # The backend is part of the key: verdicts are identical, but a
        # witness's `states` may come from a different matching SCC.
        return analysis_key(
            "livelock-certificate", self.protocol,
            max_ring_size=self.max_ring_size,
            require_self_disabling=self.require_self_disabling,
            backend="kernel" if self.backend == "auto" else self.backend)

    def analyze(self) -> LivelockReport:
        """Run the analysis; raises :class:`AssumptionViolation` when the
        protocol breaks Assumption 1/2 (use
        :func:`repro.core.selfdisabling.make_self_disabling` first)."""
        stats = EngineStats(jobs=self.jobs)
        if self.cache is not None:
            cached = self.cache.get(self._cache_key())
            if cached is not None:
                stats.cache_hits += 1
                return LivelockReport(
                    verdict=cached.verdict,
                    supports_checked=cached.supports_checked,
                    trail_witnesses=cached.trail_witnesses,
                    contiguous_only=cached.contiguous_only,
                    note=cached.note,
                    stats=stats,
                )
            stats.cache_misses += 1

        report = self._analyze(stats)
        if self.cache is not None:
            # Store without run-local stats: a later hit gets its own.
            self.cache.put(self._cache_key(), LivelockReport(
                verdict=report.verdict,
                supports_checked=report.supports_checked,
                trail_witnesses=report.trail_witnesses,
                contiguous_only=report.contiguous_only,
                note=report.note,
            ))
        return report

    def _analyze(self, stats: EngineStats) -> LivelockReport:
        space = self.protocol.space
        if self.require_self_disabling:
            if not is_self_terminating(space):
                raise AssumptionViolation(
                    f"protocol {self.protocol.name!r} is not "
                    f"self-terminating (Assumption 1)")
            if not is_self_disabling(space):
                raise AssumptionViolation(
                    f"protocol {self.protocol.name!r} has self-enabling "
                    f"local transitions (Assumption 2); apply "
                    f"make_self_disabling() first")

        with stats.stage("supports"):
            try:
                supports = pseudo_livelock_supports(space.transitions)
            except SupportExplosion as explosion:
                # Too many candidate supports to examine: degrade to the
                # (sound) conservative answer.
                return LivelockReport(
                    verdict=LivelockVerdict.UNKNOWN,
                    supports_checked=0,
                    trail_witnesses=(),
                    contiguous_only=not self.protocol.unidirectional,
                    note=str(explosion),
                    stats=stats,
                )
        searcher = ContiguousTrailSearcher(
            self.protocol, max_ring_size=self.max_ring_size,
            backend=self.backend)
        with stats.stage("trail-search", supports=len(supports),
                         backend=self.backend):
            if (self.jobs > 1 and len(supports) > 1) \
                    or self.policy is not None \
                    or self.schedule == "batch":
                # No separate prewarm hook: constructing the searcher
                # above already compiled the local kernel in-parent, so
                # forked workers inherit it hot either way.
                found = supervise_work_items(
                    _find_trail_worker, supports, jobs=self.jobs,
                    context=searcher, stats=stats, policy=self.policy,
                    fallback_worker=_find_trail_fallback,
                    schedule=self.schedule, batch_size=self.batch_size)
            else:
                found = [searcher.find_trail(s) for s in supports]
        stats.work_items += len(supports)
        # Under run_work_items the workers' kernel counters stay in the
        # forked children, so parallel runs under-count here.
        stats.absorb_localkernel(searcher.kernel_stats())
        witnesses = [w for w in found if w is not None]

        verdict = (LivelockVerdict.CERTIFIED_FREE if not witnesses
                   else LivelockVerdict.UNKNOWN)
        return LivelockReport(
            verdict=verdict,
            supports_checked=len(supports),
            trail_witnesses=tuple(witnesses),
            contiguous_only=not self.protocol.unidirectional,
            stats=stats,
        )


def certify_livelock_freedom(protocol: "RingProtocol",
                             max_ring_size: int = 9,
                             jobs: int = 1,
                             cache: ResultCache | None = None,
                             backend: str = "auto") -> LivelockReport:
    """Convenience wrapper around :class:`LivelockCertifier`."""
    return LivelockCertifier(protocol, max_ring_size=max_ring_size,
                             jobs=jobs, cache=cache,
                             backend=backend).analyze()
