"""Parameterized livelock-freedom certification (Theorem 5.14).

For a unidirectional ring protocol with self-disabling actions, if some
``p(K)`` has a livelock then the LTG contains a contiguous trail through an
illegitimate local state whose t-arcs form pseudo-livelocks.  The certifier
therefore:

1. enumerates every candidate t-arc support (union of elementary
   pseudo-livelocks of ``δ_r``);
2. runs the contiguous-trail search for each;
3. certifies livelock-freedom for **all** K when no support yields a
   trail, and otherwise answers *unknown* (the condition is sufficient
   only — a found trail may be spurious, see sum-not-two in Section 6.2).

On bidirectional rings the same machinery certifies absence of
*contiguous* livelocks only (Section 5's closing remark); the report says
so explicitly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.pseudolivelock import (
    SupportExplosion,
    pseudo_livelock_supports,
)
from repro.core.selfdisabling import is_self_disabling, is_self_terminating
from repro.core.trail import ContiguousTrailSearcher, TrailWitness
from repro.errors import AssumptionViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


class LivelockVerdict(enum.Enum):
    """Outcome of the Theorem 5.14 analysis."""

    CERTIFIED_FREE = "certified-livelock-free"
    """No pseudo-livelock support forms a contiguous trail: livelock-free
    for every ring size (for unidirectional rings; contiguous-livelock-free
    for bidirectional ones)."""

    UNKNOWN = "unknown"
    """Some support forms a contiguous trail; the sufficient condition
    cannot conclude.  The witnesses may or may not be real livelocks —
    check concrete sizes with :mod:`repro.checker`."""


@dataclass(frozen=True)
class LivelockReport:
    """Result of the parameterized livelock analysis."""

    verdict: LivelockVerdict
    supports_checked: int
    trail_witnesses: tuple[TrailWitness, ...]
    contiguous_only: bool
    """True on bidirectional rings: the verdict covers only contiguous
    livelocks (Theorem 5.14's scope there)."""
    note: str = ""
    """Human-readable caveat, e.g. when support enumeration was cut off
    and the verdict degraded to a conservative UNKNOWN."""

    @property
    def certified(self) -> bool:
        """Whether livelock-freedom is certified for all K."""
        return (self.verdict is LivelockVerdict.CERTIFIED_FREE
                and not self.contiguous_only)


class LivelockCertifier:
    """Runs the Theorem 5.14 sufficient condition on a protocol."""

    def __init__(self, protocol: "RingProtocol",
                 max_ring_size: int = 9,
                 require_self_disabling: bool = True) -> None:
        self.protocol = protocol
        self.max_ring_size = max_ring_size
        self.require_self_disabling = require_self_disabling

    def analyze(self) -> LivelockReport:
        """Run the analysis; raises :class:`AssumptionViolation` when the
        protocol breaks Assumption 1/2 (use
        :func:`repro.core.selfdisabling.make_self_disabling` first)."""
        space = self.protocol.space
        if self.require_self_disabling:
            if not is_self_terminating(space):
                raise AssumptionViolation(
                    f"protocol {self.protocol.name!r} is not "
                    f"self-terminating (Assumption 1)")
            if not is_self_disabling(space):
                raise AssumptionViolation(
                    f"protocol {self.protocol.name!r} has self-enabling "
                    f"local transitions (Assumption 2); apply "
                    f"make_self_disabling() first")

        try:
            supports = pseudo_livelock_supports(space.transitions)
        except SupportExplosion as explosion:
            # Too many candidate supports to examine: degrade to the
            # (sound) conservative answer.
            return LivelockReport(
                verdict=LivelockVerdict.UNKNOWN,
                supports_checked=0,
                trail_witnesses=(),
                contiguous_only=not self.protocol.unidirectional,
                note=str(explosion),
            )
        searcher = ContiguousTrailSearcher(
            self.protocol, max_ring_size=self.max_ring_size)
        witnesses = []
        for support in supports:
            witness = searcher.find_trail(support)
            if witness is not None:
                witnesses.append(witness)

        verdict = (LivelockVerdict.CERTIFIED_FREE if not witnesses
                   else LivelockVerdict.UNKNOWN)
        return LivelockReport(
            verdict=verdict,
            supports_checked=len(supports),
            trail_witnesses=tuple(witnesses),
            contiguous_only=not self.protocol.unidirectional,
        )


def certify_livelock_freedom(protocol: "RingProtocol",
                             max_ring_size: int = 9) -> LivelockReport:
    """Convenience wrapper around :class:`LivelockCertifier`."""
    return LivelockCertifier(protocol,
                             max_ring_size=max_ring_size).analyze()
