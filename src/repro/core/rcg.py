"""The Right Continuation Graph (Definition 4.1).

The RCG has one vertex per local state of the representative process and an
arc ``s1 -> s2`` whenever ``s2`` is a possible local state of the *right
successor* of a process in local state ``s1`` — i.e. the two windows agree
on every ring position they share.

Every global state of a ring of size K corresponds to a closed walk of
length K in the RCG (place the local state of ``P_i`` at step ``i``), and
conversely every closed walk of length K >= window width yields a
consistent global state.  This correspondence is what lets Theorem 4.2
decide deadlock-freedom for *all* K in the local state space.
"""

from __future__ import annotations

from typing import Iterable

from repro.graphs import Digraph
from repro.protocol.localstate import LocalState, LocalStateSpace


def build_rcg(space: LocalStateSpace,
              vertices: Iterable[LocalState] | None = None) -> Digraph:
    """Build the RCG over *vertices* (default: the whole local space).

    When *vertices* is given, the result is the **induced subgraph** of the
    full RCG over those local states — the object Theorem 4.2 inspects when
    *vertices* are the local deadlocks.
    """
    if vertices is None:
        nodes = list(space.states)
    else:
        nodes = list(vertices)
    node_set = set(nodes)
    graph = Digraph(nodes=nodes)
    for source in nodes:
        for target in nodes:
            if space.continues(source, target):
                graph.add_edge(source, target, key="s")
    # All arcs carry the "s" key so the LTG can mix them with t-arcs.
    del node_set
    return graph


def continuation_masks(space: LocalStateSpace) -> list[int]:
    """The RCG adjacency as per-state bitmasks over ``space.states``.

    Entry ``i`` has bit ``j`` set iff ``states[j]`` continues
    ``states[i]`` — the same arcs :func:`build_rcg` materializes, packed
    for the local kernel (:mod:`repro.engine.localkernel`).  Computed in
    one O(n²) pass per protocol instead of per query.
    """
    states = space.states
    masks = []
    for source in states:
        mask = 0
        for j, target in enumerate(states):
            if space.continues(source, target):
                mask |= 1 << j
        masks.append(mask)
    return masks


def closed_walk_to_global_state(walk: list[LocalState],
                                space: LocalStateSpace) -> tuple:
    """Convert a closed RCG walk into the global ring state it encodes.

    ``walk`` lists the local states assigned to ring positions
    ``0 .. K-1`` (the closing arc ``walk[-1] -> walk[0]`` is implicit).
    Returns the global state as a tuple of K owned cells.

    Raises ``ValueError`` when consecutive walk entries (cyclically) are
    not in the continuation relation, or when the walk is shorter than the
    read window (such walks do not describe a ring).
    """
    width = space.process.window_width
    if len(walk) < width:
        raise ValueError(
            f"walk of length {len(walk)} shorter than read window {width}")
    for i, state in enumerate(walk):
        nxt = walk[(i + 1) % len(walk)]
        if not space.continues(state, nxt):
            raise ValueError(
                f"walk step {i}: {nxt} does not continue {state}")
    return tuple(state.own for state in walk)
