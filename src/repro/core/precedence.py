"""Livelock-induced precedence relation (Definition 5.10, Lemma 5.11).

A livelock of a concrete ring instance is a cyclic sequence of global
states.  Its *schedule* is the sequence of (process, local transition)
pairs executed along the cycle.  Definition 5.10 orders two scheduled
transitions ``t_i ≺ t_j`` when

1. executing ``t_i`` *enables* ``t_j`` (``t_i``'s process is the
   predecessor of ``t_j``'s and the execution establishes ``t_j``'s source
   local state), or
2. executing ``t_j`` earlier would *collide* with ``t_i`` (``t_j``'s
   process is the predecessor of ``t_i``'s and ``t_j`` was already enabled
   when ``t_i`` fired), or
3. transitively through an intermediate transition;

and additionally two executions of the same process are ordered by their
schedule positions.  Lemma 5.11 states that every precedence-preserving
permutation of the schedule is again a livelock; this module computes the
relation, the independent pairs, and enumerates the precedence-preserving
schedules.

Our direct rendering of conditions 1–2 is a (sound) *under*-approximation
of the paper's ≺ — it may leave more pairs unordered than the paper
intends — so :func:`precedence_preserving_schedules` replay-validates each
linear extension by default and emits exactly the schedules that are
livelocks.  On Example 5.2 this yields precisely the paper's count of
8 = 2³ permutations (the ground truth: 8 of the 5040 rotations-fixed
permutations replay to a livelock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import TopologyError, VerificationError
from repro.protocol.actions import LocalTransition
from repro.protocol.instance import GlobalState, RingInstance


@dataclass(frozen=True)
class ScheduledTransition:
    """One schedule entry: *process* executes *transition* at *position*."""

    position: int
    process: int
    transition: LocalTransition

    def __str__(self) -> str:
        own = self.transition.source.own, self.transition.target.own

        def fmt(cell):
            return cell[0] if len(cell) == 1 else cell

        return f"t[{fmt(own[0])}→{fmt(own[1])}]^{self.process}"


@dataclass
class PrecedenceRelation:
    """The ≺ relation over a livelock schedule, plus the replay context."""

    instance: RingInstance
    start: GlobalState
    schedule: tuple[ScheduledTransition, ...]
    order: frozenset[tuple[int, int]]
    """Pairs ``(i, j)`` with ``t_i ≺ t_j`` (transitively closed)."""

    @property
    def independent_pairs(self) -> list[tuple[int, int]]:
        """Unordered pairs ``i < j`` with neither ``t_i ≺ t_j`` nor
        ``t_j ≺ t_i``."""
        n = len(self.schedule)
        return [(i, j) for i in range(n) for j in range(i + 1, n)
                if (i, j) not in self.order and (j, i) not in self.order]

    def preserves(self, permutation: Sequence[int]) -> bool:
        """Whether *permutation* (of schedule positions) respects ≺."""
        rank = {pos: k for k, pos in enumerate(permutation)}
        return all(rank[i] < rank[j] for i, j in self.order)


def schedule_of_cycle(instance: RingInstance,
                      cycle: Sequence[GlobalState],
                      ) -> tuple[ScheduledTransition, ...]:
    """Recover the schedule of a state cycle (one process per step).

    ``cycle[k+1]`` (cyclically) must differ from ``cycle[k]`` in exactly
    one process's cell, and the change must be an enabled local transition.
    """
    schedule = []
    n = len(cycle)
    for k in range(n):
        state, nxt = cycle[k], cycle[(k + 1) % n]
        changed = [r for r in range(instance.size) if state[r] != nxt[r]]
        if len(changed) != 1:
            raise VerificationError(
                f"cycle step {k} changes {len(changed)} processes; "
                f"interleaving semantics requires exactly one")
        process = changed[0]
        source = instance.local_state(state, process)
        target = instance.local_state(nxt, process)
        # Everything in the source window except offset 0 must be stable.
        transition = LocalTransition(source, source.replace_own(target.own),
                                     label=f"step{k}")
        if not any(move.target == nxt
                   for move in instance.moves_of(state, process)):
            raise VerificationError(
                f"cycle step {k} is not an enabled move of process "
                f"{process}")
        schedule.append(ScheduledTransition(k, process, transition))
    return tuple(schedule)


def precedence_relation(instance: RingInstance,
                        cycle: Sequence[GlobalState]) -> PrecedenceRelation:
    """Compute ≺ for a livelock *cycle* of a unidirectional ring."""
    if not instance.protocol.unidirectional:
        raise TopologyError("the precedence relation of Definition 5.10 "
                            "is defined for unidirectional rings")
    schedule = schedule_of_cycle(instance, cycle)
    n = len(schedule)
    size = instance.size

    # states_before[k] = global state immediately before schedule step k.
    states_before = list(cycle)

    def holds(state: GlobalState, entry: ScheduledTransition) -> bool:
        return instance.local_state(state, entry.process) == \
            entry.transition.source

    direct: set[tuple[int, int]] = set()
    for i in range(n):
        for j in range(i + 1, n):
            pi, pj = schedule[i].process, schedule[j].process
            if pi == pj:
                direct.add((i, j))
            elif (pi + 1) % size == pj:
                # Does executing step i establish t_j's source state?
                before = holds(states_before[i], schedule[j])
                after = holds(states_before[(i + 1) % n], schedule[j])
                if after and not before:
                    direct.add((i, j))
            elif (pj + 1) % size == pi:
                # t_j at the predecessor of p_i: running it before step i
                # (when it was already enabled) would collide with t_i.
                if holds(states_before[i], schedule[j]):
                    direct.add((i, j))

    closed = _transitive_closure(direct, n)
    return PrecedenceRelation(instance=instance, start=cycle[0],
                              schedule=schedule,
                              order=frozenset(closed))


def _transitive_closure(pairs: set[tuple[int, int]],
                        n: int) -> set[tuple[int, int]]:
    reach = {i: {j for (a, j) in pairs if a == i} for i in range(n)}
    changed = True
    while changed:
        changed = False
        for i in range(n):
            extra = set()
            for j in reach[i]:
                extra |= reach[j] - reach[i]
            if extra:
                reach[i] |= extra
                changed = True
    return {(i, j) for i in range(n) for j in reach[i]}


def replay(instance: RingInstance, start: GlobalState,
           schedule: Sequence[ScheduledTransition],
           permutation: Sequence[int]) -> list[GlobalState] | None:
    """Replay the schedule in permuted order; ``None`` when invalid.

    Validity: every step's local transition is enabled when its turn
    comes, and the final state equals *start* (so the permuted schedule is
    again a livelock cycle).  Returns the visited states (length
    ``len(schedule)``, starting at *start*).
    """
    state = start
    visited = [start]
    for position in permutation:
        entry = schedule[position]
        if instance.local_state(state, entry.process) != \
                entry.transition.source:
            return None
        cells = list(state)
        cells[entry.process] = entry.transition.target.own
        state = tuple(cells)
        visited.append(state)
    if state != start:
        return None
    return visited[:-1]


def precedence_preserving_schedules(
        relation: PrecedenceRelation,
        fix_first: bool = True,
        validate: bool = True) -> Iterator[tuple[int, ...]]:
    """Enumerate precedence-preserving permutations of the schedule.

    The schedule of a livelock is defined up to cyclic rotation, so by
    default the first transition is pinned (the paper fixes the "starting"
    local transition to make class membership well-defined).  With
    ``validate=True`` each permutation is replayed and silently dropped if
    the replay fails — by Lemma 5.11 none should ever be dropped, and the
    test suite asserts exactly that.
    """
    n = len(relation.schedule)
    order = relation.order
    predecessors: dict[int, set[int]] = {j: set() for j in range(n)}
    for i, j in order:
        predecessors[j].add(i)

    first = [0] if fix_first else list(range(n))

    def extend(chosen: list[int], remaining: set[int],
               ) -> Iterator[tuple[int, ...]]:
        if not remaining:
            yield tuple(chosen)
            return
        placed = set(chosen)
        for candidate in sorted(remaining):
            if predecessors[candidate] <= placed:
                chosen.append(candidate)
                yield from extend(chosen, remaining - {candidate})
                chosen.pop()

    for start in first:
        if predecessors[start] and fix_first:
            # The pinned first element must be minimal; for livelock
            # schedules position 0 always is (nothing precedes it within
            # one period once rotation is fixed).
            if predecessors[start]:
                continue
        for permutation in extend([start], set(range(n)) - {start}):
            if validate:
                if replay(relation.instance, relation.start,
                          relation.schedule, permutation) is None:
                    continue
            yield permutation
