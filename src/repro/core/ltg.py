"""The Local Transition Graph (Definition 5.3).

The LTG augments the Right Continuation Graph with the local transitions of
the representative process:

* **s-arcs** carry the continuation relation (key ``"s"``),
* **t-arcs** carry local transitions (keyed by the
  :class:`~repro.protocol.actions.LocalTransition` itself).

Global computations of a unidirectional ring project onto the LTG as
alternations of t-arcs (a process executes) and s-arcs (control passes to
the successor's local state) — the structure exploited by the
contiguous-trail search of Lemma 5.12.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.rcg import build_rcg
from repro.graphs import Digraph
from repro.protocol.actions import LocalTransition
from repro.protocol.localstate import LocalState, LocalStateSpace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol

S_ARC = "s"
"""Edge key marking continuation (s) arcs."""


def build_ltg(space: LocalStateSpace,
              transitions: Iterable[LocalTransition] | None = None,
              ) -> Digraph:
    """Build the LTG over the full local state space.

    *transitions* defaults to the transition set ``δ_r`` induced by the
    process actions; synthesis passes candidate t-arc sets explicitly.
    """
    graph = build_rcg(space)
    if transitions is None:
        transitions = space.transitions
    for transition in transitions:
        graph.add_edge(transition.source, transition.target, key=transition)
    return graph


def t_arcs(graph: Digraph) -> list[LocalTransition]:
    """All t-arcs of an LTG (edge keys that are local transitions)."""
    return [key for _s, _t, key in graph.edges()
            if isinstance(key, LocalTransition)]


def s_successors(graph: Digraph, state: LocalState) -> list[LocalState]:
    """States reachable from *state* via one s-arc."""
    return [target for target in graph.successors(state)
            if S_ARC in graph.edge_keys(state, target)]


def t_successors(graph: Digraph,
                 state: LocalState) -> list[tuple[LocalTransition,
                                                  LocalState]]:
    """(transition, target) pairs for t-arcs leaving *state*."""
    result = []
    for target in graph.successors(state):
        for key in graph.edge_keys(state, target):
            if isinstance(key, LocalTransition):
                result.append((key, target))
    return result


def indexed_arcs(space: LocalStateSpace,
                 transitions: Iterable[LocalTransition],
                 ) -> list[tuple[int, int]]:
    """t-arcs as ``(source index, target index)`` pairs, sorted.

    The integer encoding the local kernel searches over; indices follow
    ``space.states`` order (the sorted order of local states).
    """
    return sorted((space.index(t.source), space.index(t.target))
                  for t in transitions)


def ltg_of(protocol: "RingProtocol") -> Digraph:
    """The LTG of a protocol (actions' transitions as t-arcs)."""
    return build_ltg(protocol.space)
