"""Parameterized deadlock-freedom (Theorem 4.2).

A parameterized ring protocol ``p(K)`` has a global deadlock outside
``I(K)`` for *some* K **iff** the RCG induced over the local deadlocks of
the representative process contains a directed cycle through an
illegitimate local deadlock.

Beyond the boolean verdict, this module extracts:

* the offending cycles (the witnesses of Example 4.3, Figure 3),
* concrete deadlocked global states built from those cycles,
* the exact set of ring sizes that can deadlock (closed-walk lengths
  through illegitimate deadlocks) — note that, because closed walks may
  combine several cycles, this set is the *numerical-semigroup closure* of
  the cycle lengths anchored at shared vertices, not merely their
  multiples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.rcg import build_rcg
from repro.graphs import Digraph, simple_cycles
from repro.graphs.scc import masked_cyclic_mask
from repro.graphs.walks import closed_walk_lengths
from repro.protocol.localstate import LocalState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.ring import RingProtocol


@dataclass(frozen=True)
class DeadlockReport:
    """Outcome of the parameterized deadlock analysis.

    Attributes
    ----------
    deadlock_free:
        ``True`` iff ``p(K)`` has no global deadlock outside ``I(K)`` for
        any ``K`` (Theorem 4.2; exact, both directions).
    local_deadlocks:
        All local deadlock states of the representative process.
    illegitimate_deadlocks:
        The subset of local deadlocks violating ``LC_r``.
    witness_cycles:
        Simple cycles of the deadlock-induced RCG through an illegitimate
        deadlock (empty when deadlock-free).  Each cycle of length ``n``
        describes global deadlocks for every ring size that is a
        combination of available cycle lengths; at minimum, all multiples
        of ``n``.
    induced_rcg:
        The RCG induced over the local deadlocks.
    """

    deadlock_free: bool
    local_deadlocks: tuple[LocalState, ...]
    illegitimate_deadlocks: tuple[LocalState, ...]
    witness_cycles: tuple[tuple[LocalState, ...], ...]
    induced_rcg: Digraph = field(compare=False)

    def witness_state(self, cycle_index: int = 0,
                      repetitions: int = 1) -> tuple:
        """A concrete deadlocked global state from a witness cycle.

        The cycle is repeated *repetitions* times, giving a ring of size
        ``len(cycle) * repetitions``.  Raises ``ValueError`` when the
        resulting ring would be smaller than the read window (repeat more).
        """
        cycle = self.witness_cycles[cycle_index]
        walk = list(cycle) * repetitions
        return tuple(state.own for state in walk)


class DeadlockAnalyzer:
    """Decides deadlock-freedom of a ring protocol for every ring size."""

    def __init__(self, protocol: "RingProtocol",
                 max_witnesses: int = 32,
                 max_cycle_length: int = 24) -> None:
        self.protocol = protocol
        self.max_witnesses = max_witnesses
        self.max_cycle_length = max_cycle_length
        self._report: DeadlockReport | None = None

    # ------------------------------------------------------------------
    def analyze(self) -> DeadlockReport:
        """Run (or return the cached) analysis."""
        if self._report is not None:
            return self._report
        space = self.protocol.space
        deadlocks = space.deadlocks()
        illegitimate = tuple(s for s in deadlocks
                             if not self.protocol.is_legitimate(s))
        induced = build_rcg(space, vertices=deadlocks)

        offending: list[tuple[LocalState, ...]] = []
        bad_set = set(illegitimate)
        # A cycle through an illegitimate deadlock exists iff some cyclic
        # SCC of the induced RCG contains an illegitimate deadlock —
        # decided with one masked SCC pass over the bit-packed adjacency
        # (the local kernel's Theorem 4.2 primitive).
        index = {state: i for i, state in enumerate(deadlocks)}
        succ_masks = [0] * len(deadlocks)
        for source, target, _key in induced.edges():
            succ_masks[index[source]] |= 1 << index[target]
        bad_mask = 0
        for state in illegitimate:
            bad_mask |= 1 << index[state]
        alive = (1 << len(deadlocks)) - 1
        has_bad_cycle = bool(
            masked_cyclic_mask(succ_masks, alive) & bad_mask)
        if has_bad_cycle:
            for cycle in simple_cycles(induced,
                                       max_length=self.max_cycle_length):
                if any(node in bad_set for node in cycle):
                    offending.append(tuple(cycle))
                    if len(offending) >= self.max_witnesses:
                        break

        self._report = DeadlockReport(
            deadlock_free=not has_bad_cycle,
            local_deadlocks=deadlocks,
            illegitimate_deadlocks=illegitimate,
            witness_cycles=tuple(offending),
            induced_rcg=induced,
        )
        return self._report

    # ------------------------------------------------------------------
    def deadlocked_ring_sizes(self, upto: int) -> set[int]:
        """Exact ring sizes ``K <= upto`` with a global deadlock in ``¬I``.

        Computed as the lengths of closed walks of the deadlock-induced RCG
        through an illegitimate local deadlock, restricted to sizes at
        least the read-window width (smaller rings are degenerate).
        """
        report = self.analyze()
        lengths = closed_walk_lengths(
            report.induced_rcg, report.illegitimate_deadlocks, upto)
        width = self.protocol.process.window_width
        return {k for k in lengths if k >= width}

    def resolve_candidates(self, max_sets: int | None = None,
                           stats=None) -> list[frozenset[LocalState]]:
        """Minimal sets of illegitimate deadlocks whose resolution yields
        deadlock-freedom for all K (the ``Resolve`` sets of Section 6.1).

        Each returned set is a minimal feedback vertex set of the
        deadlock-induced RCG, drawn from ``¬LC_r``, breaking every cycle
        that passes through an illegitimate deadlock.  *max_sets* bounds
        the enumeration (the branch-and-bound search stops as soon as
        that many minimal sets are found); *stats* is an optional
        :class:`repro.graphs.fvs.FvsStats` accumulating search counters.
        """
        from repro.graphs import minimal_feedback_vertex_sets

        report = self.analyze()
        return list(minimal_feedback_vertex_sets(
            report.induced_rcg,
            allowed=report.illegitimate_deadlocks,
            bad=report.illegitimate_deadlocks,
            max_sets=max_sets,
            stats=stats,
        ))


def analyze_deadlocks(protocol: "RingProtocol") -> DeadlockReport:
    """Convenience wrapper: run the Theorem 4.2 analysis on *protocol*."""
    return DeadlockAnalyzer(protocol).analyze()
