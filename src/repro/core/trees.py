"""Exact deadlock analysis on rooted trees (parent-reading processes).

A global tree state assigns every node a local state such that each
child's parent-cell equals its parent's own cell — i.e. every
parent→child edge is an arc of the **RCG**, with the root's local state
boundary-consistent.  Hence:

* a tree shape T has a global deadlock outside ``I`` **iff** the
  deadlock-induced RCG admits an assignment along T (each node a local
  deadlock, edges continuation-consistent, root boundary-consistent)
  with at least one illegitimate node — decided exactly by a bottom-up
  DP over T (:meth:`TreeDeadlockAnalyzer.analyze_shape`);
* a deadlock exists for *some* tree shape iff it exists for some chain
  (a path is a tree; conversely an illegitimate node of a deadlocked
  tree sits on a root path that is a bad chain witness) — so the
  any-shape question reduces to :class:`ChainDeadlockAnalyzer`
  (:meth:`TreeDeadlockAnalyzer.deadlock_free_for_all_trees`).

Livelocks: enablement flows parent→child only, the root can never be
re-enabled; by the chain termination argument every execution of a
self-disabling tree protocol terminates (each node executes at most
``depth + 1`` times).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.chains import ChainDeadlockAnalyzer, \
    certify_chain_termination
from repro.core.rcg import build_rcg
from repro.errors import TopologyError
from repro.protocol.chain import ChainProtocol
from repro.protocol.localstate import LocalState
from repro.protocol.tree import validate_parents


@dataclass(frozen=True)
class TreeShapeReport:
    """Exact verdict for one tree shape."""

    deadlock_free: bool
    witness: tuple[LocalState, ...] | None
    """Per-node local deadlock assignment (index-aligned with the parent
    vector) when a bad deadlock exists."""


class TreeDeadlockAnalyzer:
    """Deadlock analysis for parent-reading tree protocols."""

    def __init__(self, protocol: ChainProtocol) -> None:
        if not protocol.unidirectional or \
                protocol.process.reads_left != 1:
            raise TopologyError(
                "tree analysis needs a (parent, self) read window")
        self.protocol = protocol
        space = protocol.space
        self._deadlocks = set(space.deadlocks())
        self._bad = {s for s in self._deadlocks
                     if not protocol.is_legitimate(s)}
        self._rcg = build_rcg(space, vertices=tuple(self._deadlocks))

    # ------------------------------------------------------------------
    def deadlock_free_for_all_trees(self) -> bool:
        """Whether no tree shape of any size can deadlock outside I.

        Equivalent to chain deadlock-freedom (paths are trees; a bad
        tree contains a bad root path).
        """
        return ChainDeadlockAnalyzer(self.protocol).analyze() \
            .deadlock_free

    # ------------------------------------------------------------------
    def analyze_shape(self,
                      parents: Sequence[int | None]) -> TreeShapeReport:
        """Exact per-shape analysis via bottom-up DP.

        For each node, compute the set of local deadlocks it can take
        such that its whole subtree is assignable, remembering for each
        whether the subtree can contain an illegitimate node.
        """
        parents = tuple(parents)
        root = validate_parents(parents)
        children: dict[int, list[int]] = {i: [] for i in range(len(
            parents))}
        for i, parent in enumerate(parents):
            if parent is not None:
                children[parent].append(i)

        # feasible[node] : dict[LocalState, bool] — state -> "subtree
        # can be made to include an illegitimate node".
        feasible: dict[int, dict[LocalState, bool]] = {}

        def solve(node: int) -> None:
            for child in children[node]:
                solve(child)
            table: dict[LocalState, bool] = {}
            for state in self._deadlocks:
                can_bad = state in self._bad
                ok = True
                for child in children[node]:
                    options = [s for s in feasible[child]
                               if self.protocol.space.continues(state, s)]
                    if not options:
                        ok = False
                        break
                    if any(feasible[child][s] for s in options):
                        can_bad = True
                if ok:
                    table[state] = can_bad
            feasible[node] = table

        solve(root)
        root_options = {
            state: bad for state, bad in feasible[root].items()
            if self.protocol.boundary_consistent_left(state)
        }
        if not any(root_options.values()):
            return TreeShapeReport(deadlock_free=True, witness=None)

        witness = self._extract_witness(parents, children, feasible,
                                        root, root_options)
        return TreeShapeReport(deadlock_free=False, witness=witness)

    # ------------------------------------------------------------------
    def _extract_witness(self, parents, children, feasible, root,
                         root_options) -> tuple[LocalState, ...]:
        """Materialize one bad assignment from the DP tables."""
        assignment: dict[int, LocalState] = {}
        need_bad = {root: True}

        def pick(node: int, allowed, want_bad: bool) -> None:
            choices = [s for s in allowed
                       if not want_bad or feasible[node][s]]
            state = sorted(choices)[0]
            assignment[node] = state
            # Distribute the "must contain a bad node" obligation.
            remaining_bad = want_bad and state not in self._bad
            for child in children[node]:
                options = [s for s in feasible[child]
                           if self.protocol.space.continues(state, s)]
                child_bad = (remaining_bad
                             and any(feasible[child][s] for s in options))
                if child_bad:
                    remaining_bad = False
                pick(child, options, child_bad)

        pick(root, list(root_options), True)
        return tuple(assignment[i] for i in range(len(parents)))

    def witness_state(self, parents: Sequence[int | None]):
        """A concrete deadlocked global tree state, or ``None``."""
        report = self.analyze_shape(parents)
        if report.witness is None:
            return None
        return tuple(state.own for state in report.witness)


def certify_tree_termination(protocol: ChainProtocol) -> int:
    """Every execution on every tree shape terminates (self-disabling,
    parent-reading): node executions are bounded by depth + 1."""
    return certify_chain_termination(protocol)
