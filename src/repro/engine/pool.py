"""Process-pool fan-out with deterministic ordering and serial fallback.

The analyses parallelised here (per-K sweep instances, per-support trail
searches, per-protocol fuzzing audits) share one obstacle: protocols may
carry arbitrary Python callables as legitimacy predicates, which do not
pickle.  :func:`run_work_items` therefore relies on the ``fork`` start
method — the worker payload (*worker*, *context*, *items*) is published
in module globals **before** the pool starts and inherited by the forked
children for free; only compact item indices cross the pipe going in,
and only the (picklable) analysis reports come back.

Guarantees:

* results are returned in item order regardless of completion order, so
  a parallel run is indistinguishable from a serial one;
* ``jobs=1``, a single work item, a platform without ``fork``, or any
  pool-level failure (result pickling, broken pool) falls back to the
  plain serial loop — parallelism is an optimisation, never a
  requirement;
* worker exceptions surface with their original traceback (the serial
  fallback re-raises them synchronously).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

# Inherited by forked workers; never meaningful in the parent between
# run_work_items calls.
_WORKER: Callable[[Any, Any], Any] | None = None
_CONTEXT: Any = None
_ITEMS: Sequence[Any] = ()


def parallelism_available() -> bool:
    """Whether the fork-based pool can run on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


def _run_indexed(index: int) -> Any:
    assert _WORKER is not None
    return _WORKER(_CONTEXT, _ITEMS[index])


def run_work_items(worker: Callable[[Any, Item], Result],
                   items: Iterable[Item],
                   jobs: int = 1,
                   context: Any = None) -> list[Result]:
    """Apply ``worker(context, item)`` to every item, results in order.

    *worker* must be a module-level function (it is looked up by
    qualified name in the children); *context* and *items* may hold
    unpicklable objects, but each **result** must pickle — an
    unpicklable result silently degrades the whole batch to serial.
    Workers must not call :func:`run_work_items` with ``jobs > 1``
    themselves (pool children are daemonic and cannot fork again).
    """
    work = list(items)
    if jobs <= 1 or len(work) <= 1 or not parallelism_available():
        return [worker(context, item) for item in work]

    global _WORKER, _CONTEXT, _ITEMS
    _WORKER, _CONTEXT, _ITEMS = worker, context, work
    try:
        pool_context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(max_workers=min(jobs, len(work)),
                                 mp_context=pool_context) as pool:
            return list(pool.map(_run_indexed, range(len(work))))
    except Exception:
        # A worker exception aborts the pool without a usable traceback
        # across some failure modes (and result-pickling errors look the
        # same); recomputing serially either produces the results or
        # re-raises the real error in the parent.
        return [worker(context, item) for item in work]
    finally:
        _WORKER, _CONTEXT, _ITEMS = None, None, ()
