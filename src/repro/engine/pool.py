"""Process-pool fan-out with deterministic ordering and serial fallback.

The analyses parallelised here (per-K sweep instances, per-support trail
searches, per-protocol fuzzing audits) share one obstacle: protocols may
carry arbitrary Python callables as legitimacy predicates, which do not
pickle.  :func:`run_work_items` therefore relies on the ``fork`` start
method — the worker payload (*worker*, *context*, *items*) is published
in module globals **before** the pool starts and inherited by the forked
children for free; only compact item indices cross the pipe going in,
and only the (picklable) analysis reports come back.

Guarantees:

* results are returned in item order regardless of completion order, so
  a parallel run is indistinguishable from a serial one;
* ``jobs=1``, a single work item, a platform without ``fork``, or any
  pool-level failure (result pickling, broken pool) falls back to the
  plain serial loop — parallelism is an optimisation, never a
  requirement.  Every fallback is recorded: the machine-readable reason
  goes out as a ``pool-fallback`` observability event and bumps the
  ``pool.fallbacks`` counter (both on the ambient run and on the
  caller's ``stats``), and the exception path additionally raises a
  :class:`RuntimeWarning` — degradation is never silent;
* a worker exception is captured *in the worker* together with its
  formatted traceback and re-raised in the parent with that remote
  traceback chained as ``__cause__`` (a :class:`WorkerTraceback`) — the
  failing frame inside the worker stays visible, and the batch is not
  recomputed serially just to reproduce a deterministic error;
* spans and metrics recorded inside the forked workers are captured per
  item (:func:`repro.obs.runtime.fork_capture_begin` /
  :func:`~repro.obs.runtime.fork_capture_end`), shipped back with each
  result, and re-parented as ``item[i]`` subtrees under the
  dispatching ``pool.map`` span, so a parallel run still yields one
  coherent trace.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence, TypeVar

import repro.engine.artifacts as artifact_plane
from repro.obs import live
from repro.obs import runtime as obs

Item = TypeVar("Item")
Result = TypeVar("Result")

#: Environment override for the dispatch start method.  ``spawn``
#: forces every fork-only path into its fallback (and lets portable
#: contexts exercise spawn dispatch on platforms that *do* have fork —
#: how the benchmarks measure spawn-mode parity on Linux); ``fork``
#: pins fork.  Unset picks fork whenever the platform offers it.
START_METHOD_ENV = "REPRO_START_METHOD"


@dataclass(frozen=True)
class PortableContext:
    """A picklable recipe for rebuilding a worker context after spawn.

    Fork workers inherit *worker*/*context*/*items* through module
    globals; spawn workers get nothing for free, and the live contexts
    (protocols carrying closure predicates) do not pickle.  A
    ``PortableContext`` carries a module-level *builder* (pickled by
    qualified name) plus a picklable *payload* — e.g. the
    ``protocol_to_dict`` form of a DSL protocol — from which the
    spawned worker rebuilds the context once at startup.  Callers pass
    one only when their context genuinely round-trips; everything else
    keeps the serial no-fork fallback.
    """

    builder: Callable[[Any], Any]
    payload: Any = None

    def build(self) -> Any:
        return self.builder(self.payload)


class WorkerTraceback(Exception):
    """The formatted traceback of an exception raised inside a worker
    process, chained as ``__cause__`` under the re-raised exception so
    the remote frames survive the process boundary (the pattern of
    :mod:`concurrent.futures`' ``_RemoteTraceback``, made explicit)."""

    def __init__(self, text: str) -> None:
        super().__init__(text)
        self.text = text

    def __str__(self) -> str:
        return f"\n\"\"\"\n{self.text}\"\"\""


class WorkerFailure:
    """A worker exception captured at the raise site (picklable).

    Carries the original exception object when it pickles, and always
    the formatted remote traceback; :meth:`reraise` rebuilds the error
    in the parent with the worker frames chained.
    """

    __slots__ = ("exception", "traceback_text", "description")

    def __init__(self, exception: BaseException | None,
                 traceback_text: str, description: str) -> None:
        self.exception = exception
        self.traceback_text = traceback_text
        self.description = description

    @classmethod
    def capture(cls, exc: BaseException) -> "WorkerFailure":
        text = "".join(traceback.format_exception(
            type(exc), exc, exc.__traceback__))
        return cls(exc, text, f"{type(exc).__name__}: {exc}")

    def reraise(self) -> None:
        cause = WorkerTraceback(self.traceback_text)
        if self.exception is not None:
            raise self.exception from cause
        raise RuntimeError(
            f"worker raised an unpicklable exception "
            f"({self.description})") from cause

    def __reduce__(self):
        # The exception object may itself refuse to pickle; degrade to
        # a traceback-only failure rather than poisoning the pipe.
        # Pickleability is probed here, lazily, and the probe's output
        # is shipped as the payload: the old probe-then-repickle path
        # serialized every exception twice per pipe crossing, and the
        # parent-side rebuild now also survives payloads that pickle
        # but refuse to *unpickle*.
        try:
            payload = pickle.dumps(self.exception)
        except Exception:
            payload = None
        return (_rebuild_failure,
                (payload, self.traceback_text, self.description))


def _rebuild_failure(payload: bytes | None, traceback_text: str,
                     description: str) -> WorkerFailure:
    """Parent-side reconstructor for a pickled :class:`WorkerFailure`."""
    exception = None
    if payload is not None:
        try:
            exception = pickle.loads(payload)
        except Exception:
            exception = None
    return WorkerFailure(exception, traceback_text, description)

# Inherited by forked workers; never meaningful in the parent between
# run_work_items calls.
_WORKER: Callable[[Any, Any], Any] | None = None
_CONTEXT: Any = None
_ITEMS: Sequence[Any] = ()


def start_method() -> str | None:
    """The effective dispatch start method (``fork``/``spawn``/``None``).

    Respects ``REPRO_START_METHOD`` when it names an available method;
    otherwise fork wins whenever the platform offers it (spawn dispatch
    needs a :class:`PortableContext`, so it is never the silent
    default).
    """
    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get(START_METHOD_ENV, "").strip().lower()
    if forced in ("fork", "spawn"):
        return forced if forced in methods else None
    if "fork" in methods:
        return "fork"
    return "spawn" if "spawn" in methods else None


def parallelism_available() -> bool:
    """Whether the fork-based pool can run on this platform."""
    return start_method() == "fork"


def spawn_dispatch_available() -> bool:
    """Whether portable-context spawn dispatch can run here."""
    return "spawn" in multiprocessing.get_all_start_methods()


def _spawn_init(worker: Callable[[Any, Any], Any],
                portable: PortableContext | None,
                items: Sequence[Any],
                artifact_spec: tuple[str, str] | None) -> None:
    """Bootstrap one spawned pool worker.

    Rebuilds what a forked worker would have inherited: the worker
    payload globals, the ambient artifact store (so compiled kernels
    are attached by fingerprint instead of recompiled per worker) and
    an observability run so per-item captures flow back to the parent.
    """
    global _WORKER, _CONTEXT, _ITEMS
    artifact_plane.activate_from_spec(artifact_spec)
    if obs.active() is None:
        obs.start("spawn-worker")
    _WORKER = worker
    _CONTEXT = portable.build() if portable is not None else None
    _ITEMS = items


def _run_indexed(index: int) -> tuple[Any, "obs.ChildCapture | None"]:
    assert _WORKER is not None
    inherited = obs.fork_capture_begin()
    try:
        try:
            outcome: Any = ("ok", _WORKER(_CONTEXT, _ITEMS[index]))
        except BaseException as exc:
            # Capture here, where the remote frames still exist: the
            # executor's own propagation loses them across some failure
            # modes (and entirely before the fork-capture handshake).
            outcome = ("failed", WorkerFailure.capture(exc))
    finally:
        capture = obs.fork_capture_end(inherited)
    return outcome, capture


def _record_fallback(stats: Any, reason: str, items: int) -> None:
    """A serial fallback happened: leave a machine-readable trail."""
    expected = reason in ("jobs<=1", "single-item")
    obs.event("pool-fallback", level="info" if expected else "warning",
              reason=reason, items=items)
    obs.metric("pool.fallbacks")
    if stats is not None:
        stats.pool_fallbacks += 1


# (run identity, cause) pairs that already raised a RuntimeWarning: a
# sweep whose every batch degrades for the same reason warns once per
# run instead of once per batch.  The per-occurrence `pool-fallback`
# events and `pool.fallbacks` counters are NOT deduplicated — only the
# stderr noise is.  The run identity pairs the ambient run's id() with
# its start stamp so a recycled id() cannot suppress a fresh run's
# first warning; with no run active, dedup is process-wide per cause
# until :func:`reset_fallback_warnings`.
_WARNED_FALLBACKS: set[tuple] = set()


def reset_fallback_warnings() -> None:
    """Forget which (run, cause) pairs have warned (CLI entry, tests)."""
    _WARNED_FALLBACKS.clear()


def _warn_fallback_once(message: str, cause: str) -> None:
    run = obs.active()
    key = ((id(run), run.started, cause) if run is not None
           else (None, None, cause))
    if key in _WARNED_FALLBACKS:
        return
    _WARNED_FALLBACKS.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


def _run_serial(worker: Callable[[Any, Item], Result],
                work: Sequence[Item], context: Any,
                stats: Any, reason: str) -> list[Result]:
    _record_fallback(stats, reason, len(work))
    with obs.span("pool.serial", reason=reason, items=len(work)):
        results = []
        for item in work:
            results.append(worker(context, item))
            live.note(done=1)
            live.tick()
        return results


def run_work_items(worker: Callable[[Any, Item], Result],
                   items: Iterable[Item],
                   jobs: int = 1,
                   context: Any = None,
                   stats: Any = None,
                   portable: PortableContext | None = None) -> list[Result]:
    """Apply ``worker(context, item)`` to every item, results in order.

    *worker* must be a module-level function (it is looked up by
    qualified name in the children); *context* and *items* may hold
    unpicklable objects, but each **result** must pickle — an
    unpicklable result degrades the whole batch to serial (and says so,
    see the module docstring).  Workers must not call
    :func:`run_work_items` with ``jobs > 1`` themselves (pool children
    are daemonic and cannot fork again).

    *stats*, when given, is an :class:`repro.engine.EngineStats`: the
    pool sets ``stats.parallel`` when it actually ran and counts every
    serial fallback in ``stats.pool_fallbacks``.

    *portable*, when given, unlocks spawn dispatch on platforms (or
    under ``REPRO_START_METHOD=spawn``) where fork is unavailable: the
    spawned workers rebuild the context from the portable recipe,
    re-activate the ambient artifact store and attach compiled kernels
    by fingerprint instead of recompiling.  Items must then pickle too;
    any spawn-path failure still degrades to the serial loop.
    """
    work = list(items)
    live.begin_stage(getattr(worker, "__name__", "pool.map"),
                     total=len(work))
    if jobs <= 1:
        return _run_serial(worker, work, context, stats, "jobs<=1")
    if len(work) <= 1:
        return _run_serial(worker, work, context, stats, "single-item")
    method = start_method()
    if method != "fork" and not (method == "spawn"
                                 and portable is not None):
        return _run_serial(worker, work, context, stats, "no-fork")

    global _WORKER, _CONTEXT, _ITEMS
    if method == "fork":
        _WORKER, _CONTEXT, _ITEMS = worker, context, work
        initializer, initargs = None, ()
    else:
        store = artifact_plane.ambient()
        initializer = _spawn_init
        initargs = (worker, portable, work,
                    store.spec() if store is not None else None)
    try:
        pool_context = multiprocessing.get_context(method)
        failure: WorkerFailure | None = None
        with obs.span("pool.map", jobs=jobs, items=len(work),
                      method=method):
            with ProcessPoolExecutor(max_workers=min(jobs, len(work)),
                                     mp_context=pool_context,
                                     initializer=initializer,
                                     initargs=initargs) as pool:
                outcomes = []
                for outcome in pool.map(_run_indexed,
                                        range(len(work))):
                    outcomes.append(outcome)
                    live.note(done=1)
                    live.tick()
            results = []
            for index, ((status, value), capture) in enumerate(outcomes):
                obs.adopt_child(capture, f"item[{index}]")
                if status == "failed" and failure is None:
                    failure = value
                results.append(value)
    except Exception as exc:
        # Pool-level failures only (result pickling, broken pool, a
        # worker killed hard enough to break the executor): recomputing
        # serially either produces the results or re-raises the real
        # error in the parent.  Ordinary worker exceptions never reach
        # here — they come back as WorkerFailure values.
        reason = f"pool-error:{type(exc).__name__}"
        _warn_fallback_once(
            f"process pool failed ({type(exc).__name__}: {exc}); "
            f"recomputing {len(work)} work items serially",
            reason)
        return _run_serial(worker, work, context, stats, reason)
    finally:
        _WORKER, _CONTEXT, _ITEMS = None, None, ()
    if failure is not None:
        # Outside the except-scope on purpose: the worker's error must
        # not be mistaken for a pool-level failure (which would trigger
        # a pointless serial recompute of a deterministic exception).
        failure.reraise()
    if stats is not None:
        stats.parallel = True
    return results
