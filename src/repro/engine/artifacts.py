"""Zero-copy artifact plane: mmap-shared compiled engine structures.

Every hot structure the engine builds — the window-indexed transition
tables of :func:`repro.engine.kernel.compile_protocol`, the localkernel
bitmask skeletons, and the per-``(protocol, K)`` packed-state-graph CSR
buffers — is a flat ``array('q')``/``bytearray`` at heart.  This module
gives those buffers a life outside one process's heap: a
content-addressed store under ``<cache-dir>/artifacts/`` serializes
them into a fixed binary layout, and readers attach the files with
``mmap`` and hand out typed :class:`memoryview` sections — no
deserialization, no copy, and (via the page cache) no duplication
across processes attaching the same artifact.

Binary layout (all integers little-endian)::

    offset 0   magic            8 bytes  b"REPROART"
    offset 8   format version   u32
    offset 12  section count    u32
    offset 16  fingerprint      64 bytes (ascii hex, NUL-padded)
    offset 80  section table    48 bytes per entry:
                   name   24 bytes ascii, NUL-padded
                   kind    8 bytes ascii memoryview format ("q", "B"),
                           NUL-padded
                   offset  u64 (from file start, 8-byte aligned)
                   length  u64 (bytes)
    ...        section payloads, each 8-byte aligned
    end - 32   SHA-256 over every preceding byte

Attach validates magic, version, fingerprint and the trailing digest
before exposing a single view; any mismatch is *corruption*, handled by
the store as discard + rebuild + one ``artifact-corrupt`` event — it
never raises out of :meth:`ArtifactStore.attach`.

The store is threaded through the engine ambiently (mirroring
``repro.obs.runtime``): :func:`activate` installs a process-global
store that :func:`ambient` hands to ``compile_protocol`` /
``build_space`` / ``local_kernel_for`` deep inside the call stacks.
Fork workers inherit the activation; spawn workers re-activate from the
picklable :meth:`ArtifactStore.spec`.
"""

from __future__ import annotations

import contextlib
import hashlib
import mmap
import os
import struct
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from repro.obs import runtime as obs

MAGIC = b"REPROART"
FORMAT_VERSION = 1
ARTIFACT_SUFFIX = ".art"
DEFAULT_SUBDIR = "artifacts"

_HEADER = struct.Struct("<8sII64s")
_SECTION = struct.Struct("<24s8sQQ")
_DIGEST_SIZE = 32
_ALIGN = 8

#: Store modes.  ``rw`` attaches and publishes, ``ro`` only attaches,
#: ``off`` disables the plane entirely; ``auto`` resolves to ``rw`` at
#: the CLI layer (it is never seen by :class:`ArtifactStore` itself).
MODES = ("auto", "off", "rw", "ro")


class ArtifactFormatError(Exception):
    """An artifact file failed structural validation."""


def _pad(length: int) -> int:
    return (-length) % _ALIGN


def write_artifact_bytes(fingerprint: str,
                         sections: Mapping[str, tuple[str, bytes]],
                         ) -> bytes:
    """Serialize *sections* into the artifact wire format.

    ``sections`` maps names to ``(kind, payload)`` where *kind* is the
    :class:`memoryview` cast format readers should apply (``"q"`` for
    ``array('q')`` data, ``"B"`` for raw bytes).
    """
    if len(fingerprint) > 64:
        raise ArtifactFormatError("fingerprint longer than 64 bytes")
    names = list(sections)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, len(names),
                          fingerprint.encode("ascii"))
    table_size = _SECTION.size * len(names)
    cursor = len(header) + table_size
    cursor += _pad(cursor)
    table = bytearray()
    payloads = bytearray()
    base = len(header) + table_size
    payload_cursor = base + _pad(base)
    payloads.extend(b"\x00" * _pad(base))
    for name in names:
        kind, payload = sections[name]
        raw = bytes(payload)
        encoded = name.encode("ascii")
        if len(encoded) > 24:
            raise ArtifactFormatError(f"section name too long: {name!r}")
        table.extend(_SECTION.pack(encoded, kind.encode("ascii"),
                                   payload_cursor, len(raw)))
        payloads.extend(raw)
        payload_cursor += len(raw)
        padding = _pad(len(raw))
        payloads.extend(b"\x00" * padding)
        payload_cursor += padding
    body = header + bytes(table) + bytes(payloads)
    return body + hashlib.sha256(body).digest()


class AttachedArtifact:
    """One mmap'd artifact exposing its sections as typed views.

    Keeps the mapping alive for as long as any handed-out view lives;
    :meth:`close` releases the views and the mapping (and is safe to
    call with views still referenced elsewhere — release then fails
    silently and the mapping dies with the last view).
    """

    def __init__(self, path: Path, fingerprint: str,
                 sections: dict[str, memoryview],
                 mapping: mmap.mmap, nbytes: int) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.sections = sections
        self.nbytes = nbytes
        self._mapping = mapping

    def view(self, name: str, kind: str | None = None) -> memoryview:
        """The typed view of section *name* (validated against *kind*)."""
        try:
            section = self.sections[name]
        except KeyError:
            raise ArtifactFormatError(f"missing section {name!r}") from None
        if kind is not None and section.format != kind:
            raise ArtifactFormatError(
                f"section {name!r} has kind {section.format!r}, "
                f"expected {kind!r}")
        return section

    def ints(self, name: str) -> memoryview:
        return self.view(name, "q")

    def close(self) -> None:
        for view in self.sections.values():
            with contextlib.suppress(BufferError):
                view.release()
        self.sections = {}
        with contextlib.suppress(BufferError, ValueError):
            self._mapping.close()

    def __enter__(self) -> "AttachedArtifact":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def attach_artifact(path: Path,
                    expect_fingerprint: str | None = None,
                    ) -> AttachedArtifact:
    """mmap *path*, validate it end to end and expose typed sections.

    Raises :class:`ArtifactFormatError` (or :class:`OSError` for plain
    I/O failures) on any structural problem: bad magic, stale format
    version, fingerprint mismatch, checksum mismatch, truncation or a
    malformed section table.
    """
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size < _HEADER.size + _DIGEST_SIZE:
            raise ArtifactFormatError("truncated artifact (no header)")
        mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
    try:
        magic, version, count, fingerprint_raw = _HEADER.unpack_from(
            mapping, 0)
        if magic != MAGIC:
            raise ArtifactFormatError("bad magic")
        if version != FORMAT_VERSION:
            raise ArtifactFormatError(
                f"format version {version} != {FORMAT_VERSION}")
        fingerprint = fingerprint_raw.rstrip(b"\x00").decode(
            "ascii", "replace")
        if (expect_fingerprint is not None
                and fingerprint != expect_fingerprint):
            raise ArtifactFormatError("fingerprint mismatch")
        digest = hashlib.sha256(
            memoryview(mapping)[:size - _DIGEST_SIZE]).digest()
        if digest != bytes(mapping[size - _DIGEST_SIZE:size]):
            raise ArtifactFormatError("checksum mismatch")
        table_end = _HEADER.size + _SECTION.size * count
        if table_end > size - _DIGEST_SIZE:
            raise ArtifactFormatError("truncated section table")
        base = memoryview(mapping)
        sections: dict[str, memoryview] = {}
        for index in range(count):
            raw_name, raw_kind, offset, length = _SECTION.unpack_from(
                mapping, _HEADER.size + _SECTION.size * index)
            name = raw_name.rstrip(b"\x00").decode("ascii", "replace")
            kind = raw_kind.rstrip(b"\x00").decode("ascii", "replace")
            if offset % _ALIGN or offset + length > size - _DIGEST_SIZE:
                raise ArtifactFormatError(
                    f"section {name!r} out of bounds")
            view = base[offset:offset + length]
            if kind != "B":
                view = view.cast(kind)
            sections[name] = view
    except Exception:
        with contextlib.suppress(BufferError, ValueError):
            mapping.close()
        raise
    return AttachedArtifact(path, fingerprint, sections, mapping, size)


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------

@dataclass
class ArtifactStats:
    """Lifetime counters of one :class:`ArtifactStore`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    evictions: int = 0
    attach_seconds: float = 0.0
    store_seconds: float = 0.0

    def snapshot(self) -> "ArtifactStats":
        return ArtifactStats(hits=self.hits, misses=self.misses,
                             stores=self.stores, corrupt=self.corrupt,
                             evictions=self.evictions,
                             attach_seconds=self.attach_seconds,
                             store_seconds=self.store_seconds)

    def delta_since(self, earlier: "ArtifactStats") -> "ArtifactStats":
        return ArtifactStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
            stores=self.stores - earlier.stores,
            corrupt=self.corrupt - earlier.corrupt,
            evictions=self.evictions - earlier.evictions,
            attach_seconds=self.attach_seconds - earlier.attach_seconds,
            store_seconds=self.store_seconds - earlier.store_seconds)

    def summary(self) -> str:
        return (f"artifacts: {self.hits} attached, {self.misses} misses, "
                f"{self.stores} stored, {self.corrupt} corrupt discarded")


class ArtifactStore:
    """Content-addressed artifact files under one root directory.

    Keys are derived from an artifact *kind* (``"kernel"``,
    ``"space"``, ``"localkernel"``), the protocol fingerprint and any
    discriminating parameters (ring size, symmetry); the fingerprint is
    additionally embedded in the file header so a key collision or a
    renamed file can never satisfy the wrong protocol.
    """

    def __init__(self, root: str | Path, mode: str = "rw") -> None:
        if mode not in ("rw", "ro"):
            raise ValueError(f"unsupported store mode {mode!r}")
        self.root = Path(root)
        self.mode = mode
        self.stats = ArtifactStats()
        self._attached: list[AttachedArtifact] = []

    # -- identity -------------------------------------------------------
    def spec(self) -> tuple[str, str]:
        """A picklable description spawn workers re-activate from."""
        return (str(self.root), self.mode)

    @staticmethod
    def key(kind: str, fingerprint: str, **params: object) -> str:
        material = [kind, fingerprint]
        for name in sorted(params):
            material.append(f"{name}={params[name]!r}")
        return hashlib.sha256("\x1f".join(material).encode()).hexdigest()

    def path_for(self, kind: str, fingerprint: str,
                 **params: object) -> Path:
        key = self.key(kind, fingerprint, **params)
        return self.root / key[:2] / f"{key}{ARTIFACT_SUFFIX}"

    # -- attach / publish ----------------------------------------------
    def attach(self, kind: str, fingerprint: str,
               **params: object) -> AttachedArtifact | None:
        """Attach the artifact for ``(kind, fingerprint, params)``.

        Returns ``None`` on a plain miss *and* on corruption; corrupt
        files are deleted, counted and reported with exactly one
        ``artifact-corrupt`` event so callers always rebuild cleanly.
        """
        path = self.path_for(kind, fingerprint, **params)
        if not path.exists():
            self.stats.misses += 1
            obs.metric("artifacts.misses")
            return None
        began = time.perf_counter()
        try:
            attached = attach_artifact(path, fingerprint)
        except (ArtifactFormatError, OSError, ValueError) as exc:
            self.stats.corrupt += 1
            obs.metric("artifacts.corrupt")
            obs.event("artifact-corrupt", level="warning", artifact=kind,
                      path=str(path), reason=str(exc))
            with contextlib.suppress(OSError):
                path.unlink()
            self.stats.misses += 1
            obs.metric("artifacts.misses")
            return None
        self.stats.attach_seconds += time.perf_counter() - began
        self.stats.hits += 1
        obs.metric("artifacts.hits")
        self._attached.append(attached)
        return attached

    def publish(self, kind: str, fingerprint: str,
                sections: Mapping[str, tuple[str, bytes]],
                **params: object) -> bool:
        """Write one artifact atomically (no-op in read-only mode).

        Publish failures are non-fatal: the build result is already in
        the caller's hands, persistence is best effort.
        """
        if self.mode == "ro":
            return False
        path = self.path_for(kind, fingerprint, **params)
        began = time.perf_counter()
        try:
            blob = write_artifact_bytes(fingerprint, sections)
            path.parent.mkdir(parents=True, exist_ok=True)
            temporary = path.with_suffix(".tmp")
            temporary.write_bytes(blob)
            temporary.replace(path)
        except (OSError, ArtifactFormatError):
            return False
        self.stats.store_seconds += time.perf_counter() - began
        self.stats.stores += 1
        obs.metric("artifacts.stores")
        obs.metric("artifacts.bytes_stored", len(blob))
        return True

    # -- housekeeping ---------------------------------------------------
    def close(self) -> None:
        for attached in self._attached:
            attached.close()
        self._attached = []

    def disk_bytes(self) -> int:
        return directory_bytes(self.root)

    def enforce_limit(self, limit_bytes: int) -> int:
        """Evict oldest-mtime artifacts until the root fits *limit_bytes*.

        Returns the number of files removed.  Shared with the result
        cache via :func:`enforce_directory_limit` — this wrapper only
        adds the store's eviction counter.
        """
        removed = enforce_directory_limit(self.root, limit_bytes,
                                          suffix=ARTIFACT_SUFFIX)
        self.stats.evictions += removed
        if removed:
            obs.metric("artifacts.evictions", removed)
        return removed


# ----------------------------------------------------------------------
# Shared size-cap enforcement (result cache + artifact store)
# ----------------------------------------------------------------------

def _iter_files(root: Path,
                suffix: str | tuple[str, ...] | None) -> Iterator[Path]:
    if isinstance(suffix, str):
        suffix = (suffix,)
    if not root.is_dir():
        return
    for path in root.rglob("*"):
        if not path.is_file():
            continue
        if suffix is not None and path.suffix not in suffix:
            continue
        yield path


def directory_bytes(root: Path,
                    suffix: str | tuple[str, ...] | None = None) -> int:
    """Total size in bytes of the (matching) files under *root*."""
    total = 0
    for path in _iter_files(root, suffix):
        with contextlib.suppress(OSError):
            total += path.stat().st_size
    return total


def enforce_directory_limit(root: Path, limit_bytes: int,
                            suffix: str | tuple[str, ...] | None = None,
                            ) -> int:
    """LRU-by-mtime eviction: delete oldest files until under the cap.

    Missing files (raced deletions) are skipped silently; empty
    subdirectories left behind are pruned.  Returns the removal count.
    """
    entries: list[tuple[float, int, Path]] = []
    total = 0
    for path in _iter_files(root, suffix):
        try:
            stat = path.stat()
        except OSError:
            continue
        entries.append((stat.st_mtime, stat.st_size, path))
        total += stat.st_size
    if total <= limit_bytes:
        return 0
    entries.sort()  # oldest mtime first
    removed = 0
    for _, size, path in entries:
        if total <= limit_bytes:
            break
        with contextlib.suppress(OSError):
            path.unlink()
            total -= size
            removed += 1
            parent = path.parent
            if parent != root and not any(parent.iterdir()):
                parent.rmdir()
    return removed


# ----------------------------------------------------------------------
# Ambient activation (the plane)
# ----------------------------------------------------------------------

_ACTIVE: ArtifactStore | None = None


def activate(store: ArtifactStore | None) -> ArtifactStore | None:
    """Install *store* as the ambient plane; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = store
    return previous


def ambient() -> ArtifactStore | None:
    """The process-global artifact store, or ``None`` when inactive."""
    return _ACTIVE


def activate_from_spec(spec: tuple[str, str] | None) -> None:
    """Re-activate a parent's store in a spawned worker."""
    if spec is None:
        activate(None)
        return
    root, mode = spec
    activate(ArtifactStore(root, mode=mode))


@contextlib.contextmanager
def plane(store: ArtifactStore | None) -> Iterator[ArtifactStore | None]:
    """``with plane(store):`` — scoped ambient activation."""
    previous = activate(store)
    try:
        yield store
    finally:
        activate(previous)


@contextlib.contextmanager
def absorb_into(stats: object) -> Iterator[None]:
    """Fold the ambient store's activity inside the block into *stats*.

    *stats* is an :class:`repro.engine.EngineStats` (anything with
    ``absorb_artifacts``); a ``None`` stats or an inactive plane makes
    this a no-op, so entry points can wrap their whole analysis
    unconditionally.
    """
    store = ambient()
    before = store.stats.snapshot() if store is not None else None
    try:
        yield
    finally:
        if store is not None and stats is not None:
            stats.absorb_artifacts(store.stats.delta_since(before))


def open_store(cache_dir: str | Path | None,
               mode: str = "auto",
               cache_requested: bool = False,
               ) -> ArtifactStore | None:
    """Resolve a ``--artifacts`` flag value into a store (or ``None``).

    ``off`` always disables the plane.  ``rw``/``ro`` force it on,
    rooted under ``<cache-dir>/artifacts``.  ``auto`` follows the
    result cache: the plane activates exactly when on-disk caching was
    requested, so ``repro sweep --cache`` warm-starts across runs while
    a bare invocation leaves the filesystem untouched.
    """
    if mode not in MODES:
        raise ValueError(f"unknown artifacts mode {mode!r}")
    if mode == "off":
        return None
    if mode == "auto" and not cache_requested:
        return None
    root = Path(cache_dir if cache_dir is not None else ".repro-cache")
    return ArtifactStore(root / DEFAULT_SUBDIR,
                         mode="ro" if mode == "ro" else "rw")
