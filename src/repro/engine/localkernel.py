"""Compiled bit-packed kernel for the *local* reasoning pipeline.

PR 2's :mod:`repro.engine.kernel` made the global checker fast; this
module does the same for the paper's local side — the side Theorems
4.2/5.14 and the Section 6 synthesis loop actually run on.  The naive
contiguous-trail search (:mod:`repro.core.trail`) rebuilds a fresh
``Digraph`` product of (local state, phase) for every queried t-arc
support and every ``(K, |E|)`` pair; during synthesis that rebuild
happens for every candidate combination.  The kernel removes all of the
per-query graph construction:

* local states are integer-indexed **once per protocol** (in
  ``space.states`` order, which is the sorted order of
  :class:`~repro.protocol.localstate.LocalState`);
* the RCG/LTG s-adjacency is a list of Python-int bitmasks
  (:func:`repro.core.rcg.continuation_masks`), computed once;
* each ``(K, |E|)`` round pattern compiles to a :class:`TrailSkeleton`
  holding the phase kinds and premultiplied s-arc layer masks, cached
  per kernel and shared across every support ever queried;
* a candidate t-arc support then costs one t-successor mask table
  (``O(n + |support|)``) plus a masked iterative Tarjan pass over the
  *implicit* product graph — node ``phase * n + state``, successors via
  shift-and-intersect — with no dictionaries of tuples, no ``Digraph``,
  and no hashing of :class:`LocalState` objects in the hot loop;
* whole ``find_trail`` answers are memoized on the support's index
  fingerprint, so permuted candidate combinations that share a support
  never re-search.

The kernel is *behaviorally identical* to the naive searcher: same
scan order over ``(K, |E|)``, same "uses the support exactly + visits
an illegitimate state" acceptance test, witnesses carrying the same
``(ring_size, enablements, t_arcs)``.  Because the s-adjacency and the
legitimacy predicate depend only on the process template — not on the
transition set — one kernel built from a base protocol serves every
candidate-extended variant the synthesizer materializes, which is what
makes the synthesis loop cheap.  The differential suite in
``tests/engine/test_localkernel_differential.py`` pins all of this to
the naive implementation.
"""

from __future__ import annotations

import time
import weakref
from array import array
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import repro.engine.artifacts as artifact_plane
from repro.core.ltg import indexed_arcs
from repro.core.rcg import continuation_masks
from repro.obs import runtime as obs
from repro.core.trail import (
    S_PHASE,
    S_SEGMENT_PHASE,
    T_PHASE,
    TrailWitness,
    round_pattern,
)
from repro.protocol.actions import LocalTransition

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.protocol.localstate import LocalState
    from repro.protocol.ring import RingProtocol

_T, _S, _S_SEGMENT = 0, 1, 2
_KIND_CODE = {T_PHASE: _T, S_PHASE: _S, S_SEGMENT_PHASE: _S_SEGMENT}


@dataclass
class LocalKernelStats:
    """Cumulative counters for one :class:`LocalKernel`.

    The kernel is memoized per protocol and shared across searchers, so
    these counters grow monotonically; callers wanting per-run deltas
    snapshot with :meth:`snapshot` and subtract with
    :meth:`delta_since`.
    """

    skeleton_compiles: int = 0
    compile_seconds: float = 0.0
    mask_evaluations: int = 0
    """(support, K, |E|) product-graph SCC passes actually executed."""
    trail_cache_hits: int = 0
    """``find_trail`` queries answered from the support memo."""
    supports_searched: int = 0
    """``find_trail`` queries that ran (memo misses)."""

    def snapshot(self) -> "LocalKernelStats":
        return LocalKernelStats(
            skeleton_compiles=self.skeleton_compiles,
            compile_seconds=self.compile_seconds,
            mask_evaluations=self.mask_evaluations,
            trail_cache_hits=self.trail_cache_hits,
            supports_searched=self.supports_searched,
        )

    def delta_since(self, earlier: "LocalKernelStats") -> "LocalKernelStats":
        return LocalKernelStats(
            skeleton_compiles=self.skeleton_compiles
            - earlier.skeleton_compiles,
            compile_seconds=self.compile_seconds - earlier.compile_seconds,
            mask_evaluations=self.mask_evaluations
            - earlier.mask_evaluations,
            trail_cache_hits=self.trail_cache_hits
            - earlier.trail_cache_hits,
            supports_searched=self.supports_searched
            - earlier.supports_searched,
        )


class TrailSkeleton:
    """One compiled ``(K, |E|)`` round pattern.

    ``kinds[phase]`` is the phase's code (T / S / S!), ``shifts[phase]``
    is ``next_phase * n`` (the amount a state-successor mask is shifted
    to land in the next phase layer), and ``s_layers[phase]`` holds the
    premultiplied per-state successor masks for plain S phases (``None``
    for T and S! phases, whose successors depend on the support).
    """

    __slots__ = ("ring_size", "enablements", "period", "kinds", "shifts",
                 "s_layers", "t_phases")

    def __init__(self, ring_size: int, enablements: int,
                 s_masks: list[int], n: int) -> None:
        pattern = round_pattern(ring_size, enablements)
        self.ring_size = ring_size
        self.enablements = enablements
        self.period = len(pattern)
        self.kinds = tuple(_KIND_CODE[kind] for kind in pattern)
        self.shifts = tuple(((phase + 1) % self.period) * n
                            for phase in range(self.period))
        self.s_layers: tuple[tuple[int, ...] | None, ...] = tuple(
            tuple(mask << self.shifts[phase] for mask in s_masks)
            if kind == _S else None
            for phase, kind in enumerate(self.kinds))
        self.t_phases = tuple(phase for phase, kind in enumerate(self.kinds)
                              if kind == _T)


class LocalKernel:
    """Bitmask-compiled local state space of one protocol.

    Built once per protocol (see :func:`local_kernel_for`); valid for
    every transition set over the same process template, because only
    the continuation relation and the legitimacy predicate are baked in.
    """

    def __init__(self, protocol: "RingProtocol") -> None:
        began = time.perf_counter()
        self.protocol = protocol
        self.space = protocol.space
        self.states = tuple(self.space.states)
        self.n = len(self.states)
        self.index = {state: i for i, state in enumerate(self.states)}
        self.attached = False
        masks = _attach_skeleton(protocol, self.n)
        if masks is not None:
            self.s_masks, self.illegit_mask = masks
            self.attached = True
        else:
            with obs.span("localkernel.compile",
                          protocol=getattr(protocol, "name", "?")) as span:
                # s-adjacency (= RCG adjacency) as per-state bitmasks.
                self.s_masks = continuation_masks(self.space)
                illegitimate = frozenset(protocol.illegitimate_states())
                self.illegit_mask = 0
                for i, state in enumerate(self.states):
                    if state in illegitimate:
                        self.illegit_mask |= 1 << i
                if span is not None:
                    span.attrs["states"] = self.n
            obs.metric("localkernel.compiles")
            _publish_skeleton(protocol, self.n, self.s_masks,
                              self.illegit_mask)
        self.stats = LocalKernelStats()
        self.stats.compile_seconds += time.perf_counter() - began
        self._skeletons: dict[tuple[int, int], TrailSkeleton] = {}
        # Support fingerprint -> (bound scanned, result tuple | None).
        self._trail_memo: dict[frozenset[tuple[int, int]],
                               tuple[int, tuple | None]] = {}

    # ------------------------------------------------------------------
    def skeleton(self, ring_size: int, enablements: int) -> TrailSkeleton:
        key = (ring_size, enablements)
        cached = self._skeletons.get(key)
        if cached is None:
            began = time.perf_counter()
            cached = TrailSkeleton(ring_size, enablements,
                                   self.s_masks, self.n)
            self._skeletons[key] = cached
            self.stats.skeleton_compiles += 1
            self.stats.compile_seconds += time.perf_counter() - began
        return cached

    # ------------------------------------------------------------------
    def find_trail(self, t_arc_support: Iterable[LocalTransition],
                   max_ring_size: int,
                   root_states: Iterable["LocalState"] | None = None,
                   ) -> TrailWitness | None:
        """Kernel counterpart of
        :meth:`repro.core.trail.ContiguousTrailSearcher.find_trail`:
        same ``(K, |E|)`` scan order, first witness wins.

        *root_states*, when given, restricts the Tarjan roots to the
        support arcs sourced at those local states — the lattice
        synthesis engine passes the one arc its delta step added.
        Every matching SCC uses *each* support arc on some T layer, so
        any single arc's (source, T-phase) product nodes still reach
        every candidate component: whether a witness exists, and its
        ``(K, |E|)``, are unchanged; only the ``states`` of the
        first-found witness may differ from an unrestricted search.
        """
        support = frozenset(t_arc_support)
        if not support:
            return None
        arcs = indexed_arcs(self.space, support)
        key = frozenset(arcs)
        memo = self._trail_memo.get(key)
        if memo is not None:
            bound, hit = memo
            if hit is not None:
                if hit[0] <= max_ring_size:
                    self.stats.trail_cache_hits += 1
                    obs.metric("localkernel.trail_cache_hits")
                    return self._witness(support, hit)
                # All (K, |E|) below hit's K were scanned and empty.
                self.stats.trail_cache_hits += 1
                obs.metric("localkernel.trail_cache_hits")
                return None
            if max_ring_size <= bound:
                self.stats.trail_cache_hits += 1
                obs.metric("localkernel.trail_cache_hits")
                return None
            start = bound + 1  # extend a previously exhausted scan
        else:
            start = 2
        self.stats.supports_searched += 1

        t_succ = [0] * self.n
        for source, target in arcs:
            t_succ[source] |= 1 << target
        tsrc_mask = 0
        for source, _target in arcs:
            tsrc_mask |= 1 << source
        sources = sorted({source for source, _target in arcs})
        if root_states is not None:
            index = self.index
            rooted = {index[state] for state in root_states
                      if state in index}
            rooted.intersection_update(sources)
            if rooted:
                sources = sorted(rooted)

        with obs.span("trail.search", support=len(arcs),
                      start=start, max_K=max_ring_size) as span:
            for ring_size in range(start, max_ring_size + 1):
                for enablements in range(1, ring_size):
                    hit = self._search(
                        self.skeleton(ring_size, enablements),
                        arcs, t_succ, tsrc_mask, sources)
                    if hit is not None:
                        result = (ring_size, enablements) + hit
                        self._trail_memo[key] = (max_ring_size, result)
                        if span is not None:
                            span.attrs["found_K"] = ring_size
                        return self._witness(support, result)
            self._trail_memo[key] = (max_ring_size, None)
            return None

    def _witness(self, support: frozenset[LocalTransition],
                 result: tuple) -> TrailWitness:
        ring_size, enablements, state_ids, illegit_ids = result
        return TrailWitness(
            ring_size=ring_size,
            enablements=enablements,
            t_arcs=support,
            states=tuple(self.states[i] for i in state_ids),
            illegitimate_states=tuple(self.states[i] for i in illegit_ids),
        )

    # ------------------------------------------------------------------
    def _search(self, sk: TrailSkeleton, arcs: list[tuple[int, int]],
                t_succ: list[int], tsrc_mask: int,
                sources: list[int]) -> tuple | None:
        """One masked SCC pass over the implicit (state, phase) product.

        Product node id = ``phase * n + state``; successor masks come
        from the skeleton's premultiplied S layers, from the support's
        t-successor table (T phases), or from the s-adjacency
        intersected with the support's t-sources (S! phases).  Returns
        ``(state index tuple, illegitimate index tuple)`` of the first
        matching SCC in Tarjan emission order, or ``None``.
        """
        self.stats.mask_evaluations += 1
        obs.metric("localkernel.mask_evaluations")
        n = self.n
        kinds = sk.kinds
        shifts = sk.shifts
        s_layers = sk.s_layers
        s_masks = self.s_masks

        def succ_mask(node: int) -> int:
            phase, state = divmod(node, n)
            kind = kinds[phase]
            if kind == _T:
                return t_succ[state] << shifts[phase]
            if kind == _S:
                return s_layers[phase][state]
            return (s_masks[state] & tsrc_mask) << shifts[phase]

        # Every matching SCC uses each support arc on some T layer, so
        # it contains a (t-source, T phase) node: rooting Tarjan at
        # those nodes reaches every candidate component.
        roots = [phase * n + state
                 for phase in sk.t_phases for state in sources]

        index_of: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        counter = 0
        for root in roots:
            if root in index_of:
                continue
            work = [[root, succ_mask(root)]]
            index_of[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                frame = work[-1]
                node = frame[0]
                remaining = frame[1]
                advanced = False
                while remaining:
                    bit = remaining & -remaining
                    remaining &= remaining - 1
                    succ = bit.bit_length() - 1
                    if succ not in index_of:
                        frame[1] = remaining
                        index_of[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append([succ, succ_mask(succ)])
                        advanced = True
                        break
                    if succ in on_stack and index_of[succ] < lowlink[node]:
                        lowlink[node] = index_of[succ]
                if advanced:
                    continue
                work.pop()
                if work and lowlink[node] < lowlink[work[-1][0]]:
                    lowlink[work[-1][0]] = lowlink[node]
                if lowlink[node] != index_of[node]:
                    continue
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                hit = self._match(sk, component, arcs, succ_mask)
                if hit is not None:
                    return hit
        return None

    def _match(self, sk: TrailSkeleton, component: list[int],
               arcs: list[tuple[int, int]], succ_mask) -> tuple | None:
        """The naive acceptance test, over integer product nodes."""
        n = self.n
        if len(component) == 1:
            node = component[0]
            if not (succ_mask(node) >> node) & 1:
                return None
        members = set(component)
        for source, target in arcs:
            for phase in sk.t_phases:
                if (phase * n + source in members
                        and (sk.shifts[phase] // n) * n + target in members):
                    break
            else:
                return None  # this support arc is never used
        state_mask = 0
        for node in members:
            state_mask |= 1 << (node % n)
        illegit = state_mask & self.illegit_mask
        if not illegit:
            return None
        return (_mask_indices(state_mask), _mask_indices(illegit))


def _mask_indices(mask: int) -> tuple[int, ...]:
    indices = []
    while mask:
        bit = mask & -mask
        mask &= mask - 1
        indices.append(bit.bit_length() - 1)
    return tuple(indices)


def _attach_skeleton(protocol: "RingProtocol",
                     n: int) -> tuple[list[int], int] | None:
    """Attach ``(s_masks, illegit_mask)`` from the artifact store.

    Bitmasks are arbitrary-precision ints (one bit per local state), so
    unlike the kernel CSR buffers they are re-materialized from
    fixed-width little-endian chunks; the payloads are tiny (``n``
    masks of ``ceil(n / 8)`` bytes) and the avoided work — the full
    continuation-relation and legitimacy sweep — is what matters.
    """
    store = artifact_plane.ambient()
    if store is None:
        return None
    from repro.engine.fingerprint import protocol_fingerprint

    attached = store.attach("localkernel", protocol_fingerprint(protocol))
    if attached is None:
        return None
    try:
        meta = attached.ints("meta")
        count, width = meta[:2]
        raw = attached.view("s_masks", "B")
        illegit_raw = attached.view("illegit", "B")
        if count != n or width != (n + 7) // 8 \
                or len(raw) != count * width or len(illegit_raw) != width:
            raise artifact_plane.ArtifactFormatError(
                "localkernel sections disagree with the protocol")
        s_masks = [int.from_bytes(raw[i * width:(i + 1) * width], "little")
                   for i in range(count)]
        illegit_mask = int.from_bytes(illegit_raw, "little")
    except artifact_plane.ArtifactFormatError as exc:
        store.stats.corrupt += 1
        obs.metric("artifacts.corrupt")
        obs.event("artifact-corrupt", level="warning",
                  artifact="localkernel", path=str(attached.path), reason=str(exc))
        attached.close()
        try:
            attached.path.unlink()
        except OSError:
            pass
        return None
    attached.close()
    return s_masks, illegit_mask


def _publish_skeleton(protocol: "RingProtocol", n: int,
                      s_masks: list[int], illegit_mask: int) -> None:
    store = artifact_plane.ambient()
    if store is None or store.mode == "ro":
        return
    from repro.engine.fingerprint import protocol_fingerprint

    width = (n + 7) // 8
    raw = bytearray()
    for mask in s_masks:
        raw.extend(mask.to_bytes(width, "little"))
    store.publish("localkernel", protocol_fingerprint(protocol), {
        "meta": ("q", array("q", [n, width]).tobytes()),
        "s_masks": ("B", bytes(raw)),
        "illegit": ("B", illegit_mask.to_bytes(width, "little")),
    })


_KERNEL_CACHE: "weakref.WeakKeyDictionary[RingProtocol, LocalKernel]" = \
    weakref.WeakKeyDictionary()


def local_kernel_for(protocol: "RingProtocol") -> LocalKernel:
    """The (memoized) local kernel of *protocol*.

    Keyed on protocol identity via a weak reference, like
    :func:`repro.engine.kernel.compile_protocol`: repeated analyses of
    the same protocol object share skeletons and the trail memo.
    """
    kernel = _KERNEL_CACHE.get(protocol)
    if kernel is None:
        kernel = LocalKernel(protocol)
        _KERNEL_CACHE[protocol] = kernel
    return kernel
