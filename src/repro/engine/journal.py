"""Run journals: durable per-item checkpoints for resumable runs.

A long sweep or synthesis run dies for boring reasons — a machine
reboot, an OOM kill of the whole process tree, a Ctrl-C — and without a
journal every completed per-K check dies with it.  A :class:`RunJournal`
records each completed work item as one appended line under
``.repro-cache/runs/<run-id>/``, flushed and fsynced before the
supervisor moves on, so ``repro sweep --resume <run-id>`` can skip
exactly the items that finished and re-execute only the rest.

The journal mirrors the result cache's trust model
(:mod:`repro.engine.cache`): every entry is self-verifying (the line
stores the SHA-256 of the pickled payload), and a truncated, bit-rotted
or hand-edited line — the expected state after a hard kill mid-append —
is skipped with a :class:`RuntimeWarning` and counted, never raised.
Keys are the same content-addressed digests produced by
:func:`repro.engine.fingerprint.analysis_key`, so a journal can never
resurrect a result for a protocol or parameter set other than the one
that produced it; ``meta.json`` additionally pins the run's analysis
fingerprint and :meth:`RunJournal.resume` refuses a mismatch outright.

Layout::

    .repro-cache/runs/<run-id>/
        meta.json        # run identity: command, fingerprint, created
        journal.jsonl    # one completed work item per line
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import secrets
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import runtime as obs

#: Journal lines carry a format version so a future layout change can
#: keep reading old runs.
_FORMAT_VERSION = 1

RUNS_SUBDIR = "runs"


class JournalError(Exception):
    """An unusable journal (missing run, mismatched fingerprint)."""


@dataclass
class JournalStats:
    """Counters of one journal's lifetime (loading and appending)."""

    entries_loaded: int = 0
    entries_recorded: int = 0
    corrupt_entries: int = 0

    def summary(self) -> str:
        return (f"journal: {self.entries_loaded} entries resumed, "
                f"{self.entries_recorded} recorded, "
                f"{self.corrupt_entries} corrupt entries skipped")


def runs_root(cache_dir: str | Path | None = None) -> Path:
    """The directory run journals live under (``<cache-dir>/runs``)."""
    from repro.engine.cache import DEFAULT_CACHE_DIR

    return Path(cache_dir or DEFAULT_CACHE_DIR) / RUNS_SUBDIR


def new_run_id() -> str:
    """A fresh, collision-resistant, sortable run identifier."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return f"{stamp}-{secrets.token_hex(3)}"


def list_runs(root: str | Path) -> list[str]:
    """Run ids found under *root*, newest last (lexicographic order —
    ids start with a timestamp)."""
    directory = Path(root)
    if not directory.is_dir():
        return []
    return sorted(p.name for p in directory.iterdir()
                  if (p / "journal.jsonl").exists())


@dataclass
class RunJournal:
    """Append-only checkpoint log of one supervised run.

    Use :meth:`create` for a fresh run and :meth:`resume` to reload a
    prior run's completed items; both return a journal ready for
    :meth:`record` calls.  ``completed`` maps journal keys to their
    recorded values, in completion order.
    """

    directory: Path
    run_id: str
    meta: dict[str, Any] = field(default_factory=dict)
    completed: dict[str, Any] = field(default_factory=dict)
    stats: JournalStats = field(default_factory=JournalStats)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, root: str | Path, run_id: str | None = None,
               **meta: Any) -> "RunJournal":
        """Start a journal for a new run under ``<root>/<run-id>/``."""
        run_id = run_id or new_run_id()
        directory = Path(root) / run_id
        directory.mkdir(parents=True, exist_ok=True)
        meta = {"run_id": run_id, "format": _FORMAT_VERSION,
                "created": time.time(), **meta}
        (directory / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True, default=repr))
        journal = cls(directory=directory, run_id=run_id, meta=meta)
        journal.path.touch()
        return journal

    @classmethod
    def resume(cls, root: str | Path, run_id: str,
               fingerprint: str | None = None) -> "RunJournal":
        """Reload the journal of a prior run to continue it.

        *fingerprint*, when given, must equal the ``fingerprint`` the
        run was created with — resuming a sweep of protocol A from a
        journal of protocol B is refused, not silently merged.
        Corrupt or truncated lines (the normal tail state after a hard
        kill) are skipped with a warning.
        """
        directory = Path(root) / run_id
        if not directory.is_dir():
            raise JournalError(
                f"no run {run_id!r} under {Path(root)} "
                f"(known runs: {list_runs(root) or 'none'})")
        journal = cls(directory=directory, run_id=run_id)
        try:
            journal.meta = json.loads(
                (directory / "meta.json").read_text())
        except (OSError, ValueError):
            journal.meta = {"run_id": run_id}
        recorded = journal.meta.get("fingerprint")
        if fingerprint is not None and recorded is not None \
                and recorded != fingerprint:
            raise JournalError(
                f"run {run_id!r} was recorded for a different analysis "
                f"(fingerprint {recorded[:12]}… != {fingerprint[:12]}…); "
                f"refusing to resume")
        journal._load()
        return journal

    # ------------------------------------------------------------------
    @property
    def path(self) -> Path:
        return self.directory / "journal.jsonl"

    def __contains__(self, key: str) -> bool:
        return key in self.completed

    def __len__(self) -> int:
        return len(self.completed)

    def record(self, key: str, value: Any) -> None:
        """Durably append one completed item (fsync before returning).

        A value that does not pickle is journaled as a miss (the item
        will re-execute on resume) rather than aborting the run —
        checkpointing, like caching, is an optimisation only.
        """
        if key in self.completed:
            return
        try:
            payload = pickle.dumps(value)
        except Exception:
            return
        line = json.dumps({
            "v": _FORMAT_VERSION,
            "seq": len(self.completed),
            "key": key,
            "sha256": hashlib.sha256(payload).hexdigest(),
            "data": base64.b64encode(payload).decode("ascii"),
        })
        with open(self.path, "ab") as handle:
            handle.write(line.encode("ascii") + b"\n")
            handle.flush()
            os.fsync(handle.fileno())
        self.completed[key] = value
        self.stats.entries_recorded += 1
        obs.event("checkpoint", run_id=self.run_id, key=key,
                  seq=len(self.completed) - 1)
        obs.metric("supervisor.checkpoints")

    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            raw = self.path.read_bytes()
        except OSError:
            return
        for number, line in enumerate(raw.split(b"\n"), start=1):
            if not line.strip():
                continue
            value = self._decode(line)
            if value is _CORRUPT:
                self.stats.corrupt_entries += 1
                warnings.warn(
                    f"skipping corrupt journal entry at "
                    f"{self.path}:{number} (truncated or damaged; the "
                    f"item will be re-executed)", RuntimeWarning,
                    stacklevel=3)
                continue
            key, payload = value
            self.completed[key] = payload
            self.stats.entries_loaded += 1

    @staticmethod
    def _decode(line: bytes):
        try:
            entry = json.loads(line)
            payload = base64.b64decode(entry["data"],
                                       validate=True)
            if hashlib.sha256(payload).hexdigest() != entry["sha256"]:
                return _CORRUPT
            return entry["key"], pickle.loads(payload)
        except Exception:
            return _CORRUPT


_CORRUPT = object()
